// Command bzip2bench runs the block-sorting compression pipeline (paper
// §6.3) under the task-dataflow and hyperqueue models and verifies the
// round trip.
//
// Usage:
//
//	bzip2bench [-model hyperqueue] [-workers N] [-size BYTES] [-block BYTES]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/workloads/bzip2"
	"repro/swan"
)

func main() {
	model := flag.String("model", "hyperqueue", "serial, objects, hyperqueue, loopsplit")
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots / cores")
	size := flag.Int("size", 4*1024*1024, "input size in bytes")
	block := flag.Int("block", 64*1024, "compression block size")
	segCap := flag.Int("segcap", 8, "hyperqueue segment capacity")
	batch := flag.Int("batch", 8, "loop-split batch size (blocks per round)")
	flag.Parse()

	data := bzip2.GenerateInput(7, *size)

	start := time.Now()
	var stream []byte
	switch *model {
	case "serial":
		stream = bzip2.RunSerial(data, *block)
	case "objects":
		stream = bzip2.RunObjects(swan.New(*workers), data, *block)
	case "hyperqueue":
		stream = bzip2.RunHyperqueue(swan.New(*workers), data, *block, *segCap)
	case "loopsplit":
		stream = bzip2.RunHyperqueueLoopSplit(swan.New(*workers), data, *block, *segCap, *batch)
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("bzip2/%s: %d -> %d bytes (%.1f%%) in %v (%.1f MB/s) on %d workers\n",
		*model, len(data), len(stream),
		100*float64(len(stream))/float64(len(data)),
		elapsed.Round(time.Millisecond),
		float64(len(data))/elapsed.Seconds()/1e6, *workers)

	back, err := bzip2.DecompressStream(stream)
	if err != nil || !bytes.Equal(back, data) {
		fmt.Fprintln(os.Stderr, "round trip FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("round trip verified ✓")
}
