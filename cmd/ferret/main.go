// Command ferret runs the content-based similarity-search pipeline
// (paper §6.1) under a chosen programming model and reports throughput.
//
// Usage:
//
//	ferret [-model hyperqueue] [-workers N] [-images N] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/workloads/ferret"
	"repro/swan"
)

func main() {
	model := flag.String("model", "hyperqueue", "serial, pthreads, tbb, objects, hyperqueue")
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots / cores")
	images := flag.Int("images", 256, "query images")
	segCap := flag.Int("segcap", 16, "hyperqueue segment capacity")
	verify := flag.Bool("verify", false, "check output against the serial elision")
	flag.Parse()

	p := ferret.DefaultParams()
	p.NumImages = *images
	corpus := ferret.NewCorpus(p)

	run := func(m string) (*ferret.Output, time.Duration) {
		start := time.Now()
		var out *ferret.Output
		switch m {
		case "serial":
			out = ferret.RunSerial(corpus, p)
		case "pthreads":
			out = ferret.RunPthreads(corpus, p, *workers+4, 4*(*workers))
		case "tbb":
			out = ferret.RunTBB(corpus, p, *workers, 4*(*workers))
		case "objects":
			out = ferret.RunObjects(swan.New(*workers), corpus, p)
		case "hyperqueue":
			out = ferret.RunHyperqueue(swan.New(*workers), corpus, p, *segCap)
		default:
			fmt.Fprintf(os.Stderr, "unknown model %q\n", m)
			os.Exit(2)
		}
		return out, time.Since(start)
	}

	out, elapsed := run(*model)
	fmt.Printf("ferret/%s: %d queries in %v (%.1f img/s) on %d workers, checksum %016x\n",
		*model, out.Queries, elapsed.Round(time.Millisecond),
		float64(out.Queries)/elapsed.Seconds(), *workers, out.Checksum)

	if *verify && *model != "serial" {
		ref, _ := run("serial")
		if ref.Checksum == out.Checksum && ref.Queries == out.Queries {
			fmt.Println("verified against serial elision ✓")
		} else {
			fmt.Println("MISMATCH against serial elision")
			os.Exit(1)
		}
	}
}
