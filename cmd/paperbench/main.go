// Command paperbench regenerates the paper's evaluation artifacts
// (Table 1, Table 2, Figure 8, Figure 11, and the §6.3 bzip2 results) on
// this machine and prints them as Markdown tables.
//
// Usage:
//
//	paperbench [-exp all|table1|table2|fig8|fig11|bzip2|latency] [-scale N] [-cores N] [-reps N] [-sched steal|goroutine] [-stats] [-metrics addr]
//
// Scale 1 keeps each experiment in the seconds range; the paper-like
// regime is -scale 4 or higher. -metrics serves a live Prometheus-text
// endpoint over every runtime the experiments create (curl the printed
// URL while they run); -stats prints the same counters, including one
// row per metered queue, after the experiments finish.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/sched"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, table2, fig8, fig11, bzip2, latency")
	scale := flag.Int("scale", 1, "workload scale factor")
	cores := flag.Int("cores", runtime.NumCPU(), "maximum cores to sweep")
	reps := flag.Int("reps", 2, "repetitions per configuration (best-of)")
	schedPolicy := flag.String("sched", "steal", "scheduler substrate for the Swan runtimes: steal (work-stealing deques) or goroutine (goroutine-per-task baseline)")
	showStats := flag.Bool("stats", false, "print per-runtime resource stats (pooled segments, recycled queues, spawns/steals, metered queues) after the experiments")
	metricsAddr := flag.String("metrics", "", "serve a live Prometheus-text metrics endpoint on this address while experiments run (e.g. 127.0.0.1:9090; empty disables)")
	flag.Parse()

	switch *schedPolicy {
	case "steal":
		sched.SetDefaultPolicy(sched.PolicySteal)
	case "goroutine":
		sched.SetDefaultPolicy(sched.PolicyGoroutine)
	default:
		fmt.Fprintf(os.Stderr, "unknown -sched %q (want steal or goroutine)\n", *schedPolicy)
		os.Exit(2)
	}

	cfg := bench.Config{MaxCores: *cores, Reps: *reps, Scale: *scale}
	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println(bench.Table1(cfg).Format())
		case "table2":
			fmt.Println(bench.Table2(cfg).Format())
		case "fig8":
			t, _ := bench.Fig8(cfg)
			fmt.Println(t.Format())
		case "fig11":
			t, _ := bench.Fig11(cfg)
			fmt.Println(t.Format())
		case "bzip2":
			t, _ := bench.Bzip2(cfg)
			fmt.Println(t.Format())
		case "latency":
			fmt.Println(bench.Latency(cfg).Format())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	// Collection is always on here (the process is short-lived, the
	// references are cheap) so a SIGINT can reach every live runtime's
	// cancel scope: parked tasks unwind, the in-flight experiment drains,
	// and the stats report still renders before exit.
	bench.CollectRuntimeStats(true)
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "paperbench: interrupt — canceling live runtimes, draining")
		signal.Stop(sig)
		interrupted.Store(true)
		bench.CancelCollected(nil)
	}()
	if *metricsAddr != "" {
		addr, err := bench.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics endpoint: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("serving metrics at http://%s/metrics\n", addr)
	}
	fmt.Printf("# Hyperqueue reproduction — %d cores available, scale %d, scheduler %s\n\n", runtime.NumCPU(), *scale, sched.DefaultPolicy())
	if *exp == "all" {
		for _, e := range []string{"table1", "table2", "fig8", "fig11", "bzip2", "latency"} {
			if interrupted.Load() {
				break
			}
			run(e)
		}
	} else {
		run(*exp)
	}
	if interrupted.Load() {
		fmt.Fprintln(os.Stderr, "paperbench: interrupted — results above the interrupt are valid, later rows drained early")
		fmt.Println(bench.RuntimeStatsReport())
		os.Exit(130)
	}
	if *showStats {
		fmt.Println(bench.RuntimeStatsReport())
	}
}
