// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document on stdout, so the repository's perf
// trajectory can be recorded per PR (make bench-json emits
// BENCH_pr<N>.json) and diffed in CI.
//
// Usage:
//
//	go test -bench=... -benchmem -run '^$' . | benchjson > BENCH_pr3.json
//
// Every benchmark result line is parsed into its name (the -<procs>
// suffix stripped), iteration count, and all reported metrics: the
// standard ns/op, B/op and allocs/op plus any custom b.ReportMetric
// units such as steals/op or spawns/op. Non-benchmark lines (headers,
// PASS/ok trailers) populate the meta block or are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics maps unit name (e.g. "ns/op",
// "allocs/op", "steals/op") to its value.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Meta       map[string]string `json:"meta"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	doc := Doc{Meta: map[string]string{}, Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// goos/goarch/pkg/cpu headers become meta entries.
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				doc.Meta[k] = strings.TrimSpace(v)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = val
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// trimProcs strips the trailing -<GOMAXPROCS> suffix go test appends to
// benchmark names (the last dash-delimited run of digits).
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
