// Command dedup runs the deduplicating-compression pipeline (paper §6.2)
// under a chosen programming model and reports compression and
// throughput. The output stream is reassembled to verify correctness.
//
// Usage:
//
//	dedup [-model hyperqueue] [-workers N] [-size BYTES] [-dup RATIO]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/workloads/dedup"
	"repro/swan"
)

func main() {
	model := flag.String("model", "hyperqueue", "serial, pthreads, tbb, objects, hyperqueue")
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots / cores")
	size := flag.Int("size", 8*1024*1024, "input size in bytes")
	dupRatio := flag.Float64("dup", 0.5, "duplication ratio of the synthetic input")
	segCap := flag.Int("segcap", 64, "hyperqueue segment capacity")
	flag.Parse()

	data := dedup.GenerateInput(42, *size, *dupRatio)
	o := dedup.DefaultOptions()

	start := time.Now()
	var res dedup.Result
	switch *model {
	case "serial":
		res = dedup.RunSerial(data, o)
	case "pthreads":
		res = dedup.RunPthreads(data, o, *workers+4, 4*(*workers))
	case "tbb":
		res = dedup.RunTBB(data, o, *workers, 4*(*workers))
	case "objects":
		res = dedup.RunObjects(swan.New(*workers), data, o)
	case "hyperqueue":
		res = dedup.RunHyperqueue(swan.New(*workers), data, o, *segCap)
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("dedup/%s: %d -> %d bytes (%.1f%%) in %v (%.1f MB/s) on %d workers\n",
		*model, len(data), len(res.Stream),
		100*float64(len(res.Stream))/float64(len(data)),
		elapsed.Round(time.Millisecond),
		float64(len(data))/elapsed.Seconds()/1e6, *workers)

	back, err := dedup.Reassemble(res.Stream)
	if err != nil || !bytes.Equal(back, data) {
		fmt.Fprintln(os.Stderr, "round trip FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("round trip verified ✓")
}
