// Command quickcheck is a user-facing verifier for the hyperqueue's
// central property: serializability. It generates random task trees that
// push, pop, drain and delegate privileges, computes the serial-elision
// outcome with a trivial interpreter, executes the same program on the
// real runtime at several worker counts and segment sizes, and compares.
// The program generator and executor live in internal/qcheck, shared
// with the internal/core regression tests, so any seed reported here can
// be replayed there.
//
// Usage:
//
//	quickcheck [-n 200] [-seed 1] [-workers N] [-queues Q] [-v]
//
// Each failing program is reported once, with every failing
// (workers, segcap) configuration aggregated on a single FAIL line; use
// -workers to pin the worker count for a targeted reproduction. With
// -queues 1 (the default) programs come from the original frozen
// generator, so historical seed reports stay reproducible; -queues 2 or
// higher switches to the extended multi-queue generator (qcheck
// GenerateMulti), whose programs also Sync mid-task, Call children
// synchronously, consume through Empty-guarded TryPop and
// ReadSlice/ConsumeRead runs, and fold values into a shared reducer
// checked against its serial-order oracle — covering cross-queue
// interleavings, the §5.2 slice interface, the lock-free consumer miss
// path, and the hyperobject merge discipline — a failure there is
// reported as (seed, queues). The scheduling substrate follows
// REPRO_SCHED ("steal" or "goroutine"). Exit status 0 means every
// program behaved exactly like its serial elision.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/qcheck"
)

func main() {
	n := flag.Int("n", 200, "number of random programs")
	seed := flag.Uint64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "worker count to test (0 = sweep 1, 2 and NumCPU)")
	queues := flag.Int("queues", 1, "hyperqueues per program (1 = original frozen generator, >1 = multi-queue generator with Sync/Call/TryPop/ReadSlice actions)")
	sharded := flag.Bool("sharded", false, "check random swan.Sharded fan-outs (random geometry, tiny bounds) against the serial elision instead of task-tree programs")
	verbose := flag.Bool("v", false, "log each program")
	flag.Parse()

	workerSet := []int{1, 2, runtime.NumCPU()}
	if *workers > 0 {
		workerSet = []int{*workers}
	}
	workerSet = dedup(workerSet)
	segSet := []int{1, 7, 256}
	policy := qcheck.DefaultPolicy()

	if *sharded {
		failed := 0
		for i := 0; i < *n; i++ {
			p := qcheck.GenerateSharded(*seed + uint64(i))
			var badConfigs []string
			firstBadWorkers := 0
			for _, w := range workerSet {
				if !p.Check(w, policy) {
					badConfigs = append(badConfigs, fmt.Sprintf("workers=%d", w))
					if firstBadWorkers == 0 {
						firstBadWorkers = w
					}
				}
			}
			if len(badConfigs) > 0 {
				failed++
				fmt.Printf("FAIL sharded seed=%d values=%d shards=%d bound=%d segcap=%d (%s)\n"+
					"  replay: REPRO_SCHED=%s go run ./cmd/quickcheck -sharded -n 1 -seed %d -workers %d\n",
					p.Seed, p.Values, p.Shards, p.Bound, p.SegCap, strings.Join(badConfigs, ", "),
					policy, p.Seed, firstBadWorkers)
			} else if *verbose {
				fmt.Printf("sharded %3d: %d values, %d shards, bound %d — ok\n", i, p.Values, p.Shards, p.Bound)
			}
		}
		if failed > 0 {
			fmt.Printf("%d of %d sharded programs FAILED (sched=%s)\n", failed, *n, policy)
			os.Exit(1)
		}
		fmt.Printf("quickcheck: %d random sharded fan-outs × %d workers (sched=%s) — all match the serial elision ✓\n",
			*n, len(workerSet), policy)
		return
	}

	failedPrograms := 0
	for i := 0; i < *n; i++ {
		var p *qcheck.Program
		if *queues > 1 {
			p = qcheck.GenerateMulti(*seed+uint64(i), *queues)
		} else {
			p = qcheck.Generate(*seed + uint64(i))
		}
		var badConfigs []string
		var firstBad *qcheck.Outcome
		firstBadWorkers := 0
		for _, w := range workerSet {
			for _, s := range segSet {
				out, ok := p.CheckFull(w, s, policy)
				if !ok {
					badConfigs = append(badConfigs, fmt.Sprintf("workers=%d segcap=%d", w, s))
					if firstBad == nil {
						firstBad = &out
						firstBadWorkers = w
					}
				}
			}
		}
		if len(badConfigs) > 0 {
			failedPrograms++
			fmt.Printf("FAIL seed=%d queues=%d (%s)\n  got:    %v\n  oracle: %v\n  reducer got:    %v\n  reducer oracle: %v\n"+
				"  replay: REPRO_SCHED=%s go run ./cmd/quickcheck -n 1 -seed %d -queues %d -workers %d\n",
				p.Seed, p.Queues, strings.Join(badConfigs, ", "),
				firstBad.Consumed, p.Oracle, firstBad.Reduced, p.RedOracle,
				policy, p.Seed, p.Queues, firstBadWorkers)
		} else if *verbose {
			fmt.Printf("program %3d: %d tasks, %d values, %d queues — ok\n", i, p.Tasks, p.Values, p.Queues)
		}
	}
	if failedPrograms > 0 {
		fmt.Printf("%d of %d programs FAILED (sched=%s, queues=%d)\n", failedPrograms, *n, policy, *queues)
		os.Exit(1)
	}
	fmt.Printf("quickcheck: %d random programs × %d workers × %d segment sizes × %d queues (sched=%s) — all match the serial elision ✓\n",
		*n, len(workerSet), len(segSet), *queues, policy)
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
