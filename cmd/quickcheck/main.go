// Command quickcheck is a user-facing verifier for the hyperqueue's
// central property: serializability. It generates random task trees that
// push, pop, drain and delegate privileges, computes the serial-elision
// outcome with a trivial interpreter, executes the same program on the
// real runtime at several worker counts and segment sizes, and compares.
//
// Usage:
//
//	quickcheck [-n 200] [-seed 1] [-v]
//
// Exit status 0 means every program behaved exactly like its serial
// elision.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/swan"
)

const (
	actPush = iota
	actSpawn
	actPopN
	actDrain
)

type action struct {
	kind  int
	val   int
	n     int
	child *taskDef
}

type taskDef struct {
	id   int
	mode uint8 // 1=push, 2=pop, 3=both
	acts []action
}

type gen struct {
	r       *rng.RNG
	nextID  int
	nextVal int
	oracle  map[int][]int
	serialQ []int
}

func (g *gen) gen(mode uint8, depth int) *taskDef {
	td := &taskDef{id: g.nextID, mode: mode}
	g.nextID++
	for i, n := 0, 2+g.r.Intn(5); i < n; i++ {
		switch g.r.Intn(4) {
		case 0:
			if mode&1 == 0 {
				continue
			}
			for j, k := 0, 1+g.r.Intn(4); j < k; j++ {
				td.acts = append(td.acts, action{kind: actPush, val: g.nextVal})
				g.serialQ = append(g.serialQ, g.nextVal)
				g.nextVal++
			}
		case 1:
			if depth == 0 {
				continue
			}
			cm := mode
			if mode == 3 {
				cm = []uint8{1, 2, 3}[g.r.Intn(3)]
			}
			td.acts = append(td.acts, action{kind: actSpawn, child: g.gen(cm, depth-1)})
		case 2:
			if mode&2 == 0 || len(g.serialQ) == 0 {
				continue
			}
			n := 1 + g.r.Intn(len(g.serialQ))
			td.acts = append(td.acts, action{kind: actPopN, n: n})
			g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[:n]...)
			g.serialQ = g.serialQ[n:]
		case 3:
			if mode&2 == 0 {
				continue
			}
			td.acts = append(td.acts, action{kind: actDrain})
			if len(g.serialQ) > 0 {
				g.oracle[td.id] = append(g.oracle[td.id], g.serialQ...)
				g.serialQ = nil
			}
		}
	}
	return td
}

func execute(workers, segCap int, root *taskDef) map[int][]int {
	consumed := make(map[int][]int)
	var mu sync.Mutex
	swan.New(workers).Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, segCap)
		var exec func(f *swan.Frame, td *taskDef)
		exec = func(f *swan.Frame, td *taskDef) {
			for _, a := range td.acts {
				switch a.kind {
				case actPush:
					q.Push(f, a.val)
				case actSpawn:
					child := a.child
					var dep swan.Dep
					switch child.mode {
					case 1:
						dep = swan.Push(q)
					case 2:
						dep = swan.Pop(q)
					default:
						dep = swan.PushPop(q)
					}
					f.Spawn(func(c *swan.Frame) { exec(c, child) }, dep)
				case actPopN:
					for j := 0; j < a.n; j++ {
						v := q.Pop(f)
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				case actDrain:
					for !q.Empty(f) {
						v := q.Pop(f)
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				}
			}
		}
		exec(f, root)
	})
	return consumed
}

func main() {
	n := flag.Int("n", 200, "number of random programs")
	seed := flag.Uint64("seed", 1, "base seed")
	verbose := flag.Bool("v", false, "log each program")
	flag.Parse()

	workerSet := []int{1, 2, runtime.NumCPU()}
	segSet := []int{1, 7, 256}
	failures := 0
	for i := 0; i < *n; i++ {
		g := &gen{r: rng.New(*seed + uint64(i)), oracle: make(map[int][]int)}
		root := g.gen(3, 4)
		for _, w := range workerSet {
			for _, s := range segSet {
				got := execute(w, s, root)
				if !equal(got, g.oracle) {
					failures++
					fmt.Printf("FAIL seed=%d workers=%d segcap=%d\n  got:    %v\n  oracle: %v\n",
						*seed+uint64(i), w, s, got, g.oracle)
				}
			}
		}
		if *verbose {
			fmt.Printf("program %3d: %d tasks, %d values — ok\n", i, g.nextID, g.nextVal)
		}
	}
	if failures > 0 {
		fmt.Printf("%d FAILURES out of %d programs\n", failures, *n)
		os.Exit(1)
	}
	fmt.Printf("quickcheck: %d random programs × %d workers × %d segment sizes — all match the serial elision ✓\n",
		*n, len(workerSet), len(segSet))
}

func equal(a, b map[int][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !reflect.DeepEqual(v, b[k]) {
			return false
		}
	}
	return true
}
