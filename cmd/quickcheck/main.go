// Command quickcheck is a user-facing verifier for the hyperqueue's
// central property: serializability. It generates random task trees that
// push, pop, drain and delegate privileges, computes the serial-elision
// outcome with a trivial interpreter, executes the same program on the
// real runtime at several worker counts and segment sizes, and compares.
// The program generator and executor live in internal/qcheck, shared
// with the internal/core regression tests, so any seed reported here can
// be replayed there.
//
// Usage:
//
//	quickcheck [-n 200] [-seed 1] [-workers N] [-v]
//
// Each failing program is reported once, with every failing
// (workers, segcap) configuration aggregated on a single FAIL line; use
// -workers to pin the worker count for a targeted reproduction. The
// scheduling substrate follows REPRO_SCHED ("steal" or "goroutine").
// Exit status 0 means every program behaved exactly like its serial
// elision.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/qcheck"
)

func main() {
	n := flag.Int("n", 200, "number of random programs")
	seed := flag.Uint64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "worker count to test (0 = sweep 1, 2 and NumCPU)")
	verbose := flag.Bool("v", false, "log each program")
	flag.Parse()

	workerSet := []int{1, 2, runtime.NumCPU()}
	if *workers > 0 {
		workerSet = []int{*workers}
	}
	workerSet = dedup(workerSet)
	segSet := []int{1, 7, 256}
	policy := qcheck.DefaultPolicy()

	failedPrograms := 0
	for i := 0; i < *n; i++ {
		p := qcheck.Generate(*seed + uint64(i))
		var badConfigs []string
		var firstGot map[int][]int
		for _, w := range workerSet {
			for _, s := range segSet {
				got, ok := p.Check(w, s, policy)
				if !ok {
					badConfigs = append(badConfigs, fmt.Sprintf("workers=%d segcap=%d", w, s))
					if firstGot == nil {
						firstGot = got
					}
				}
			}
		}
		if len(badConfigs) > 0 {
			failedPrograms++
			fmt.Printf("FAIL seed=%d (%s)\n  got:    %v\n  oracle: %v\n",
				p.Seed, strings.Join(badConfigs, ", "), firstGot, p.Oracle)
		} else if *verbose {
			fmt.Printf("program %3d: %d tasks, %d values — ok\n", i, p.Tasks, p.Values)
		}
	}
	if failedPrograms > 0 {
		fmt.Printf("%d of %d programs FAILED (sched=%s)\n", failedPrograms, *n, policy)
		os.Exit(1)
	}
	fmt.Printf("quickcheck: %d random programs × %d workers × %d segment sizes (sched=%s) — all match the serial elision ✓\n",
		*n, len(workerSet), len(segSet), policy)
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
