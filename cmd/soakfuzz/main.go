// soakfuzz drives the long-horizon lifecycle fuzzer (internal/soak): a
// config-selected mix of queue lifecycle churn, hyperobject folds,
// sharded fan-outs and embedded qcheck programs against one long-lived
// runtime, with striped invariant sweeps, pool-accounting audits and
// replay-window determinism checks.
//
// A failure prints a quickcheck-style FAIL line whose replay command
// re-executes exactly the failing window:
//
//	FAIL soak config=ci policy=steal window=17 wseed=1041 step=35102: ...
//	replay: go run ./cmd/soakfuzz -config ci -policy steal -workers 4 -seed 1041 -steps 2000
//
// -fault injects a deliberate model-invisible value at the given global
// step; the run must then fail, deterministically — the harness's own
// smoke test.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/soak"
)

func main() {
	var (
		steps   = flag.Int64("steps", 100_000, "stepper operations to execute")
		seed    = flag.Uint64("seed", 1, "base seed (window i runs from seed+i)")
		config  = flag.String("config", "default", "config preset: "+strings.Join(soak.ConfigNames(), ", "))
		policy  = flag.String("policy", "steal", "scheduling substrate: steal or goroutine")
		workers = flag.Int("workers", 4, "runtime worker count")
		fault   = flag.Int64("fault", 0, "inject a model-invisible value at this global step (0 = off)")
		oplog   = flag.Bool("oplog", true, "print the failing window's op log on failure")
		verbose = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	cfg, ok := soak.LookupConfig(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "soakfuzz: unknown config %q (have: %s)\n",
			*config, strings.Join(soak.ConfigNames(), ", "))
		os.Exit(2)
	}
	pol, err := soak.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soakfuzz: %v\n", err)
		os.Exit(2)
	}
	opt := soak.Options{Workers: *workers, Policy: pol, FaultStep: *fault}
	if *verbose {
		opt.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	r, err := soak.New(cfg, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soakfuzz: %v\n", err)
		os.Exit(2)
	}

	rep, fail := r.Run(*seed, *steps)
	if fail != nil {
		fmt.Println(fail.FailLine())
		if *oplog && fail.OpLog != "" {
			fmt.Println("--- op log of the failing window ---")
			fmt.Print(fail.OpLog)
		}
		os.Exit(1)
	}
	fmt.Printf("soakfuzz: OK — %d steps in %d windows (config=%s policy=%s workers=%d seed=%d)\n",
		rep.Steps, rep.Windows, cfg.Name, soak.PolicyName(pol), *workers, *seed)
	fmt.Printf("  sweeps=%d audits=%d replays=%d rebuilds=%d recycles=%d\n",
		rep.Sweeps, rep.Audits, rep.Replays, rep.Rebuilds, rep.Recycles)
	fmt.Printf("  qchecks=%d shardeds=%d handoffs=%d pushed=%d popped=%d\n",
		rep.Qchecks, rep.Shardeds, rep.Handoffs, rep.Pushed, rep.Popped)
	fmt.Printf("  segments: allocs=%d pooled=%d retired=%d recycled-queues=%d\n",
		rep.FinalStats.SegmentAllocs, rep.FinalStats.PooledSegments,
		rep.Retired, rep.FinalStats.RecycledQueues)
}
