// soakfuzz drives the long-horizon lifecycle fuzzer (internal/soak): a
// config-selected mix of queue lifecycle churn, hyperobject folds,
// sharded fan-outs and embedded qcheck programs against one long-lived
// runtime, with striped invariant sweeps, pool-accounting audits and
// replay-window determinism checks.
//
// A failure prints a quickcheck-style FAIL line whose replay command
// re-executes exactly the failing window:
//
//	FAIL soak config=ci policy=steal window=17 wseed=1041 step=35102: ...
//	replay: go run ./cmd/soakfuzz -config ci -policy steal -workers 4 -seed 1041 -steps 2000
//
// -fault injects a deliberate bug at the given global step (-faultkind
// selects the class: a model-invisible value, or a spurious root-scope
// cancellation); the run must then fail, deterministically — the
// harness's own smoke test.
//
// SIGINT cancels the current window through the cancellation API: the
// run drains cleanly (parked producers and consumers unwind, the pool
// stays balanced) and the final stats are printed before exiting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/soak"
)

func main() {
	var (
		steps   = flag.Int64("steps", 100_000, "stepper operations to execute")
		seed    = flag.Uint64("seed", 1, "base seed (window i runs from seed+i)")
		config  = flag.String("config", "default", "config preset: "+strings.Join(soak.ConfigNames(), ", "))
		policy  = flag.String("policy", "steal", "scheduling substrate: steal or goroutine")
		workers = flag.Int("workers", 4, "runtime worker count")
		fault   = flag.Int64("fault", 0, "inject a deliberate bug at this global step (0 = off)")
		fkind   = flag.String("faultkind", soak.FaultValue, "injected bug class: value or cancel")
		oplog   = flag.Bool("oplog", true, "print the failing window's op log on failure")
		verbose = flag.Bool("v", false, "print progress to stderr")
	)
	flag.Parse()

	cfg, ok := soak.LookupConfig(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "soakfuzz: unknown config %q (have: %s)\n",
			*config, strings.Join(soak.ConfigNames(), ", "))
		os.Exit(2)
	}
	pol, err := soak.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soakfuzz: %v\n", err)
		os.Exit(2)
	}
	opt := soak.Options{Workers: *workers, Policy: pol, FaultStep: *fault, FaultKind: *fkind}
	if *verbose {
		opt.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	r, err := soak.New(cfg, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soakfuzz: %v\n", err)
		os.Exit(2)
	}

	// SIGINT cancels the in-flight window through the runtime's cancel
	// scope: parked tasks unwind, the window drains, and Run returns with
	// the report intact. A second SIGINT kills the process the usual way.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "soakfuzz: interrupt — canceling the in-flight window")
		signal.Stop(sig)
		r.Stop()
	}()

	rep, fail := r.Run(*seed, *steps)
	if fail != nil {
		fmt.Println(fail.FailLine())
		if *oplog && fail.OpLog != "" {
			fmt.Println("--- op log of the failing window ---")
			fmt.Print(fail.OpLog)
		}
		os.Exit(1)
	}
	verdict := "OK"
	if rep.Interrupted {
		verdict = "interrupted (clean drain)"
	}
	fmt.Printf("soakfuzz: %s — %d steps in %d windows (config=%s policy=%s workers=%d seed=%d)\n",
		verdict, rep.Steps, rep.Windows, cfg.Name, soak.PolicyName(pol), *workers, *seed)
	fmt.Printf("  sweeps=%d audits=%d replays=%d rebuilds=%d recycles=%d\n",
		rep.Sweeps, rep.Audits, rep.Replays, rep.Rebuilds, rep.Recycles)
	fmt.Printf("  qchecks=%d shardeds=%d handoffs=%d chaos=%d pushed=%d popped=%d\n",
		rep.Qchecks, rep.Shardeds, rep.Handoffs, rep.Chaos, rep.Pushed, rep.Popped)
	fmt.Printf("  segments: allocs=%d pooled=%d retired=%d recycled-queues=%d\n",
		rep.FinalStats.SegmentAllocs, rep.FinalStats.PooledSegments,
		rep.Retired, rep.FinalStats.RecycledQueues)
	fmt.Printf("  robustness: canceled-runs=%d task-panics=%d sheds=%d\n",
		rep.FinalStats.CanceledRuns, rep.FinalStats.TaskPanics, rep.FinalStats.Sheds)
}
