// Streamstats: high-rate sensor-stream statistics using the paper's §5.2
// queue slices — bulk producers fill write slices (array-speed appends),
// a running-statistics consumer drains read slices, and the result is
// deterministic: the exponentially weighted moving average depends on
// arrival order, which the hyperqueue fixes to serial program order.
//
// The sample queue is Named, so the run is observable: -metrics serves
// the live Prometheus-text endpoint while the pipeline runs, and the
// queue's meter (occupancy, high-water, wake counters) is printed at
// the end. The queue stays unbounded — the sensors are concurrent
// producers, which may publish out of serial order, the case the
// backpressure discipline excludes (see OPERATIONS.md).
//
// Run: go run ./examples/streamstats [-workers N] [-samples N] [-metrics addr]
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"

	"repro/internal/rng"
	"repro/swan"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots")
	samples := flag.Int("samples", 1_000_000, "total sensor samples")
	sensors := flag.Int("sensors", 16, "parallel sensor producers")
	metrics := flag.String("metrics", "", "serve live metrics on this address during the run (e.g. 127.0.0.1:9090)")
	flag.Parse()

	rt := swan.New(*workers)
	if *metrics != "" {
		ms, err := swan.ServeMetrics(rt, *metrics)
		if err != nil {
			fmt.Println("metrics endpoint:", err)
		} else {
			defer ms.Close()
			fmt.Println("serving metrics at", ms.URL())
		}
	}
	var (
		count int
		mean  float64 // EWMA — order-dependent, so determinism matters
		m2    float64 // Welford running variance (order-dependent too)
		wmean float64
	)

	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[float64](f, 4096, swan.Named("sensor.samples"))

		// Producers: one per simulated sensor, bulk-writing via slices.
		perSensor := *samples / *sensors
		for s := 0; s < *sensors; s++ {
			s := s
			f.Spawn(func(c *swan.Frame) {
				r := rng.New(uint64(s) + 1)
				remaining := perSensor
				for remaining > 0 {
					n := 512
					if n > remaining {
						n = remaining
					}
					w := q.WriteSlice(c, n)
					for i := range w {
						w[i] = float64(s) + r.NormFloat64()
					}
					q.CommitWrite(c, len(w))
					remaining -= n
				}
			}, swan.Push(q))
		}

		// Consumer: Welford + EWMA over read slices, in serial order.
		swan.DrainSlices(f, q, 1024, func(batch []float64) {
			for _, v := range batch {
				count++
				d := v - wmean
				wmean += d / float64(count)
				m2 += d * (v - wmean)
				mean = 0.999*mean + 0.001*v
			}
		})
		f.Sync()
	})

	fmt.Printf("processed %d samples from %d sensors on %d workers\n",
		count, *sensors, *workers)
	fmt.Printf("running mean=%.4f stddev=%.4f ewma=%.4f\n",
		wmean, math.Sqrt(m2/float64(count-1)), mean)
	for _, qs := range swan.Stats(rt).Queues {
		fmt.Printf("queue %s: pushed=%d popped=%d high-water=%d consumer blocks=%d wakes=%d\n",
			qs.Name, qs.Pushed, qs.Popped, qs.HighWater, qs.ConsumerBlocks, qs.ConsumerWakes)
	}
	fmt.Println("(re-run with any -workers value: the numbers are identical — deterministic order)")
}
