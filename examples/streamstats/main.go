// Streamstats: high-rate sensor-stream statistics combining the paper's
// §5.2 queue slices with a deterministic hyper-reducer — bulk producers
// fill write slices (array-speed appends) while folding per-sensor
// Welford moments into their private reducer views, and a serial
// consumer computes the order-dependent EWMA from the queue's
// deterministic stream order. The whole result is bit-identical for any
// -workers value (internal/workloads/streamstats holds the kernel and
// the digest test proving it).
//
// The sample queue and the moments reducer are named, so the run is
// observable: -metrics serves the live Prometheus-text endpoint while
// the pipeline runs, and the queue meter plus the reducer's view/merge
// counters are printed at the end. The queue stays unbounded — the
// sensors are concurrent producers, which may publish out of serial
// order, the case the backpressure discipline excludes (see
// OPERATIONS.md).
//
// Run: go run ./examples/streamstats [-workers N] [-samples N] [-metrics addr]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/internal/workloads/streamstats"
	"repro/swan"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots")
	samples := flag.Int("samples", 1_000_000, "total sensor samples")
	sensors := flag.Int("sensors", 16, "parallel sensor producers")
	metrics := flag.String("metrics", "", "serve live metrics on this address during the run (e.g. 127.0.0.1:9090)")
	flag.Parse()

	rt := swan.New(*workers)
	if *metrics != "" {
		ms, err := swan.ServeMetrics(rt, *metrics)
		if err != nil {
			fmt.Println("metrics endpoint:", err)
		} else {
			defer ms.Close()
			fmt.Println("serving metrics at", ms.URL())
		}
	}

	res := streamstats.Run(rt, streamstats.Config{Samples: *samples, Sensors: *sensors})

	total := res.Total()
	fmt.Printf("processed %d samples from %d sensors on %d workers\n",
		res.Count, *sensors, *workers)
	fmt.Printf("running mean=%.4f stddev=%.4f ewma=%.4f\n",
		total.Mean, total.Stddev(), res.EWMA)
	fmt.Printf("digest %s\n", res.Digest())
	st := swan.Stats(rt)
	for _, qs := range st.Queues {
		fmt.Printf("queue %s: pushed=%d popped=%d high-water=%d consumer blocks=%d wakes=%d\n",
			qs.Name, qs.Pushed, qs.Popped, qs.HighWater, qs.ConsumerBlocks, qs.ConsumerWakes)
	}
	for _, h := range st.Hyperobjects {
		fmt.Printf("%s %s: views=%d merges=%d\n", h.Kind, h.Name, h.Views, h.Merges)
	}
	fmt.Println("(re-run with any -workers value: the digest is identical — deterministic to the bit)")
}
