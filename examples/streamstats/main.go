// Streamstats: high-rate sensor-stream statistics using the paper's §5.2
// queue slices — bulk producers fill write slices (array-speed appends),
// a running-statistics consumer drains read slices, and the result is
// deterministic: the exponentially weighted moving average depends on
// arrival order, which the hyperqueue fixes to serial program order.
//
// Run: go run ./examples/streamstats [-workers N] [-samples N]
package main

import (
	"flag"
	"fmt"
	"math"
	"runtime"

	"repro/internal/rng"
	"repro/swan"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots")
	samples := flag.Int("samples", 1_000_000, "total sensor samples")
	sensors := flag.Int("sensors", 16, "parallel sensor producers")
	flag.Parse()

	rt := swan.New(*workers)
	var (
		count int
		mean  float64 // EWMA — order-dependent, so determinism matters
		m2    float64 // Welford running variance (order-dependent too)
		wmean float64
	)

	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[float64](f, 4096)

		// Producers: one per simulated sensor, bulk-writing via slices.
		perSensor := *samples / *sensors
		for s := 0; s < *sensors; s++ {
			s := s
			f.Spawn(func(c *swan.Frame) {
				r := rng.New(uint64(s) + 1)
				remaining := perSensor
				for remaining > 0 {
					n := 512
					if n > remaining {
						n = remaining
					}
					w := q.WriteSlice(c, n)
					for i := range w {
						w[i] = float64(s) + r.NormFloat64()
					}
					q.CommitWrite(c, len(w))
					remaining -= n
				}
			}, swan.Push(q))
		}

		// Consumer: Welford + EWMA over read slices, in serial order.
		swan.DrainSlices(f, q, 1024, func(batch []float64) {
			for _, v := range batch {
				count++
				d := v - wmean
				wmean += d / float64(count)
				m2 += d * (v - wmean)
				mean = 0.999*mean + 0.001*v
			}
		})
		f.Sync()
	})

	fmt.Printf("processed %d samples from %d sensors on %d workers\n",
		count, *sensors, *workers)
	fmt.Printf("running mean=%.4f stddev=%.4f ewma=%.4f\n",
		wmean, math.Sqrt(m2/float64(count-1)), mean)
	fmt.Println("(re-run with any -workers value: the numbers are identical — deterministic order)")
}
