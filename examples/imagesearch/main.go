// Imagesearch: the full ferret application — content-based similarity
// search over a synthetic image corpus — run end-to-end through the
// hyperqueue pipeline and compared against its serial elision. This is
// the paper's §6.1 workload as a user-facing program.
//
// Run: go run ./examples/imagesearch [-workers N] [-images N] [-model serial|pthreads|tbb|objects|hyperqueue]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/workloads/ferret"
	"repro/swan"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots / cores")
	images := flag.Int("images", 128, "query images")
	model := flag.String("model", "hyperqueue", "serial, pthreads, tbb, objects or hyperqueue")
	show := flag.Int("show", 3, "result lines to print")
	flag.Parse()

	p := ferret.DefaultParams()
	p.NumImages = *images
	corpus := ferret.NewCorpus(p)

	start := time.Now()
	var out *ferret.Output
	switch *model {
	case "serial":
		out = ferret.RunSerial(corpus, p)
	case "pthreads":
		out = ferret.RunPthreads(corpus, p, *workers+4, 4*(*workers))
	case "tbb":
		out = ferret.RunTBB(corpus, p, *workers, 4*(*workers))
	case "objects":
		out = ferret.RunObjects(swan.New(*workers), corpus, p)
	case "hyperqueue":
		out = ferret.RunHyperqueue(swan.New(*workers), corpus, p, 16)
	default:
		fmt.Printf("unknown model %q\n", *model)
		return
	}
	elapsed := time.Since(start)

	fmt.Printf("ferret/%s: %d queries in %v on %d workers (checksum %x)\n",
		*model, out.Queries, elapsed.Round(time.Millisecond), *workers, out.Checksum)
	lines := strings.SplitN(string(out.Text), "\n", *show+1)
	for i := 0; i < *show && i < len(lines); i++ {
		fmt.Println("  ", lines[i])
	}
}
