// Logpipeline: a realistic three-stage streaming analysis built on
// hyperqueues — the kind of irregular pipeline the paper's introduction
// motivates. A recursive scan over log "files" produces raw lines
// (variable count per file — the case plain task dataflow cannot
// express, §1), a parallel parse stage turns lines into events, and a
// serial aggregation stage folds running statistics that depend on event
// order (session tracking), which is exactly what the deterministic
// queue order makes safe.
//
// Run: go run ./examples/logpipeline [-workers N] [-files N]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/rng"
	"repro/swan"
)

type event struct {
	session int
	code    int
	bytes   int
}

// makeFiles synthesizes a deterministic directory of log files with
// variable line counts.
func makeFiles(n int) [][]string {
	r := rng.New(99)
	files := make([][]string, n)
	for i := range files {
		lines := 50 + r.Intn(400)
		files[i] = make([]string, lines)
		for j := range files[i] {
			files[i][j] = fmt.Sprintf("sess=%d code=%d bytes=%d",
				r.Intn(32), []int{200, 200, 200, 404, 500}[r.Intn(5)], r.Intn(8192))
		}
	}
	return files
}

func parseLine(s string) event {
	var e event
	for _, kv := range strings.Fields(s) {
		k, v, _ := strings.Cut(kv, "=")
		n, _ := strconv.Atoi(v)
		switch k {
		case "sess":
			e.session = n
		case "code":
			e.code = n
		case "bytes":
			e.bytes = n
		}
	}
	return e
}

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots")
	nfiles := flag.Int("files", 200, "log files to scan")
	flag.Parse()

	files := makeFiles(*nfiles)
	rt := swan.New(*workers)

	var totalBytes int64
	var errors, lines int
	sessions := map[int]int{}

	rt.Run(func(f *swan.Frame) {
		events := swan.NewQueueWithCapacity[event](f, 512)

		f.Spawn(func(scan *swan.Frame) {
			raw := swan.NewQueueWithCapacity[string](scan, 512)
			// Stage 1: scan files recursively (divide and conquer), each
			// leaf pushing a variable number of lines.
			var walk func(c *swan.Frame, lo, hi int)
			walk = func(c *swan.Frame, lo, hi int) {
				if hi-lo == 1 {
					// One bound bulk transfer per leaf: a single wake-up
					// probe no matter how many lines the file holds.
					pw := raw.BindPush(c)
					pw.PushSlice(files[lo])
					return
				}
				mid := (lo + hi) / 2
				c.Spawn(func(g *swan.Frame) { walk(g, lo, mid) }, swan.Push(raw))
				c.Spawn(func(g *swan.Frame) { walk(g, mid, hi) }, swan.Push(raw))
			}
			scan.Spawn(func(c *swan.Frame) { walk(c, 0, len(files)) }, swan.Push(raw))

			// Stage 2: parse in parallel batches, preserving order via the
			// hyperqueue's reduction semantics.
			scan.Spawn(func(c *swan.Frame) {
				pp := raw.BindPop(c)
				for !pp.Empty() {
					batch := make([]string, 64)
					n := pp.PopInto(batch) // bulk: one probe per segment
					if n == 0 {
						continue // a value is in flight; re-test Empty
					}
					b := batch[:n]
					c.Spawn(func(g *swan.Frame) {
						pw := events.BindPush(g)
						for _, line := range b {
							pw.Push(parseLine(line))
						}
					}, swan.Push(events))
				}
			}, swan.Pop(raw), swan.Push(events))
		}, swan.Push(events))

		// Stage 3: order-dependent aggregation (serial consumer).
		f.Spawn(func(c *swan.Frame) {
			pp := events.BindPop(c)
			for !pp.Empty() {
				e := pp.Pop()
				lines++
				totalBytes += int64(e.bytes)
				sessions[e.session]++
				if e.code >= 500 {
					errors++
				}
			}
		}, swan.Pop(events))

		f.Sync()
	})

	fmt.Printf("parsed %d lines from %d files on %d workers\n", lines, *nfiles, *workers)
	fmt.Printf("total bytes: %d, 5xx errors: %d, distinct sessions: %d\n",
		totalBytes, errors, len(sessions))
}
