// Filededup: deduplicating compression of a real file (or a synthetic
// stream when no file is given) through the hyperqueue dedup pipeline —
// the paper's §6.2 workload as a user-facing tool, including
// decompression to verify the round trip.
//
// Run: go run ./examples/filededup [-workers N] [file]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/workloads/dedup"
	"repro/swan"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots")
	size := flag.Int("size", 8*1024*1024, "synthetic input size when no file is given")
	flag.Parse()

	var data []byte
	var src string
	if flag.NArg() > 0 {
		var err error
		data, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = flag.Arg(0)
	} else {
		data = dedup.GenerateInput(1, *size, 0.5)
		src = fmt.Sprintf("synthetic %d-byte stream (50%% duplication)", len(data))
	}

	o := dedup.DefaultOptions()
	start := time.Now()
	res := dedup.RunHyperqueue(swan.New(*workers), data, o, 64)
	elapsed := time.Since(start)

	fmt.Printf("input:  %s\n", src)
	fmt.Printf("output: %d bytes (%.1f%% of input) in %v on %d workers\n",
		len(res.Stream), 100*float64(len(res.Stream))/float64(len(data)),
		elapsed.Round(time.Millisecond), *workers)

	back, err := dedup.Reassemble(res.Stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reassembly failed:", err)
		os.Exit(1)
	}
	if !bytes.Equal(back, data) {
		fmt.Fprintln(os.Stderr, "round trip MISMATCH")
		os.Exit(1)
	}
	fmt.Println("round trip verified ✓")
}
