// Quickstart: the paper's Figure 2 — a recursively parallel producer
// feeding one consumer through a hyperqueue. The program is scale-free
// (the worker count appears in exactly one place) and deterministic: the
// consumer always observes f(0), f(1), f(2), ... in order, no matter how
// the producer tree is scheduled.
//
// Run: go run ./examples/quickstart [-workers N] [-total N]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/swan"
)

func f(n int) int { return n * n }

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "worker slots (the only machine-dependent knob)")
	total := flag.Int("total", 1000, "values to stream")
	flag.Parse()

	rt := swan.New(*workers)
	var sum int64
	consumed := 0
	inOrder := true

	rt.Run(func(fr *swan.Frame) {
		q := swan.NewQueue[int](fr)

		// Producer: divide and conquer, exactly Figure 2.
		var produce func(c *swan.Frame, lo, hi int)
		produce = func(c *swan.Frame, lo, hi int) {
			if hi-lo <= 10 {
				pw := q.BindPush(c) // resolve privileges once per leaf task
				for n := lo; n < hi; n++ {
					pw.Push(f(n))
				}
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(func(g *swan.Frame) { produce(g, lo, mid) }, swan.Push(q))
			c.Spawn(func(g *swan.Frame) { produce(g, mid, hi) }, swan.Push(q))
			c.Sync()
		}
		fr.Spawn(func(c *swan.Frame) { produce(c, 0, *total) }, swan.Push(q))

		// Consumer: runs concurrently with the producers.
		fr.Spawn(func(c *swan.Frame) {
			pp := q.BindPop(c) // acquire the consumer role once
			expect := 0
			for !pp.Empty() {
				v := pp.Pop()
				if v != f(expect) {
					inOrder = false
				}
				expect++
				consumed++
				sum += int64(v)
			}
		}, swan.Pop(q))

		fr.Sync()
	})

	fmt.Printf("consumed %d values on %d workers, sum=%d\n", consumed, *workers, sum)
	if inOrder {
		fmt.Println("deterministic: values arrived in serial program order ✓")
	} else {
		fmt.Println("ORDER VIOLATION — this would be a bug")
	}
}
