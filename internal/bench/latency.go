package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/hist"
	"repro/internal/workloads/dedup"
	"repro/internal/workloads/streamstats"
	"repro/swan"
)

// LatencyConfig shapes one open-loop latency run: a fixed-rate arrival
// generator feeds a sharded pipeline and every element's
// ingress-to-completion latency is recorded at the egress.
type LatencyConfig struct {
	Workload string  // "streamstats" or "dedup"
	Shards   int     // shard fan-out (default 1)
	Workers  int     // runtime worker count (default NumCPU)
	Bound    int     // per-shard queue bound (default swan.DefaultShardBound)
	Rate     float64 // offered load, elements/second; <= 0 means closed-loop (flat out)
	Items    int     // elements to offer (samples, or coarse chunks for dedup)
}

// LatencyReport is one run's result: the offered/completed element
// counts, time to first result, and completion-latency percentiles from
// the HDR-style histogram (all latencies in nanoseconds).
//
// The run is open-loop: each element's stamp is its *intended* arrival
// time, so when the pipeline falls behind the queueing delay counts
// against it (no coordinated omission).
type LatencyReport struct {
	Workload        string
	Shards, Workers int
	Rate            float64
	Offered         uint64
	Completed       uint64
	WallSeconds     float64
	TTFR            int64 // time to first result, ns from run start
	P50, P99, P999  int64
	Max             int64
	Mean            float64
}

// MeasureLatency runs one open-loop latency experiment. The arrival
// generator runs inside the producer's Block regions (pacing sleeps
// never hold a worker slot); the egress consumer stamps completions
// into a histogram with no per-element allocation.
func MeasureLatency(cfg LatencyConfig) LatencyReport {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Items < 1 {
		cfg.Items = 1
	}
	rt := newRuntime(cfg.Workers)

	var h hist.H
	var start time.Time
	var ttfr int64 = -1
	var offered uint64

	// arrive sleeps until element i's intended arrival and returns that
	// intended time as the stamp — not time.Now() — so queueing delay
	// under overload is charged to the element (open-loop discipline).
	// The sleep is coarse on purpose: OS timers cannot pace per-element
	// gaps of a few microseconds, so the generator only sleeps when it
	// is more than pacingSlack ahead and otherwise releases a small
	// burst — the intended-time stamps keep the accounting exact. The
	// sleep itself runs inside a Block region so pacing never holds a
	// worker slot; the no-sleep fast path is a plain clock read.
	const pacingSlack = time.Millisecond
	arrive := func(c *swan.Frame, i int) int64 {
		offered++
		if cfg.Rate <= 0 {
			return time.Since(start).Nanoseconds()
		}
		target := int64(float64(i) / cfg.Rate * 1e9)
		if d := time.Duration(target) - time.Since(start); d > pacingSlack {
			c.Block(func() { time.Sleep(d) })
		}
		return target
	}
	complete := func(stamp int64) {
		now := time.Since(start).Nanoseconds()
		if ttfr < 0 {
			ttfr = now
		}
		h.Record(now - stamp)
	}

	start = time.Now()
	switch cfg.Workload {
	case "streamstats":
		scfg := streamstats.ShardedConfig{
			Config:   streamstats.Config{Samples: cfg.Items, Sensors: 16, SegCap: 256},
			Shards:   cfg.Shards,
			Bound:    cfg.Bound,
			Arrive:   arrive,
			Complete: complete,
		}
		streamstats.RunSharded(rt, scfg)
	case "dedup":
		// Items coarse chunks at ~16 KiB each; light stage costs keep the
		// run latency-bound rather than compute-bound.
		o := dedup.Options{CoarseAvg: 16 * 1024, FineAvg: 2 * 1024, MaxFactor: 4, DedupRounds: 1, OutputRounds: 1}
		data := dedup.GenerateInput(42, cfg.Items*16*1024, 0.5)
		dedup.RunSharded(rt, data, o, dedup.ShardedConfig{
			Shards:   cfg.Shards,
			Bound:    cfg.Bound,
			SegCap:   256,
			Arrive:   arrive,
			Complete: complete,
		})
	default:
		panic(fmt.Sprintf("bench: unknown latency workload %q", cfg.Workload))
	}
	wall := time.Since(start).Seconds()

	return LatencyReport{
		Workload:    cfg.Workload,
		Shards:      cfg.Shards,
		Workers:     cfg.Workers,
		Rate:        cfg.Rate,
		Offered:     offered,
		Completed:   h.Count(),
		WallSeconds: wall,
		TTFR:        ttfr,
		P50:         h.Quantile(0.50),
		P99:         h.Quantile(0.99),
		P999:        h.Quantile(0.999),
		Max:         h.Max(),
		Mean:        h.Mean(),
	}
}

// Latency runs the open-loop latency experiment grid — both sharded
// workloads at shards 1 and 4, each at a fixed offered rate below the
// single-shard capacity — and renders the percentile table.
func Latency(c Config) *Table {
	var reports []LatencyReport
	for _, shards := range []int{1, 4} {
		reports = append(reports, MeasureLatency(LatencyConfig{
			Workload: "streamstats", Shards: shards, Workers: c.MaxCores,
			Items: 50_000 * c.Scale, Rate: 200_000,
		}))
	}
	for _, shards := range []int{1, 4} {
		reports = append(reports, MeasureLatency(LatencyConfig{
			Workload: "dedup", Shards: shards, Workers: c.MaxCores,
			Items: 256 * c.Scale, Rate: 2_000,
		}))
	}
	return LatencyTable(
		"Open-loop latency under fixed-rate load (sharded pipelines)",
		reports,
		"Latency is completion time minus *intended* arrival time (open-loop: queueing under overload is charged to the element, no coordinated omission). Percentiles from an HDR-style log-linear histogram, <= 1/32 relative error.",
	)
}

// LatencyTable renders latency reports as a table: one row per run.
func LatencyTable(title string, reports []LatencyReport, notes ...string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"Workload", "Shards", "Workers", "Rate/s", "Completed", "TTFR", "p50", "p99", "p999", "max"},
		Notes:  notes,
	}
	ns := func(v int64) string { return time.Duration(v).Round(time.Microsecond).String() }
	for _, r := range reports {
		rate := "max"
		if r.Rate > 0 {
			rate = fmt.Sprintf("%.0f", r.Rate)
		}
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Workers),
			rate,
			fmt.Sprintf("%d", r.Completed),
			ns(r.TTFR), ns(r.P50), ns(r.P99), ns(r.P999), ns(r.Max),
		})
	}
	return t
}
