// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) — Table 1, Figure 8, Table 2,
// Figure 11 and the bzip2 results of §6.3 — as formatted text, and
// provides the measurement plumbing (core sweeps, speedup series, table
// rendering) shared by cmd/paperbench and the root bench_test.go.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// Table is a formatted experiment artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned monospace text with a Markdown
// flavor.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2) + "|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// Point is one measurement of a speedup curve.
type Point struct {
	Cores   int
	Seconds float64
	Speedup float64
}

// Series is one model's speedup curve (one line of a figure).
type Series struct {
	Model  string
	Points []Point
}

// CoreCounts returns the sweep 1,2,4,6,8,12,16,... up to max (always
// including max), mirroring the paper's x-axis.
func CoreCounts(max int) []int {
	candidates := []int{1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 48, 64}
	var out []int
	for _, c := range candidates {
		if c < max {
			out = append(out, c)
		}
	}
	return append(out, max)
}

// MeasureSample times fn reps times with GOMAXPROCS pinned to cores and
// returns the full sample, so callers can report dispersion as well as
// the steady-state estimate.
func MeasureSample(cores, reps int, fn func()) *stats.Sample {
	if reps < 1 {
		reps = 1
	}
	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)
	var s stats.Sample
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		s.Add(time.Since(start).Seconds())
	}
	return &s
}

// Measure times fn with GOMAXPROCS pinned to cores, returning the best of
// reps runs (the paper reports steady-state performance; best-of filters
// scheduler warmup noise).
func Measure(cores, reps int, fn func()) float64 {
	return MeasureSample(cores, reps, fn).Min()
}

// SpeedupTable renders a figure's series as a table: one row per core
// count, one column per model.
func SpeedupTable(title string, series []Series, notes ...string) *Table {
	t := &Table{Title: title, Header: []string{"Cores"}, Notes: notes}
	coreSet := map[int]bool{}
	for _, s := range series {
		t.Header = append(t.Header, s.Model)
		for _, p := range s.Points {
			coreSet[p.Cores] = true
		}
	}
	var cores []int
	for c := range coreSet {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		row := []string{fmt.Sprintf("%d", c)}
		for _, s := range series {
			cell := "-"
			for _, p := range s.Points {
				if p.Cores == c {
					cell = fmt.Sprintf("%.2f", p.Speedup)
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// StageTable renders a Table 1 / Table 2 style stage characterization.
func StageTable(title string, names []string, iters []int, secs []float64, notes ...string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"Stage", "Iterations", "Time (s)", "Time (%)"},
		Notes:  notes,
	}
	var total float64
	for _, s := range secs {
		total += s
	}
	for i, n := range names {
		t.Rows = append(t.Rows, []string{
			n,
			fmt.Sprintf("%d", iters[i]),
			fmt.Sprintf("%.3f", secs[i]),
			fmt.Sprintf("%.2f", 100*secs[i]/total),
		})
	}
	return t
}
