package bench

import (
	"fmt"
	"runtime"

	"repro/internal/workloads/bzip2"
	"repro/internal/workloads/dedup"
	"repro/internal/workloads/ferret"
)

// Config sizes the experiments. Scale grows workloads for longer, less
// noisy runs.
type Config struct {
	MaxCores int
	Reps     int
	Scale    int // 1 = quick (seconds), 4 = paper-like minutes
}

// DefaultConfig uses every core and short runs.
func DefaultConfig() Config {
	return Config{MaxCores: runtime.NumCPU(), Reps: 2, Scale: 1}
}

// FerretParams returns the calibrated ferret workload for the config.
func (c Config) FerretParams() ferret.Params {
	p := ferret.DefaultParams()
	p.NumImages *= c.Scale
	return p
}

// DedupInput returns the synthetic dedup input for the config.
func (c Config) DedupInput() []byte {
	return dedup.GenerateInput(42, c.Scale*8*1024*1024, 0.5)
}

// Bzip2Input returns the synthetic bzip2 input for the config.
func (c Config) Bzip2Input() []byte {
	return bzip2.GenerateInput(7, c.Scale*2*1024*1024)
}

// Table1 regenerates Table 1: ferret's serial stage characterization.
func Table1(c Config) *Table {
	p := c.FerretParams()
	corpus := ferret.NewCorpus(p)
	rows := ferret.CharacterizeStages(corpus, p)
	names := make([]string, len(rows))
	iters := make([]int, len(rows))
	secs := make([]float64, len(rows))
	for i, r := range rows {
		names[i], iters[i], secs[i] = r.Name, r.Iterations, r.Seconds
	}
	return StageTable(
		"Table 1: Characterization of ferret's pipeline",
		names, iters, secs,
		"Paper (PARSEC native): Input 4.48%, Segmentation 3.57%, Extraction 0.35%, Vectorizing 16.20%, Ranking 75.30%, Output 0.10%.",
	)
}

// Table2 regenerates Table 2: dedup's serial stage characterization.
func Table2(c Config) *Table {
	rows := dedup.CharacterizeStages(c.DedupInput(), dedup.DefaultOptions())
	names := make([]string, len(rows))
	iters := make([]int, len(rows))
	secs := make([]float64, len(rows))
	for i, r := range rows {
		names[i], iters[i], secs[i] = r.Name, r.Iterations, r.Seconds
	}
	return StageTable(
		"Table 2: Characterization of the dedup pipeline",
		names, iters, secs,
		"Paper (PARSEC native): Fragment 3.08%, FragmentRefine 6.35%, Deduplicate 7.90%, Compress 74.48%, Output 8.19%.",
	)
}

// ferretModels are the four lines of Figure 8. Each model maps a core
// count to a repeatable run closure; the Swan models build their runtime
// once per core count, so repetitions 2+ reuse its runtime-wide segment
// pool — the workloads recycle their queues at the end of each run, and
// a warm pool means the repeated run's queue setup allocates nothing.
func ferretModels(corpus *ferret.Corpus, p ferret.Params, oversub int) map[string]func(cores int) func() {
	return map[string]func(cores int) func(){
		"Pthreads": func(cores int) func() {
			// PARSEC-style oversubscription: thread count per stage is a
			// machine constant (28 in the paper), not the core count.
			return func() { ferret.RunPthreads(corpus, p, oversub, 4*oversub) }
		},
		"TBB": func(cores int) func() {
			return func() { ferret.RunTBB(corpus, p, cores, 4*cores) }
		},
		"Objects": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { ferret.RunObjects(rt, corpus, p) }
		},
		"Hyperqueue": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { ferret.RunHyperqueue(rt, corpus, p, 16) }
		},
	}
}

var ferretModelOrder = []string{"Pthreads", "TBB", "Objects", "Hyperqueue"}

// Fig8 regenerates Figure 8: ferret speedup under the four programming
// models.
func Fig8(c Config) (*Table, []Series) {
	p := c.FerretParams()
	corpus := ferret.NewCorpus(p)
	serial := Measure(c.MaxCores, c.Reps, func() { ferret.RunSerial(corpus, p) })
	models := ferretModels(corpus, p, c.MaxCores+4)
	var series []Series
	for _, name := range ferretModelOrder {
		model := models[name]
		s := Series{Model: name}
		for _, cores := range CoreCounts(c.MaxCores) {
			secs := Measure(cores, c.Reps, model(cores))
			s.Points = append(s.Points, Point{Cores: cores, Seconds: secs, Speedup: serial / secs})
		}
		series = append(series, s)
	}
	t := SpeedupTable(
		"Figure 8: Ferret speedup by programming model",
		series,
		fmt.Sprintf("Speedup relative to the serial implementation (%.3fs). Paper shape: Objects trails (input stage not overlapped); Pthreads, TBB and Hyperqueue track each other.", serial),
	)
	return t, series
}

// dedupModels are the four lines of Figure 11, shaped like ferretModels.
func dedupModels(data []byte, o dedup.Options, oversub int) map[string]func(cores int) func() {
	return map[string]func(cores int) func(){
		"Pthreads": func(cores int) func() {
			return func() { dedup.RunPthreads(data, o, oversub, 4*oversub) }
		},
		"TBB": func(cores int) func() {
			return func() { dedup.RunTBB(data, o, cores, 4*cores) }
		},
		"Objects": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { dedup.RunObjects(rt, data, o) }
		},
		"Hyperqueue": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { dedup.RunHyperqueue(rt, data, o, 64) }
		},
	}
}

// Fig11 regenerates Figure 11: dedup speedup under the four models.
func Fig11(c Config) (*Table, []Series) {
	data := c.DedupInput()
	o := dedup.DefaultOptions()
	serial := Measure(c.MaxCores, c.Reps, func() { dedup.RunSerial(data, o) })
	models := dedupModels(data, o, c.MaxCores+4)
	var series []Series
	for _, name := range ferretModelOrder {
		model := models[name]
		s := Series{Model: name}
		for _, cores := range CoreCounts(c.MaxCores) {
			secs := Measure(cores, c.Reps, model(cores))
			s.Points = append(s.Points, Point{Cores: cores, Seconds: secs, Speedup: serial / secs})
		}
		series = append(series, s)
	}
	t := SpeedupTable(
		"Figure 11: Dedup speedup by programming model",
		series,
		fmt.Sprintf("Speedup relative to the serial implementation (%.3fs). Paper shape: Hyperqueue leads Pthreads by 12-30%% in the 6-8 core region; TBB trails Pthreads; speedups plateau (serial Output stage).", serial),
	)
	return t, series
}

// Bzip2 regenerates the §6.3 comparison: task dataflow (objects) vs
// hyperqueue vs hyperqueue with the §5.4 loop split.
func Bzip2(c Config) (*Table, []Series) {
	data := c.Bzip2Input()
	const blockSize = 64 * 1024
	serial := Measure(c.MaxCores, c.Reps, func() { bzip2.RunSerial(data, blockSize) })
	models := map[string]func(cores int) func(){
		"Objects": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { bzip2.RunObjects(rt, data, blockSize) }
		},
		"Hyperqueue": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { bzip2.RunHyperqueue(rt, data, blockSize, 8) }
		},
		"Hyperqueue+LoopSplit": func(cores int) func() {
			rt := newRuntime(cores)
			return func() { bzip2.RunHyperqueueLoopSplit(rt, data, blockSize, 8, 8) }
		},
	}
	var series []Series
	for _, name := range []string{"Objects", "Hyperqueue", "Hyperqueue+LoopSplit"} {
		model := models[name]
		s := Series{Model: name}
		for _, cores := range CoreCounts(c.MaxCores) {
			secs := Measure(cores, c.Reps, model(cores))
			s.Points = append(s.Points, Point{Cores: cores, Seconds: secs, Speedup: serial / secs})
		}
		series = append(series, s)
	}
	t := SpeedupTable(
		"Section 6.3: bzip2 speedup, task dataflow vs hyperqueue",
		series,
		fmt.Sprintf("Speedup relative to the serial implementation (%.3fs). Paper: hyperqueue matches the task-dataflow baseline; the loop-split variant fixes serial-execution memory locality at equal performance.", serial),
	)
	return t, series
}
