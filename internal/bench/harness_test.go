package bench

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTableFormat(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	s := tb.Format()
	if !strings.Contains(s, "## Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "| A   | Blong |") {
		t.Errorf("misaligned header:\n%s", s)
	}
	if !strings.Contains(s, "| 333 | 4     |") {
		t.Errorf("misaligned row:\n%s", s)
	}
	if !strings.Contains(s, "a note") {
		t.Error("missing note")
	}
}

func TestCoreCounts(t *testing.T) {
	got := CoreCounts(8)
	want := []int{1, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("CoreCounts(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CoreCounts(8) = %v, want %v", got, want)
		}
	}
	if got := CoreCounts(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("CoreCounts(1) = %v", got)
	}
	// Max always included even when not a standard step.
	got = CoreCounts(7)
	if got[len(got)-1] != 7 {
		t.Fatalf("CoreCounts(7) = %v; must end at 7", got)
	}
}

func TestMeasureRestoresGOMAXPROCS(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	Measure(1, 1, func() {})
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS %d -> %d", before, after)
	}
}

func TestMeasureBestOf(t *testing.T) {
	calls := 0
	d := Measure(1, 3, func() {
		calls++
		if calls == 1 {
			time.Sleep(20 * time.Millisecond) // first run slow
		}
	})
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if d >= 0.02 {
		t.Fatalf("best-of did not filter the slow run: %v", d)
	}
}

func TestSpeedupTableMergesSeries(t *testing.T) {
	s := []Series{
		{Model: "A", Points: []Point{{Cores: 1, Speedup: 1}, {Cores: 4, Speedup: 3.5}}},
		{Model: "B", Points: []Point{{Cores: 4, Speedup: 2.25}}},
	}
	tb := SpeedupTable("X", s)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %v", tb.Rows)
	}
	if tb.Rows[0][0] != "1" || tb.Rows[0][1] != "1.00" || tb.Rows[0][2] != "-" {
		t.Fatalf("row 0 = %v", tb.Rows[0])
	}
	if tb.Rows[1][2] != "2.25" {
		t.Fatalf("row 1 = %v", tb.Rows[1])
	}
}

func TestStageTablePercentages(t *testing.T) {
	tb := StageTable("S", []string{"a", "b"}, []int{1, 2}, []float64{1, 3})
	if tb.Rows[0][3] != "25.00" || tb.Rows[1][3] != "75.00" {
		t.Fatalf("percent cells: %v / %v", tb.Rows[0], tb.Rows[1])
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.MaxCores != runtime.NumCPU() || c.Scale != 1 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if len(c.DedupInput()) != 8*1024*1024 {
		t.Fatal("dedup input size")
	}
	if c.FerretParams().NumImages <= 0 {
		t.Fatal("ferret params")
	}
}
