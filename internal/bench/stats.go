package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/swan"
)

// Runtime-stats collection for cmd/paperbench -stats: every Swan runtime
// the experiments create goes through newRuntime, which registers it
// when collection is enabled, and RuntimeStatsReport renders the
// aggregated swan.Stats counters after the experiments ran. Collection
// is off by default so plain benchmark runs retain no runtime
// references.

var (
	statsMu       sync.Mutex
	statsEnabled  bool
	statsRuntimes []*swan.Runtime
)

// CollectRuntimeStats enables or disables runtime registration and
// clears any previously collected runtimes.
func CollectRuntimeStats(on bool) {
	statsMu.Lock()
	statsEnabled = on
	statsRuntimes = nil
	statsMu.Unlock()
}

// newRuntime builds the Swan runtime an experiment model uses, one per
// (model, core-count) configuration so that repeated measurements share
// its runtime-wide segment pool.
func newRuntime(cores int) *swan.Runtime {
	rt := swan.New(cores)
	statsMu.Lock()
	if statsEnabled {
		statsRuntimes = append(statsRuntimes, rt)
	}
	statsMu.Unlock()
	return rt
}

// RuntimeStatsReport renders the per-runtime and aggregate counters of
// every runtime collected since CollectRuntimeStats(true): pooled
// segments and recycled queues (the hyperqueue lifecycle gauges) plus
// scheduler dispatch activity.
func RuntimeStatsReport() string {
	statsMu.Lock()
	rts := statsRuntimes
	statsMu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "## Runtime stats (%d Swan runtimes)\n\n", len(rts))
	if len(rts) == 0 {
		b.WriteString("no runtimes collected (enable with CollectRuntimeStats before running experiments)\n")
		return b.String()
	}
	b.WriteString("| Workers | Pooled segments | Recycled queues | Spawns | Steals | Parks |\n")
	b.WriteString("|---------|-----------------|-----------------|--------|--------|-------|\n")
	var total swan.RuntimeStats
	for _, rt := range rts {
		s := swan.Stats(rt)
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d |\n",
			s.Workers, s.PooledSegments, s.RecycledQueues, s.Spawns, s.Steals, s.Parks)
		total.PooledSegments += s.PooledSegments
		total.RecycledQueues += s.RecycledQueues
		total.Spawns += s.Spawns
		total.Steals += s.Steals
		total.Parks += s.Parks
	}
	fmt.Fprintf(&b, "\ntotal: %d pooled segments, %d recycled queues, %d spawns, %d steals, %d parks\n",
		total.PooledSegments, total.RecycledQueues, total.Spawns, total.Steals, total.Parks)
	return b.String()
}
