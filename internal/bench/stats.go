package bench

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"

	"repro/swan"
)

// Runtime-stats collection for cmd/paperbench -stats: every Swan runtime
// the experiments create goes through newRuntime, which registers it
// when collection is enabled, and RuntimeStatsReport renders the
// aggregated swan.Stats counters after the experiments ran. Collection
// is off by default so plain benchmark runs retain no runtime
// references. ServeMetrics additionally exposes the collected runtimes
// as one live Prometheus-text endpoint (cmd/paperbench -metrics), so
// occupancy and block counters can be scraped while experiments run.

var (
	statsMu       sync.Mutex
	statsEnabled  bool
	statsRuntimes []*swan.Runtime
	cancelAll     bool
	cancelCause   error
)

// CollectRuntimeStats enables or disables runtime registration and
// clears any previously collected runtimes.
func CollectRuntimeStats(on bool) {
	statsMu.Lock()
	statsEnabled = on
	statsRuntimes = nil
	statsMu.Unlock()
}

// CancelCollected cancels every collected runtime — and every runtime
// created afterwards — through Runtime.Cancel: parked producers and
// consumers unwind, in-flight Run calls return the cause, and the
// experiment loops finish quickly instead of wedging. cmd/paperbench
// wires SIGINT to it so an interrupted run still drains cleanly and can
// report final stats. A nil cause means swan.ErrCanceled.
func CancelCollected(cause error) {
	statsMu.Lock()
	cancelAll = true
	cancelCause = cause
	rts := append([]*swan.Runtime(nil), statsRuntimes...)
	statsMu.Unlock()
	for _, rt := range rts {
		rt.Cancel(cause)
	}
}

// newRuntime builds the Swan runtime an experiment model uses, one per
// (model, core-count) configuration so that repeated measurements share
// its runtime-wide segment pool.
func newRuntime(cores int) *swan.Runtime {
	rt := swan.New(cores)
	statsMu.Lock()
	if statsEnabled {
		statsRuntimes = append(statsRuntimes, rt)
	}
	dead, cause := cancelAll, cancelCause
	statsMu.Unlock()
	if dead {
		// A CancelCollected shutdown is in progress: runtimes born after
		// it are condemned too, so the remaining experiments drain
		// instead of starting fresh work.
		rt.Cancel(cause)
	}
	return rt
}

// collected snapshots the registered runtime list.
func collected() []*swan.Runtime {
	statsMu.Lock()
	defer statsMu.Unlock()
	return statsRuntimes
}

// ServeMetrics starts an HTTP endpoint serving the Prometheus-text
// metrics of every collected runtime (label rt="<index>") at /metrics,
// re-reading the registration list on every scrape so runtimes created
// mid-run appear as the experiments progress. It returns the listen
// address. The caller should have enabled CollectRuntimeStats first.
func ServeMetrics(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = swan.WriteMetricsMulti(w, collected())
	})
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.Handle("/metrics", h)
	go func() { _ = (&http.Server{Handler: mux}).Serve(ln) }()
	return ln.Addr().String(), nil
}

// RuntimeStatsReport renders the per-runtime and aggregate counters of
// every runtime collected since CollectRuntimeStats(true): pooled
// segments and recycled queues (the hyperqueue lifecycle gauges),
// scheduler dispatch activity, and one row per metered (Bounded or
// Named) queue with its occupancy, high-water and block/wake counters.
func RuntimeStatsReport() string {
	rts := collected()
	var b strings.Builder
	fmt.Fprintf(&b, "## Runtime stats (%d Swan runtimes)\n\n", len(rts))
	if len(rts) == 0 {
		b.WriteString("no runtimes collected (enable with CollectRuntimeStats before running experiments)\n")
		return b.String()
	}
	b.WriteString("| Workers | Pooled segments | Segment allocs | Recycled queues | Spawns | Steals | Parks | Blocks |\n")
	b.WriteString("|---------|-----------------|----------------|-----------------|--------|--------|-------|--------|\n")
	var total swan.RuntimeStats
	var queues []swan.QueueStats
	var hypers []swan.HyperobjectStats
	for _, rt := range rts {
		s := swan.Stats(rt)
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d | %d | %d |\n",
			s.Workers, s.PooledSegments, s.SegmentAllocs, s.RecycledQueues, s.Spawns, s.Steals, s.Parks, s.Blocks)
		total.PooledSegments += s.PooledSegments
		total.SegmentAllocs += s.SegmentAllocs
		total.RecycledQueues += s.RecycledQueues
		total.Spawns += s.Spawns
		total.Steals += s.Steals
		total.Parks += s.Parks
		total.Blocks += s.Blocks
		total.CanceledRuns += s.CanceledRuns
		total.TaskPanics += s.TaskPanics
		total.Sheds += s.Sheds
		queues = append(queues, s.Queues...)
		hypers = append(hypers, s.Hyperobjects...)
	}
	fmt.Fprintf(&b, "\ntotal: %d pooled segments, %d segment allocs, %d recycled queues, %d spawns, %d steals, %d parks, %d blocks\n",
		total.PooledSegments, total.SegmentAllocs, total.RecycledQueues, total.Spawns, total.Steals, total.Parks, total.Blocks)
	fmt.Fprintf(&b, "robustness: %d canceled runs, %d task panics, %d sheds\n",
		total.CanceledRuns, total.TaskPanics, total.Sheds)
	if len(queues) > 0 {
		b.WriteString("\n### Metered queues\n\n")
		b.WriteString("| Queue | Bound | Occupancy | High water | Pushed | Popped | Prod blocks | Prod wakes | Cons blocks | Cons wakes | Sheds |\n")
		b.WriteString("|-------|-------|-----------|------------|--------|--------|-------------|------------|-------------|------------|-------|\n")
		for _, q := range queues {
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d |\n",
				q.Name, q.Bound, q.Occupancy, q.HighWater, q.Pushed, q.Popped,
				q.ProducerBlocks, q.ProducerWakes, q.ConsumerBlocks, q.ConsumerWakes, q.Sheds)
		}
	}
	if len(hypers) > 0 {
		b.WriteString("\n### Hyperobjects\n\n")
		b.WriteString("| Object | Kind | Views | Merges |\n")
		b.WriteString("|--------|------|-------|--------|\n")
		for _, h := range hypers {
			fmt.Fprintf(&b, "| %s | %s | %d | %d |\n", h.Name, h.Kind, h.Views, h.Merges)
		}
	}
	return b.String()
}
