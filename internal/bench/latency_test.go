package bench

import (
	"strings"
	"testing"
)

// TestMeasureLatencySmoke runs each workload briefly through the
// open-loop harness and checks the accounting invariants: every offered
// element completes, the percentiles are ordered, and TTFR is set.
func TestMeasureLatencySmoke(t *testing.T) {
	for _, cfg := range []LatencyConfig{
		{Workload: "streamstats", Shards: 2, Workers: 4, Items: 20_000, Rate: 2_000_000},
		{Workload: "streamstats", Shards: 1, Workers: 2, Items: 5_000}, // closed loop
		{Workload: "dedup", Shards: 2, Workers: 4, Items: 32, Rate: 50_000},
	} {
		r := MeasureLatency(cfg)
		if r.Completed == 0 || r.Completed != r.Offered {
			t.Fatalf("%s: completed %d of %d offered", cfg.Workload, r.Completed, r.Offered)
		}
		if r.TTFR < 0 {
			t.Fatalf("%s: TTFR never recorded", cfg.Workload)
		}
		if r.P50 > r.P99 || r.P99 > r.P999 || r.P999 > r.Max {
			t.Fatalf("%s: percentiles not ordered: p50=%d p99=%d p999=%d max=%d",
				cfg.Workload, r.P50, r.P99, r.P999, r.Max)
		}
		if r.WallSeconds <= 0 {
			t.Fatalf("%s: wall time %v", cfg.Workload, r.WallSeconds)
		}
	}
}

// TestLatencyTableRenders pins the report surface paperbench prints.
func TestLatencyTableRenders(t *testing.T) {
	r := LatencyReport{Workload: "streamstats", Shards: 4, Workers: 8, Rate: 100000,
		Offered: 10, Completed: 10, TTFR: 1500, P50: 2000, P99: 9000, P999: 12000, Max: 15000}
	out := LatencyTable("Latency under open-loop load", []LatencyReport{r}).Format()
	for _, want := range []string{"streamstats", "p99", "100000", "9µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
