package dataflow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

func run(workers int, fn func(*sched.Frame)) {
	sched.New(workers).Run(fn)
}

func TestInitialValueReadable(t *testing.T) {
	run(1, func(f *sched.Frame) {
		v := NewVersioned(42)
		if v.Get(f) != 42 {
			t.Error("initial value lost")
		}
	})
}

func TestReaderWaitsForWriter(t *testing.T) {
	run(4, func(f *sched.Frame) {
		v := NewVersioned(0)
		f.Spawn(func(c *sched.Frame) {
			time.Sleep(10 * time.Millisecond)
			v.Set(c, 7)
		}, Out(v))
		var got int
		f.Spawn(func(c *sched.Frame) { got = v.Get(c) }, In(v))
		f.Sync()
		if got != 7 {
			t.Errorf("reader saw %d, want 7 (did not wait for writer)", got)
		}
	})
}

func TestReadersRunConcurrently(t *testing.T) {
	run(4, func(f *sched.Frame) {
		v := NewVersioned(1)
		var cur, peak atomic.Int64
		for i := 0; i < 8; i++ {
			f.Spawn(func(c *sched.Frame) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				_ = v.Get(c)
				time.Sleep(5 * time.Millisecond)
				cur.Add(-1)
			}, In(v))
		}
		f.Sync()
		if peak.Load() < 2 {
			t.Error("readers were serialized")
		}
	})
}

func TestInOutSerializesInProgramOrder(t *testing.T) {
	const n = 50
	run(8, func(f *sched.Frame) {
		v := NewVersioned(0)
		for i := 0; i < n; i++ {
			want := i
			f.Spawn(func(c *sched.Frame) {
				got := v.Get(c)
				if got != want {
					t.Errorf("InOut task %d saw %d", want, got)
				}
				v.Set(c, got+1)
			}, InOut(v))
		}
		f.Sync()
		if v.Get(f) != n {
			t.Errorf("final value %d, want %d", v.Get(f), n)
		}
	})
}

func TestRenamingBreaksWAR(t *testing.T) {
	// A slow reader of version 1 must not block a writer creating version
	// 2 (renaming), and must still see version 1's value afterwards.
	run(4, func(f *sched.Frame) {
		v := NewVersioned(1)
		readerDone := make(chan struct{})
		writerDone := make(chan struct{})
		var sawWhileReading int
		f.Spawn(func(c *sched.Frame) {
			<-writerDone // prove the writer finished while we hold v1
			sawWhileReading = v.Get(c)
			close(readerDone)
		}, In(v))
		f.Spawn(func(c *sched.Frame) {
			v.Set(c, 2)
			close(writerDone)
		}, Out(v))
		f.Sync()
		<-readerDone
		if sawWhileReading != 1 {
			t.Errorf("reader saw %d, want old version 1", sawWhileReading)
		}
		if v.Get(f) != 2 {
			t.Errorf("latest version %d, want 2", v.Get(f))
		}
	})
}

func TestInOutWaitsForReaders(t *testing.T) {
	run(4, func(f *sched.Frame) {
		v := NewVersioned(10)
		var readerFinished atomic.Bool
		f.Spawn(func(c *sched.Frame) {
			time.Sleep(15 * time.Millisecond)
			if v.Get(c) != 10 {
				t.Error("reader saw mutated value (InOut did not wait)")
			}
			readerFinished.Store(true)
		}, In(v))
		f.Spawn(func(c *sched.Frame) {
			if !readerFinished.Load() {
				t.Error("InOut ran before the elder reader finished")
			}
			v.Set(c, v.Get(c)+1)
		}, InOut(v))
		f.Sync()
		if v.Get(f) != 11 {
			t.Errorf("final = %d, want 11", v.Get(f))
		}
	})
}

func TestFigure1Pipeline(t *testing.T) {
	// The paper's Figure 1: produce(outdep value) in parallel,
	// consume(indep value, inoutdep fd) serialized. The consume order must
	// be the spawn order.
	const total = 100
	var orderMu sync.Mutex
	var order []int
	run(8, func(f *sched.Frame) {
		value := NewVersioned(0)
		fd := NewVersioned(0)
		for i := 0; i < total; i++ {
			item := i
			f.Spawn(func(c *sched.Frame) {
				value.Set(c, item*3) // produce
			}, Out(value))
			f.Spawn(func(c *sched.Frame) {
				got := value.Get(c)
				if got != item*3 {
					t.Errorf("consume %d read %d, want %d", item, got, item*3)
				}
				orderMu.Lock()
				order = append(order, item)
				orderMu.Unlock()
				fd.Set(c, fd.Get(c)+1)
			}, In(value), InOut(fd))
		}
		f.Sync()
		if fd.Get(f) != total {
			t.Errorf("fd = %d, want %d", fd.Get(f), total)
		}
	})
	if len(order) != total {
		t.Fatalf("consumed %d, want %d", len(order), total)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("consume order[%d] = %d; serial stage ran out of order", i, v)
		}
	}
}

func TestOutWriterDoesNotWait(t *testing.T) {
	// Even with a stuck elder reader, an Out writer must start (renaming).
	release := make(chan struct{})
	var writerRan atomic.Bool
	rt := sched.New(4)
	done := make(chan struct{})
	go func() {
		rt.Run(func(f *sched.Frame) {
			v := NewVersioned(0)
			f.Spawn(func(c *sched.Frame) {
				_ = v.Get(c)
				<-release
			}, In(v))
			f.Spawn(func(c *sched.Frame) {
				writerRan.Store(true)
				v.Set(c, 9)
			}, Out(v))
			for !writerRan.Load() {
				time.Sleep(time.Millisecond)
			}
			close(release)
			f.Sync()
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: Out writer waited for a reader")
	}
}

func TestSetFromReaderPanics(t *testing.T) {
	run(2, func(f *sched.Frame) {
		v := NewVersioned(0)
		f.Spawn(func(c *sched.Frame) {
			defer func() {
				if recover() == nil {
					t.Error("Set from In task did not panic")
				}
			}()
			v.Set(c, 1)
		}, In(v))
		f.Sync()
	})
}

func TestInlineSetWaitsForAll(t *testing.T) {
	run(4, func(f *sched.Frame) {
		v := NewVersioned(0)
		for i := 0; i < 10; i++ {
			f.Spawn(func(c *sched.Frame) { v.Set(c, v.Get(c)+1) }, InOut(v))
		}
		// Inline Set (no binding) must wait for all ten InOut tasks.
		v.Set(f, 100)
		if got := v.Get(f); got != 100 {
			t.Errorf("inline set lost: %d", got)
		}
	})
}

func TestChainOfStages(t *testing.T) {
	// Two serial stages connected by versioned objects: stage1 InOut a,
	// stage2 InOut b, item flow a→b, as in a dataflow pipeline.
	const total = 60
	var got []int
	run(8, func(f *sched.Frame) {
		item := NewVersioned(0)
		sink := NewVersioned([]int(nil))
		for i := 0; i < total; i++ {
			n := i
			f.Spawn(func(c *sched.Frame) { item.Set(c, n*n) }, Out(item))
			f.Spawn(func(c *sched.Frame) {
				sink.Set(c, append(sink.Get(c), item.Get(c)))
			}, In(item), InOut(sink))
		}
		f.Sync()
		got = sink.Get(f)
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestManyObjectsIndependent(t *testing.T) {
	run(8, func(f *sched.Frame) {
		objs := make([]*Versioned[int], 20)
		for i := range objs {
			objs[i] = NewVersioned(i)
		}
		for _, o := range objs {
			o := o
			f.Spawn(func(c *sched.Frame) { o.Set(c, o.Get(c)*2) }, InOut(o))
		}
		f.Sync()
		for i, o := range objs {
			if o.Get(f) != i*2 {
				t.Fatalf("obj %d = %d, want %d", i, o.Get(f), i*2)
			}
		}
	})
}

func TestStressInOutCounter(t *testing.T) {
	const n = 2000
	run(8, func(f *sched.Frame) {
		v := NewVersioned(0)
		for i := 0; i < n; i++ {
			f.Spawn(func(c *sched.Frame) { v.Set(c, v.Get(c)+1) }, InOut(v))
		}
		f.Sync()
		if v.Get(f) != n {
			t.Fatalf("counter = %d, want %d (lost updates)", v.Get(f), n)
		}
	})
}
