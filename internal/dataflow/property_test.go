package dataflow

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
)

// Property test: random programs over several versioned objects, with
// every task reading its In/InOut objects and writing a deterministic
// function of what it read to its Out/InOut objects. The values each
// task observes — and the final object values — must match the serial
// elision at every worker count (the Figure 1 guarantee generalized).

const (
	dfModeNone = iota
	dfModeIn
	dfModeOut
	dfModeInOut
)

type dfTask struct {
	id    int
	modes []int // per object
}

// serialOracle interprets the program sequentially.
func serialOracle(tasks []dfTask, nobj int) (observed map[int][]int, finals []int) {
	vals := make([]int, nobj)
	observed = make(map[int][]int)
	for _, tk := range tasks {
		var seen []int
		sum := tk.id
		for o, m := range tk.modes {
			if m == dfModeIn || m == dfModeInOut {
				seen = append(seen, vals[o])
				sum += vals[o]
			}
		}
		for o, m := range tk.modes {
			if m == dfModeOut {
				vals[o] = tk.id * 1000
			} else if m == dfModeInOut {
				vals[o] = sum
			}
		}
		observed[tk.id] = seen
	}
	return observed, vals
}

func runDataflow(workers int, tasks []dfTask, nobj int) (map[int][]int, []int) {
	observed := make(map[int][]int)
	var mu sync.Mutex
	finals := make([]int, nobj)
	sched.New(workers).Run(func(f *sched.Frame) {
		objs := make([]*Versioned[int], nobj)
		for i := range objs {
			objs[i] = NewVersioned(0)
		}
		for _, tk := range tasks {
			tk := tk
			var deps []sched.Dep
			for o, m := range tk.modes {
				switch m {
				case dfModeIn:
					deps = append(deps, In(objs[o]))
				case dfModeOut:
					deps = append(deps, Out(objs[o]))
				case dfModeInOut:
					deps = append(deps, InOut(objs[o]))
				}
			}
			f.Spawn(func(c *sched.Frame) {
				var seen []int
				sum := tk.id
				for o, m := range tk.modes {
					if m == dfModeIn || m == dfModeInOut {
						v := objs[o].Get(c)
						seen = append(seen, v)
						sum += v
					}
				}
				for o, m := range tk.modes {
					if m == dfModeOut {
						objs[o].Set(c, tk.id*1000)
					} else if m == dfModeInOut {
						objs[o].Set(c, sum)
					}
				}
				mu.Lock()
				observed[tk.id] = seen
				mu.Unlock()
			}, deps...)
		}
		f.Sync()
		for i, o := range objs {
			finals[i] = o.Get(f)
		}
	})
	return observed, finals
}

func TestPropertyDataflowSerializability(t *testing.T) {
	const programs = 40
	for seed := 0; seed < programs; seed++ {
		r := rng.New(uint64(seed) + 77)
		nobj := 2 + r.Intn(4)
		ntasks := 5 + r.Intn(25)
		tasks := make([]dfTask, ntasks)
		for i := range tasks {
			tasks[i] = dfTask{id: i + 1, modes: make([]int, nobj)}
			touched := false
			for o := range tasks[i].modes {
				m := r.Intn(5)
				if m > dfModeInOut {
					m = dfModeNone
				}
				tasks[i].modes[o] = m
				touched = touched || m != dfModeNone
			}
			if !touched {
				tasks[i].modes[0] = dfModeInOut
			}
		}
		wantObs, wantFinals := serialOracle(tasks, nobj)
		for _, workers := range []int{1, 3, 8} {
			gotObs, gotFinals := runDataflow(workers, tasks, nobj)
			if !reflect.DeepEqual(gotFinals, wantFinals) {
				t.Fatalf("seed %d workers %d: finals %v, serial %v", seed, workers, gotFinals, wantFinals)
			}
			if !reflect.DeepEqual(gotObs, wantObs) {
				t.Fatalf("seed %d workers %d: observations differ\n got  %v\n want %v", seed, workers, gotObs, wantObs)
			}
		}
	}
}
