// Package dataflow implements Swan-style versioned objects (Vandierendonck
// et al., PACT 2011), the task-dataflow substrate the paper's "objects"
// baseline uses and the machinery hyperqueues borrow their scheduling
// discipline from (SC 2013 §1, §2.3).
//
// A Versioned[T] is a program variable with dependence tracking attached.
// Tasks are spawned with access-mode dependences:
//
//   - In (indep): the task reads the object. It waits for the writer that
//     produced the version it reads, and runs concurrently with other
//     readers of that version.
//   - Out (outdep): the task overwrites the object. Renaming gives it a
//     fresh version immediately, breaking write-after-read and
//     write-after-write dependences — the "automatic memory management"
//     of §1.
//   - InOut (inoutdep): the task reads and writes in place. It waits for
//     the previous version's writer and all of its readers; successive
//     InOut tasks on one object therefore execute serially in program
//     order, which is how Figure 1 orders its consume stage.
package dataflow

import (
	"sync"

	"repro/internal/sched"
)

// Versioned is a variable of type T with dependence-tracking versions.
type Versioned[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	cur  *generation[T]
}

// generation is one renamed version of the object's storage.
type generation[T any] struct {
	val        *T
	hasWriter  bool // a task was spawned to produce this version
	writerDone bool
	readers    int // live reader tasks bound to this version
}

type binding[T any] struct {
	gen  *generation[T]
	prev *generation[T] // for InOut: the version whose readers/writer gate us
	mode mode
}

type mode uint8

const (
	modeIn mode = iota
	modeOut
	modeInOut
)

type objKey[T any] struct{ v *Versioned[T] }

// NewVersioned returns a versioned variable holding initial. The initial
// version counts as already written.
func NewVersioned[T any](initial T) *Versioned[T] {
	v := &Versioned[T]{}
	v.cond = sync.NewCond(&v.mu)
	val := initial
	v.cur = &generation[T]{val: &val, writerDone: true}
	return v
}

// In returns the indep dependence: the spawned task reads v.
func In[T any](v *Versioned[T]) sched.Dep { return dep[T]{v, modeIn} }

// Out returns the outdep dependence: the spawned task overwrites v and
// receives a fresh renamed version.
func Out[T any](v *Versioned[T]) sched.Dep { return dep[T]{v, modeOut} }

// InOut returns the inoutdep dependence: the spawned task reads and
// writes v in place, serialized after the previous version's writer and
// readers.
func InOut[T any](v *Versioned[T]) sched.Dep { return dep[T]{v, modeInOut} }

type dep[T any] struct {
	v *Versioned[T]
	m mode
}

// Prepare runs at spawn time in program order: it binds the child to the
// version it will access and performs renaming for writers.
func (d dep[T]) Prepare(parent, child *sched.Frame) {
	v := d.v
	v.mu.Lock()
	defer v.mu.Unlock()
	b := &binding[T]{mode: d.m}
	switch d.m {
	case modeIn:
		b.gen = v.cur
		v.cur.readers++
	case modeOut:
		val := new(T)
		v.cur = &generation[T]{val: val, hasWriter: true}
		b.gen = v.cur
	case modeInOut:
		b.prev = v.cur
		// In-place successor: shares storage with the previous version.
		v.cur = &generation[T]{val: v.cur.val, hasWriter: true}
		b.gen = v.cur
	}
	child.SetAttachment(objKey[T]{v}, b)
}

// Wait gates the child until its version is accessible.
func (d dep[T]) Wait(child *sched.Frame) {
	v := d.v
	b := child.Attachment(objKey[T]{v}).(*binding[T])
	v.mu.Lock()
	switch d.m {
	case modeIn:
		for b.gen.hasWriter && !b.gen.writerDone {
			v.cond.Wait()
		}
	case modeOut:
		// Renaming: never waits.
	case modeInOut:
		for (b.prev.hasWriter && !b.prev.writerDone) || b.prev.readers > 0 {
			v.cond.Wait()
		}
	}
	v.mu.Unlock()
}

// Ready is the non-blocking probe of sched.ReadyDep. Readiness is stable
// as the contract requires: writerDone only flips to true, and a
// superseded generation's reader count only decreases (Prepare binds new
// readers to the current generation, never to a superseded one).
func (d dep[T]) Ready(child *sched.Frame) bool {
	v := d.v
	b := child.Attachment(objKey[T]{v}).(*binding[T])
	v.mu.Lock()
	defer v.mu.Unlock()
	switch d.m {
	case modeIn:
		return !b.gen.hasWriter || b.gen.writerDone
	case modeInOut:
		return (!b.prev.hasWriter || b.prev.writerDone) && b.prev.readers == 0
	}
	return true // modeOut: renaming never waits
}

// Complete releases the child's claim on its version.
func (d dep[T]) Complete(parent, child *sched.Frame) {
	v := d.v
	b := child.Attachment(objKey[T]{v}).(*binding[T])
	v.mu.Lock()
	switch d.m {
	case modeIn:
		b.gen.readers--
	case modeOut, modeInOut:
		b.gen.writerDone = true
	}
	v.cond.Broadcast()
	v.mu.Unlock()
}

// Get returns the value of the version the calling task is bound to. A
// task bound by In, InOut (or Out, after its own Set) reads its own
// version. A task with no binding — typically the frame that created the
// object — reads the latest version, blocking until its writer has
// completed (this is the serial-elision value at this program point).
func (v *Versioned[T]) Get(f *sched.Frame) T {
	if b, ok := f.Attachment(objKey[T]{v}).(*binding[T]); ok {
		return *b.gen.val
	}
	var out T
	f.Block(func() {
		v.mu.Lock()
		g := v.cur
		for g.hasWriter && !g.writerDone {
			v.cond.Wait()
		}
		out = *g.val
		v.mu.Unlock()
	})
	return out
}

// Set writes the value of the version the calling task is bound to. A
// task bound by Out or InOut writes its own version. An unbound frame
// (the creator) waits for the latest version's writer and readers, then
// updates in place — the inline analogue of an inoutdep access.
func (v *Versioned[T]) Set(f *sched.Frame, val T) {
	if b, ok := f.Attachment(objKey[T]{v}).(*binding[T]); ok {
		if b.mode == modeIn {
			panic("dataflow: Set from a task with indep (read-only) access")
		}
		*b.gen.val = val
		return
	}
	f.Block(func() {
		v.mu.Lock()
		g := v.cur
		for (g.hasWriter && !g.writerDone) || g.readers > 0 {
			v.cond.Wait()
		}
		*g.val = val
		v.mu.Unlock()
	})
}
