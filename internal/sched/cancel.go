package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Cooperative cancellation. A cancel scope is attached to every Run (and,
// through ScopedCall, to subtrees of a Run): tasks of the scope observe
// cancellation at their blocking points — dep gates, queue Empty/Pop
// waits, credit parks, consumer-role waits — and unwind promptly instead
// of parking forever, while the task-tree bookkeeping (dep completions,
// view deposits, sync folds, live-child accounting) still runs for every
// task, so the hyperqueue invariants and the segment-pool identity
// survive the abort. See ARCHITECTURE.md, "Cancellation & teardown".
//
// The model is cooperative in the same sense as context.Context: a task
// body that never blocks runs to completion. What the scope guarantees is
// that no task of a canceled run *waits* — parked tasks wake with the
// cancellation error, and tasks not yet started skip their dep gates and
// body entirely (their completion protocol still runs, so parents sync
// and views fold as if the body were empty).

// ErrCanceled is the error a canceled Run returns when no more specific
// cause was supplied to Cancel.
var ErrCanceled = errors.New("swan: canceled")

// CancelScope is the cancellation domain of one Run (or of one
// ScopedCall subtree). It is safe for concurrent use; the zero of the
// methods on a nil *CancelScope report "never canceled", so frames
// created outside a Run degrade gracefully.
type CancelScope struct {
	parent *CancelScope

	// canceled is the lock-free fast-path flag park sites load before
	// touching mu.
	canceled atomic.Bool

	mu       sync.Mutex
	err      error                     // first cancellation cause; nil while live
	panicVal any                       // first real task panic of the scope
	wakers   map[uint64]func()         // park-site broadcasts, invoked once on cancel
	nextID   uint64                    // waker id allocator
	children map[*CancelScope]struct{} // live ScopedCall sub-scopes
}

// newCancelScope creates a scope under parent (nil for a Run root). A
// child of an already-canceled parent is born canceled with the same
// cause.
func newCancelScope(parent *CancelScope) *CancelScope {
	s := &CancelScope{parent: parent}
	if parent != nil {
		parent.mu.Lock()
		if parent.err != nil {
			s.err = parent.err
			s.canceled.Store(true)
			parent.mu.Unlock()
			return s
		}
		if parent.children == nil {
			parent.children = make(map[*CancelScope]struct{})
		}
		parent.children[s] = struct{}{}
		parent.mu.Unlock()
	}
	return s
}

// detach removes a completed sub-scope from its parent so the parent's
// child set does not grow across many ScopedCalls.
func (s *CancelScope) detach() {
	if s == nil || s.parent == nil {
		return
	}
	p := s.parent
	p.mu.Lock()
	delete(p.children, s)
	p.mu.Unlock()
}

// Cancel cancels the scope with the given cause (nil means ErrCanceled):
// the first call wins, registered park-site wakers fire exactly once, and
// live sub-scopes are canceled with the same cause. Cancel is
// asynchronous — it returns without waiting for the scope's tasks to
// quiesce; Run (or ScopedCall) is what observes the quiesced tree.
func (s *CancelScope) Cancel(err error) {
	if s == nil {
		return
	}
	if err == nil {
		err = ErrCanceled
	}
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	s.err = err
	s.canceled.Store(true)
	wakers := make([]func(), 0, len(s.wakers))
	for _, fn := range s.wakers {
		wakers = append(wakers, fn)
	}
	s.wakers = nil
	children := s.children
	s.children = nil
	s.mu.Unlock()
	for _, fn := range wakers {
		fn()
	}
	for c := range children {
		c.Cancel(err)
	}
}

// Canceled reports whether the scope has been canceled. One atomic load;
// this is the probe park-site predicates use.
func (s *CancelScope) Canceled() bool { return s != nil && s.canceled.Load() }

// Err returns the cancellation cause, or nil while the scope is live.
func (s *CancelScope) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// OnCancel registers fn to run once when the scope is canceled —
// park sites register a broadcast of the condition variable they are
// about to wait on, so a cancellation reaches them while they sleep. If
// the scope is already canceled, fn runs immediately. The returned
// function unregisters fn (idempotently); park sites defer it so the
// waker set stays bounded by the number of currently-parked tasks.
func (s *CancelScope) OnCancel(fn func()) (unregister func()) {
	if s == nil {
		return func() {}
	}
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		fn()
		return func() {}
	}
	if s.wakers == nil {
		s.wakers = make(map[uint64]func())
	}
	id := s.nextID
	s.nextID++
	s.wakers[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.wakers, id)
		s.mu.Unlock()
	}
}

// recordPanic stores the first real task panic of the scope and cancels
// it, so siblings of a panicking task stop at their next blocking point
// instead of running the doomed pipeline to completion. Run re-raises
// the stored value after the tree quiesces; ScopedCall converts it to a
// PanicError.
func (s *CancelScope) recordPanic(v any) {
	if s == nil {
		// A frame with no scope (defensive; unreachable through Run).
		panic(v)
	}
	s.mu.Lock()
	if s.panicVal == nil {
		s.panicVal = v
	}
	s.mu.Unlock()
	s.Cancel(&PanicError{Value: v})
}

// PanicError is the cancellation cause recorded when a task panic (rather
// than an explicit Cancel or a queue Fail) cancels a scope. Run re-raises
// the original panic value; ScopedCall returns the PanicError.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return fmt.Sprintf("swan: task panicked: %v", e.Value) }

// CancelUnwind is the panic value a blocking runtime operation raises to
// unwind its task after observing that the task's scope was canceled. The
// substrate absorbs it — it is never recorded as a task panic and never
// re-raised by Run; the scope's error (already set) is what Run returns.
// Client code must not swallow it: a recover that sees a CancelUnwind
// must re-panic it.
type CancelUnwind struct{ Err error }

// AbortUnwind is the panic value a queue operation raises after the queue
// was poisoned with Fail. The substrate absorbs it and cancels the task's
// scope with Err, so the whole Run unwinds and returns the failure.
// Client code must not swallow it.
type AbortUnwind struct{ Err error }

// absorbTaskPanic classifies a value recovered from a task body or dep
// gate: sentinel unwinds cancel the scope (keeping the first cause) and
// are not task panics; anything else is a real panic — counted, recorded
// first-wins on the scope, and the scope is canceled so siblings stop.
func (f *Frame) absorbTaskPanic(r any) {
	switch p := r.(type) {
	case CancelUnwind:
		f.scope.Cancel(p.Err)
	case AbortUnwind:
		f.scope.Cancel(p.Err)
	default:
		f.rt.taskPanics.Add(1)
		f.scope.recordPanic(r)
	}
}

// CancelScope returns the frame's cancel scope: the Run scope, or the
// nearest enclosing ScopedCall sub-scope. It never returns nil for a
// frame created by Run, and the methods of a nil scope are safe no-ops,
// so callers need not check.
func (f *Frame) CancelScope() *CancelScope { return f.scope }

// Cancel cancels every Run currently in flight on the runtime with the
// given cause (nil means ErrCanceled) and marks the runtime so future
// Runs are born canceled. It is the shutdown path — a SIGINT handler
// cancels the runtime, in-flight Runs quiesce in bounded time and return
// the cause, and the process can collect final stats. For canceling one
// pipeline without condemning the runtime, use Frame.CancelScope (inside
// the run) or ScopedCall (for a subtree).
func (rt *Runtime) Cancel(err error) {
	if err == nil {
		err = ErrCanceled
	}
	rt.cancelMu.Lock()
	if rt.rtErr == nil {
		rt.rtErr = err
	}
	scopes := make([]*CancelScope, 0, len(rt.scopes))
	for s := range rt.scopes {
		scopes = append(scopes, s)
	}
	rt.cancelMu.Unlock()
	for _, s := range scopes {
		s.Cancel(err)
	}
}

// beginRun creates and registers the cancel scope of one Run. A Run
// started after Runtime.Cancel is born canceled: its root body is
// skipped and it returns the runtime's cancellation cause.
func (rt *Runtime) beginRun() *CancelScope {
	s := newCancelScope(nil)
	rt.cancelMu.Lock()
	if rt.scopes == nil {
		rt.scopes = make(map[*CancelScope]struct{})
	}
	rt.scopes[s] = struct{}{}
	if rt.rtErr != nil {
		s.err = rt.rtErr
		s.canceled.Store(true)
	}
	rt.cancelMu.Unlock()
	return s
}

// endRun unregisters a Run's scope after the tree has quiesced and
// resolves its outcome: a recorded real panic is re-raised (preserving
// the pre-cancellation contract), a cancellation is returned as the
// Run's error, and a clean run returns nil.
func (rt *Runtime) endRun(s *CancelScope) error {
	rt.cancelMu.Lock()
	delete(rt.scopes, s)
	rt.cancelMu.Unlock()
	s.mu.Lock()
	v, err := s.panicVal, s.err
	s.mu.Unlock()
	if v != nil {
		rt.canceledRuns.Add(1)
		panic(v)
	}
	if err != nil {
		rt.canceledRuns.Add(1)
		return err
	}
	return nil
}

// ScopedCall runs fn as a child frame under a fresh cancel sub-scope and
// waits for the subtree to complete, returning the sub-scope's outcome:
// nil on clean completion, the cancellation cause if fn's subtree was
// canceled (fn may cancel its own scope via CancelScope), or a PanicError
// if a task of the subtree panicked. Cancellation and panics inside the
// subtree are contained — the caller's scope is unaffected — while a
// cancellation of the caller's scope propagates down into the sub-scope.
// It is the building block for pipelines that must be individually
// abortable inside a long-lived Run (one connection's pipeline inside a
// server, one chaos-killed pipeline inside the soak fuzzer).
func (f *Frame) ScopedCall(fn func(*Frame), deps ...Dep) error {
	child := newCancelScope(f.scope)
	defer child.detach()
	f.Call(func(c *Frame) {
		c.scope = child
		if child.Canceled() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				c.absorbTaskPanic(r)
			}
		}()
		fn(c)
	}, deps...)
	child.mu.Lock()
	v, err := child.panicVal, child.err
	child.mu.Unlock()
	if v != nil {
		return &PanicError{Value: v}
	}
	return err
}
