package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSpawnNRunsAll checks that every batched child runs exactly once
// with its own index, under both substrates.
func TestSpawnNRunsAll(t *testing.T) {
	for _, policy := range []SpawnPolicy{PolicySteal, PolicyGoroutine} {
		t.Run(policy.String(), func(t *testing.T) {
			const n = 100
			var ran [n]atomic.Int32
			NewWithPolicy(4, policy).Run(func(f *Frame) {
				f.SpawnN(n, func(c *Frame, i int) { ran[i].Add(1) })
				f.Sync()
			})
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Fatalf("child %d ran %d times, want 1", i, got)
				}
			}
		})
	}
}

// TestSpawnNZeroAndNegative checks the degenerate batch sizes are no-ops.
func TestSpawnNZeroAndNegative(t *testing.T) {
	New(2).Run(func(f *Frame) {
		f.SpawnN(0, func(*Frame, int) { t.Error("child of empty batch ran") })
		f.SpawnN(-3, func(*Frame, int) { t.Error("child of negative batch ran") })
		f.Sync()
	})
}

// TestSpawnNPrepareInProgramOrder checks the serial-elision property the
// hyperqueue depends on: dep Prepare runs synchronously in the parent,
// in index order, exactly as consecutive Spawn calls would.
func TestSpawnNPrepareInProgramOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int32
	d := depFunc{prepare: func(p, c *Frame) {
		mu.Lock()
		order = append(order, c.label[len(c.label)-1])
		mu.Unlock()
	}}
	New(4).Run(func(f *Frame) {
		f.Spawn(func(*Frame) {}) // offset the spawn indices
		f.SpawnN(20, func(*Frame, int) {}, d)
		f.Sync()
	})
	if len(order) != 20 {
		t.Fatalf("Prepare ran %d times, want 20", len(order))
	}
	for i, v := range order {
		if v != int32(i+1) {
			t.Fatalf("Prepare order = %v; not program order", order)
		}
	}
}

// TestSpawnBatchPerChildDeps gives each batched child its own dep and
// checks the full protocol runs per child.
func TestSpawnBatchPerChildDeps(t *testing.T) {
	const n = 16
	recs := make([]*depRecorder, n)
	children := make([]BatchChild, n)
	var ran [n]atomic.Int32
	for i := range children {
		i := i
		recs[i] = &depRecorder{}
		children[i] = BatchChild{
			Body: func(*Frame) { ran[i].Add(1) },
			Deps: []Dep{recs[i]},
		}
	}
	New(4).Run(func(f *Frame) {
		f.SpawnBatch(children)
		f.Sync()
	})
	for i := range recs {
		if ran[i].Load() != 1 {
			t.Fatalf("child %d ran %d times", i, ran[i].Load())
		}
		want := []string{"prepare", "wait", "body?", "complete"}
		got := recs[i].events
		if len(got) != 3 || got[0] != "prepare" || got[1] != "wait" || got[2] != "complete" {
			t.Fatalf("child %d dep events = %v, want %v minus body", i, got, want)
		}
	}
}

// TestSpawnNPanicInPrepare checks the mid-batch Prepare failure path:
// the failing child and the unprepared rest are rolled back, the fully
// prepared children are still published (their dep protocol completes,
// so nothing leaks), Sync does not hang, and the panic reaches Run's
// caller. Since panics cancel the run's scope, prepared children that
// had not started by the time the panic was recorded are skipped — at
// most the prepared prefix runs, never the rolled-back suffix.
func TestSpawnNPanicInPrepare(t *testing.T) {
	const n, failAt = 10, 6
	var prepared atomic.Int32
	var completed atomic.Int32
	d := depFunc{
		prepare: func(p, c *Frame) {
			if prepared.Add(1) == failAt+1 {
				panic("prepare failed")
			}
		},
		complete: func(p, c *Frame) { completed.Add(1) },
	}
	var ran atomic.Int32
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Prepare panic did not propagate out of Run")
		}
		if got := ran.Load(); got > failAt {
			t.Fatalf("%d children ran, want at most the %d prepared before the failure", got, failAt)
		}
		if got := completed.Load(); got != failAt {
			t.Fatalf("%d dep completions, want %d (every prepared child must complete)", got, failAt)
		}
	}()
	New(2).Run(func(f *Frame) {
		f.SpawnN(n, func(c *Frame, i int) { ran.Add(1) }, d)
		f.Sync()
	})
}

// TestSpawnNStress interleaves batched and plain spawns across a deep
// tree to shake out accounting bugs in live-child tracking and the
// batched wake sweep.
func TestSpawnNStress(t *testing.T) {
	var count atomic.Int64
	var rec func(f *Frame, depth int)
	rec = func(f *Frame, depth int) {
		if depth == 0 {
			count.Add(1)
			return
		}
		f.SpawnN(3, func(c *Frame, i int) { rec(c, depth-1) })
		f.Spawn(func(c *Frame) { rec(c, depth-1) })
		f.Sync()
	}
	New(4).Run(func(f *Frame) { rec(f, 6) })
	want := int64(4 * 4 * 4 * 4 * 4 * 4) // 4^6 leaves
	if got := count.Load(); got != want {
		t.Fatalf("leaves = %d, want %d", got, want)
	}
}
