package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCompletes(t *testing.T) {
	var ran bool
	New(2).Run(func(f *Frame) { ran = true })
	if !ran {
		t.Fatal("root body did not run")
	}
}

func TestSpawnAllRun(t *testing.T) {
	var n atomic.Int64
	New(4).Run(func(f *Frame) {
		for i := 0; i < 100; i++ {
			f.Spawn(func(*Frame) { n.Add(1) })
		}
		f.Sync()
		if n.Load() != 100 {
			t.Errorf("after Sync: %d children ran, want 100", n.Load())
		}
	})
	if n.Load() != 100 {
		t.Fatalf("%d children ran, want 100", n.Load())
	}
}

func TestImplicitSyncAtFrameEnd(t *testing.T) {
	var inner atomic.Bool
	New(4).Run(func(f *Frame) {
		f.Spawn(func(c *Frame) {
			c.Spawn(func(*Frame) {
				time.Sleep(10 * time.Millisecond)
				inner.Store(true)
			})
			// No explicit Sync: the implicit one must cover the grandchild.
		})
		f.Sync()
		if !inner.Load() {
			t.Error("grandchild not finished at parent Sync despite implicit sync")
		}
	})
}

func TestNestedSpawnTree(t *testing.T) {
	var n atomic.Int64
	var rec func(f *Frame, depth int)
	rec = func(f *Frame, depth int) {
		n.Add(1)
		if depth == 0 {
			return
		}
		for i := 0; i < 3; i++ {
			f.Spawn(func(c *Frame) { rec(c, depth-1) })
		}
		f.Sync()
	}
	New(8).Run(func(f *Frame) { rec(f, 5) })
	want := int64(1 + 3 + 9 + 27 + 81 + 243)
	if n.Load() != want {
		t.Fatalf("ran %d frames, want %d", n.Load(), want)
	}
}

func TestParallelismBoundedBySlots(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	New(workers).Run(func(f *Frame) {
		for i := 0; i < 30; i++ {
			f.Spawn(func(*Frame) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
			})
		}
		f.Sync()
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d worker slots", p, workers)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d; tasks did not run in parallel", p)
	}
}

func TestBlockReleasesSlot(t *testing.T) {
	// One worker slot: a task blocking via Block must let another task run.
	rt := New(1)
	unblock := make(chan struct{})
	var order []string
	var mu sync.Mutex
	rt.Run(func(f *Frame) {
		f.Spawn(func(c *Frame) {
			c.Block(func() { <-unblock })
			mu.Lock()
			order = append(order, "blocked-task")
			mu.Unlock()
		})
		f.Spawn(func(*Frame) {
			mu.Lock()
			order = append(order, "runner")
			mu.Unlock()
			close(unblock)
		})
		f.Sync()
	})
	if len(order) != 2 || order[0] != "runner" {
		t.Fatalf("order = %v; blocked task held the only slot", order)
	}
}

func TestSyncReleasesSlot(t *testing.T) {
	// One slot: parent Sync must not starve the child it waits for.
	done := make(chan struct{})
	go func() {
		New(1).Run(func(f *Frame) {
			f.Spawn(func(*Frame) {})
			f.Sync()
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: Sync with one worker slot")
	}
}

func TestProgramOrderLabels(t *testing.T) {
	type rec struct{ a, b, c *Frame }
	var r rec
	var root *Frame
	New(2).Run(func(f *Frame) {
		root = f
		var wg sync.WaitGroup
		wg.Add(3)
		f.Spawn(func(c *Frame) { r.a = c; wg.Done() })
		f.Spawn(func(c *Frame) {
			r.b = c
			c.Spawn(func(g *Frame) { r.c = g; wg.Done() })
			wg.Done()
		})
		f.Sync()
		wg.Wait()
	})
	if !r.a.Before(r.b) {
		t.Error("a must precede b")
	}
	if r.b.Before(r.a) {
		t.Error("b must not precede a")
	}
	if !r.a.Before(r.c) {
		t.Error("a must precede nested c")
	}
	if !r.b.IsAncestorOf(r.c) {
		t.Error("b must be ancestor of c")
	}
	if r.b.Before(r.c) || r.c.Before(r.b) {
		// An ancestor relationship: Before treats the ancestor as earlier
		// (prefix), so b.Before(c) is actually true by label order.
		// Visibility logic must combine Before with IsAncestorOf; here we
		// just pin the label semantics.
	}
	if !root.IsAncestorOf(r.a) || !root.IsAncestorOf(r.c) {
		t.Error("root must be ancestor of all")
	}
	if root.IsAncestorOf(root) {
		t.Error("a frame is not its own ancestor")
	}
}

func TestCallRunsInline(t *testing.T) {
	var seq []int
	New(4).Run(func(f *Frame) {
		seq = append(seq, 1)
		f.Call(func(*Frame) { seq = append(seq, 2) })
		seq = append(seq, 3)
	})
	if len(seq) != 3 || seq[0] != 1 || seq[1] != 2 || seq[2] != 3 {
		t.Fatalf("seq = %v, want [1 2 3]", seq)
	}
}

// depRecorder records the phase protocol of the Dep interface.
type depRecorder struct {
	mu     sync.Mutex
	events []string
	gate   chan struct{}
}

func (d *depRecorder) log(s string) {
	d.mu.Lock()
	d.events = append(d.events, s)
	d.mu.Unlock()
}

func (d *depRecorder) Prepare(parent, child *Frame) { d.log("prepare") }
func (d *depRecorder) Wait(child *Frame) {
	d.log("wait")
	if d.gate != nil {
		<-d.gate
	}
}
func (d *depRecorder) Complete(parent, child *Frame) { d.log("complete") }

func TestDepProtocolOrder(t *testing.T) {
	d := &depRecorder{}
	New(2).Run(func(f *Frame) {
		f.Spawn(func(*Frame) { d.log("body") }, d)
		f.Sync()
	})
	want := []string{"prepare", "wait", "body", "complete"}
	if len(d.events) != len(want) {
		t.Fatalf("events = %v, want %v", d.events, want)
	}
	for i := range want {
		if d.events[i] != want[i] {
			t.Fatalf("events = %v, want %v", d.events, want)
		}
	}
}

func TestDepPrepareInProgramOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	mk := func(id int) Dep {
		return depFunc{prepare: func(p, c *Frame) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}}
	}
	New(4).Run(func(f *Frame) {
		for i := 0; i < 20; i++ {
			f.Spawn(func(*Frame) {}, mk(i))
		}
		f.Sync()
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("Prepare order = %v; not program order", order)
		}
	}
}

func TestDepGateDelaysChild(t *testing.T) {
	d := &depRecorder{gate: make(chan struct{})}
	var bodyRan atomic.Bool
	rt := New(2)
	done := make(chan struct{})
	go func() {
		rt.Run(func(f *Frame) {
			f.Spawn(func(*Frame) { bodyRan.Store(true) }, d)
			f.Sync()
		})
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if bodyRan.Load() {
		t.Fatal("child ran before dep gate opened")
	}
	close(d.gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("child never ran after gate opened")
	}
	if !bodyRan.Load() {
		t.Fatal("child body skipped")
	}
}

// TestGatedChildDoesNotHoldSlot: a child blocked in Wait must not consume
// a worker slot; other work proceeds even with one slot.
func TestGatedChildDoesNotHoldSlot(t *testing.T) {
	d := &depRecorder{gate: make(chan struct{})}
	var ran atomic.Bool
	rt := New(1)
	done := make(chan struct{})
	go func() {
		rt.Run(func(f *Frame) {
			f.Spawn(func(*Frame) {}, d)
			f.Spawn(func(*Frame) { ran.Store(true); close(d.gate) })
			f.Sync()
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: gated child starved the runnable one")
	}
	if !ran.Load() {
		t.Fatal("second child never ran")
	}
}

type depFunc struct {
	prepare  func(p, c *Frame)
	wait     func(c *Frame)
	complete func(p, c *Frame)
}

func (d depFunc) Prepare(p, c *Frame) {
	if d.prepare != nil {
		d.prepare(p, c)
	}
}
func (d depFunc) Wait(c *Frame) {
	if d.wait != nil {
		d.wait(c)
	}
}
func (d depFunc) Complete(p, c *Frame) {
	if d.complete != nil {
		d.complete(p, c)
	}
}

func TestCompleteBeforeParentSyncReturns(t *testing.T) {
	var completed atomic.Bool
	d := depFunc{complete: func(p, c *Frame) {
		time.Sleep(5 * time.Millisecond)
		completed.Store(true)
	}}
	New(2).Run(func(f *Frame) {
		f.Spawn(func(*Frame) {}, d)
		f.Sync()
		if !completed.Load() {
			t.Error("Sync returned before dep Complete ran")
		}
	})
}

func TestSyncHooksRunAfterChildren(t *testing.T) {
	var childDone atomic.Bool
	var hookSawChild atomic.Bool
	New(2).Run(func(f *Frame) {
		f.AddSyncHook(func() { hookSawChild.Store(childDone.Load()) })
		f.Spawn(func(*Frame) {
			time.Sleep(5 * time.Millisecond)
			childDone.Store(true)
		})
		f.Sync()
	})
	if !hookSawChild.Load() {
		t.Fatal("sync hook ran before children completed")
	}
}

func TestAttachments(t *testing.T) {
	New(1).Run(func(f *Frame) {
		if f.Attachment("k") != nil {
			t.Error("unexpected attachment")
		}
		f.SetAttachment("k", 42)
		if f.Attachment("k") != 42 {
			t.Error("attachment lost")
		}
		f.SetAttachment("k", 43)
		if f.Attachment("k") != 43 {
			t.Error("attachment not overwritten")
		}
	})
}

func TestNestedRunSharesSlots(t *testing.T) {
	rt := New(2)
	var n atomic.Int64
	rt.Run(func(f *Frame) {
		f.Spawn(func(*Frame) { n.Add(1) })
		f.Sync()
	})
	rt.Run(func(f *Frame) {
		f.Spawn(func(*Frame) { n.Add(1) })
		f.Sync()
	})
	if n.Load() != 2 {
		t.Fatalf("n = %d, want 2", n.Load())
	}
}

func TestWorkersMinimumOne(t *testing.T) {
	if got := New(0).Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
	if got := New(-5).Workers(); got != 1 {
		t.Fatalf("Workers() = %d, want 1", got)
	}
}

func TestManySmallTasksStress(t *testing.T) {
	var n atomic.Int64
	New(8).Run(func(f *Frame) {
		for i := 0; i < 5000; i++ {
			f.Spawn(func(*Frame) { n.Add(1) })
		}
		f.Sync()
	})
	if n.Load() != 5000 {
		t.Fatalf("ran %d, want 5000", n.Load())
	}
}

func BenchmarkSpawnSync(b *testing.B) {
	rt := New(4)
	rt.Run(func(f *Frame) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Spawn(func(*Frame) {})
			if i%64 == 63 {
				f.Sync()
			}
		}
		f.Sync()
	})
}

func TestTaskPanicPropagatesFromRun(t *testing.T) {
	var siblingRan atomic.Bool
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-raise the task panic")
		}
		if r != "boom" {
			t.Fatalf("panic value = %v, want boom", r)
		}
		if !siblingRan.Load() {
			t.Error("sibling task did not complete before Run returned")
		}
	}()
	New(4).Run(func(f *Frame) {
		f.Spawn(func(*Frame) { panic("boom") })
		f.Spawn(func(*Frame) {
			time.Sleep(10 * time.Millisecond)
			siblingRan.Store(true)
		})
		f.Sync()
	})
}

func TestFirstPanicWins(t *testing.T) {
	defer func() {
		r := recover()
		if r != "first" && r != "second" {
			t.Fatalf("panic value = %v", r)
		}
	}()
	New(1).Run(func(f *Frame) {
		f.Spawn(func(*Frame) { panic("first") })
		f.Sync()
		f.Spawn(func(*Frame) { panic("second") })
		f.Sync()
	})
}

func TestPanicDoesNotHangSync(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer func() { recover(); close(done) }()
		New(2).Run(func(f *Frame) {
			f.Spawn(func(c *Frame) {
				c.Spawn(func(*Frame) {}) // grandchild still completes
				panic("child dies")
			})
			f.Sync()
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sync hung after task panic")
	}
}

func TestRuntimeReusableAfterPanic(t *testing.T) {
	rt := New(2)
	func() {
		defer func() { recover() }()
		rt.Run(func(f *Frame) { panic("x") })
	}()
	var ran bool
	rt.Run(func(f *Frame) { ran = true })
	if !ran {
		t.Fatal("runtime unusable after a recovered panic")
	}
}

func TestParallelFlag(t *testing.T) {
	New(1).Run(func(f *Frame) {
		if f.Parallel() {
			t.Error("Parallel() true with one worker")
		}
	})
	New(2).Run(func(f *Frame) {
		if !f.Parallel() {
			t.Error("Parallel() false with two workers")
		}
	})
}

// TestRuntimeShared checks the runtime-scoped singleton store: one create
// per key per runtime, stable across calls and concurrent first users,
// independent between runtimes.
func TestRuntimeShared(t *testing.T) {
	type keyA struct{}
	type keyB struct{}
	rt := New(2)
	var creates atomic.Int32
	mk := func() any { creates.Add(1); return new(int) }
	var wg sync.WaitGroup
	got := make([]any, 8)
	for i := range got {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = rt.Shared(keyA{}, mk)
		}()
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("Shared returned distinct values for the same key")
		}
	}
	if n := creates.Load(); n != 1 {
		t.Fatalf("create ran %d times, want 1", n)
	}
	if rt.Shared(keyB{}, mk) == got[0] {
		t.Fatal("distinct keys share a value")
	}
	if New(2).Shared(keyA{}, mk) == got[0] {
		t.Fatal("distinct runtimes share a value")
	}
}
