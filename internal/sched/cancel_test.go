package sched

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// policies spans both substrates: every cancellation behavior must be
// identical under the work-stealing pool and the goroutine baseline.
var policies = []SpawnPolicy{PolicySteal, PolicyGoroutine}

// TestRunReturnsNilClean checks the new Run signature's base case: a
// clean run returns nil.
func TestRunReturnsNilClean(t *testing.T) {
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			if err := NewWithPolicy(2, policy).Run(func(f *Frame) {
				f.Spawn(func(*Frame) {})
				f.Sync()
			}); err != nil {
				t.Fatalf("clean Run returned %v, want nil", err)
			}
		})
	}
}

// TestRunSelfCancel checks that a body canceling its own scope makes Run
// return the cause while the body itself runs to completion.
func TestRunSelfCancel(t *testing.T) {
	cause := errors.New("enough")
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			var finished atomic.Bool
			err := NewWithPolicy(2, policy).Run(func(f *Frame) {
				f.CancelScope().Cancel(cause)
				finished.Store(true)
			})
			if !errors.Is(err, cause) {
				t.Fatalf("Run returned %v, want %v", err, cause)
			}
			if !finished.Load() {
				t.Fatal("cancellation interrupted the non-blocking body")
			}
		})
	}
}

// TestRunCancelNilIsErrCanceled checks the default cause.
func TestRunCancelNilIsErrCanceled(t *testing.T) {
	err := New(2).Run(func(f *Frame) { f.CancelScope().Cancel(nil) })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run returned %v, want ErrCanceled", err)
	}
}

// TestRuntimeCancelTerminal checks the shutdown path: Runtime.Cancel
// condemns the runtime, so a later Run skips its body entirely and
// returns the stored cause.
func TestRuntimeCancelTerminal(t *testing.T) {
	cause := errors.New("shutdown")
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := NewWithPolicy(2, policy)
			rt.Cancel(cause)
			var ran atomic.Bool
			err := rt.Run(func(f *Frame) { ran.Store(true) })
			if !errors.Is(err, cause) {
				t.Fatalf("Run after Runtime.Cancel returned %v, want %v", err, cause)
			}
			if ran.Load() {
				t.Fatal("body of a born-canceled Run executed")
			}
			if s := rt.Stats(); s.CanceledRuns != 1 {
				t.Fatalf("CanceledRuns = %d, want 1", s.CanceledRuns)
			}
		})
	}
}

// TestRuntimeCancelWakesInFlightRun checks that Runtime.Cancel reaches a
// Run already parked: a task blocked in a scope-aware wait wakes with
// the cause and the Run quiesces in bounded time.
func TestRuntimeCancelWakesInFlightRun(t *testing.T) {
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := NewWithPolicy(2, policy)
			parked := make(chan struct{})
			done := make(chan error, 1)
			go func() {
				done <- rt.Run(func(f *Frame) {
					sc := f.CancelScope()
					ch := make(chan struct{})
					unreg := sc.OnCancel(func() { close(ch) })
					defer unreg()
					close(parked)
					f.Block(func() { <-ch })
				})
			}()
			<-parked
			rt.Cancel(nil)
			select {
			case err := <-done:
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("Run returned %v, want ErrCanceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("canceled Run did not quiesce")
			}
		})
	}
}

// TestPanicCancelsSiblings checks the upgraded panic contract: a task
// panic cancels the run's scope (siblings parked in scope-aware waits
// wake with a *PanicError cause, later siblings may be skipped), the
// original panic value is re-raised out of Run, and nothing hangs.
func TestPanicCancelsSiblings(t *testing.T) {
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			var parkedSawCause error
			var parkedRan atomic.Bool
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("task panic did not propagate out of Run")
				}
				if r != "boom" {
					t.Fatalf("recovered %v, want the original panic value", r)
				}
				if parkedRan.Load() {
					var pe *PanicError
					if !errors.As(parkedSawCause, &pe) || pe.Value != "boom" {
						t.Fatalf("parked sibling saw cause %v, want *PanicError{boom}", parkedSawCause)
					}
				}
			}()
			NewWithPolicy(4, policy).Run(func(f *Frame) {
				sc := f.CancelScope()
				f.Spawn(func(c *Frame) {
					// Parks until the sibling's panic cancels the scope. If
					// the panic lands first this task is skipped instead —
					// either way the run quiesces.
					parkedRan.Store(true)
					ch := make(chan struct{})
					unreg := sc.OnCancel(func() { close(ch) })
					defer unreg()
					c.Block(func() { <-ch })
					parkedSawCause = sc.Err()
				})
				f.Spawn(func(c *Frame) { panic("boom") })
				f.Sync()
			})
		})
	}
}

// TestPanicCountsInStats checks the swan_sched_panics_total feed.
func TestPanicCountsInStats(t *testing.T) {
	rt := New(2)
	func() {
		defer func() { recover() }()
		rt.Run(func(f *Frame) {
			f.Spawn(func(*Frame) { panic("counted") })
			f.Sync()
		})
	}()
	s := rt.Stats()
	if s.TaskPanics != 1 {
		t.Fatalf("TaskPanics = %d, want 1", s.TaskPanics)
	}
	if s.CanceledRuns != 1 {
		t.Fatalf("CanceledRuns = %d, want 1", s.CanceledRuns)
	}
}

// TestScopedCallContainment checks that ScopedCall sub-scopes contain
// both explicit cancellation and panics: the caller's scope stays live
// and Run returns nil.
func TestScopedCallContainment(t *testing.T) {
	inner := errors.New("inner")
	for _, policy := range policies {
		t.Run(policy.String(), func(t *testing.T) {
			err := NewWithPolicy(2, policy).Run(func(f *Frame) {
				if got := f.ScopedCall(func(c *Frame) {
					c.CancelScope().Cancel(inner)
				}); !errors.Is(got, inner) {
					t.Errorf("canceled ScopedCall returned %v, want %v", got, inner)
				}
				if f.CancelScope().Canceled() {
					t.Error("sub-scope cancel leaked into the caller's scope")
				}
				got := f.ScopedCall(func(c *Frame) {
					c.Spawn(func(*Frame) { panic("sub") })
					c.Sync()
				})
				var pe *PanicError
				if !errors.As(got, &pe) || pe.Value != "sub" {
					t.Errorf("panicking ScopedCall returned %v, want *PanicError{sub}", got)
				}
				if f.CancelScope().Canceled() {
					t.Error("sub-scope panic leaked into the caller's scope")
				}
				if got := f.ScopedCall(func(c *Frame) {}); got != nil {
					t.Errorf("clean ScopedCall returned %v, want nil", got)
				}
			})
			if err != nil {
				t.Fatalf("Run returned %v, want nil (sub-scopes contained)", err)
			}
		})
	}
}

// TestScopedCallInheritsParentCancel checks downward propagation: a
// sub-scope born under a canceled parent is canceled with the same
// cause.
func TestScopedCallInheritsParentCancel(t *testing.T) {
	cause := errors.New("parent gone")
	err := New(2).Run(func(f *Frame) {
		f.CancelScope().Cancel(cause)
		var ran atomic.Bool
		if got := f.ScopedCall(func(c *Frame) { ran.Store(true) }); !errors.Is(got, cause) {
			t.Errorf("ScopedCall under canceled parent returned %v, want %v", got, cause)
		}
		if ran.Load() {
			t.Error("body of a born-canceled ScopedCall executed")
		}
	})
	if !errors.Is(err, cause) {
		t.Fatalf("Run returned %v, want %v", err, cause)
	}
}
