// Package sched implements the Swan-like task runtime that hyperqueues are
// built on (Vandierendonck et al., PACT 2011; SC 2013 §2.3, §4).
//
// The runtime exposes a Cilk-style spawn/sync task tree. Each spawned task
// runs in its own frame; dependence objects (Dep) passed at spawn time
// gate when the task may start and are notified when it completes, which
// is exactly the protocol the paper's queue access modes (pushdep, popdep,
// pushpopdep) and versioned-object access modes (indep, outdep, inoutdep)
// need.
//
// # Scheduling substrate
//
// The paper's Swan runtime uses Cilk-style work-first scheduling with
// continuation stealing. Go cannot steal continuations, so this runtime
// uses help-first spawning (the child task is handed to the scheduler and
// the parent continues) with a pool of P worker slots. A task holds a slot
// while it executes; every potentially-blocking runtime operation — Sync,
// a queue Empty/Pop wait, a pop-serialization wait, a dataflow gate —
// releases the slot for the duration of the wait, mirroring the paper's
// choice to "block the worker" (§4.5) while keeping P runnable tasks
// whenever P are ready. The hyperqueue view algebra (internal/core) is
// order-robust and correct under both child-first and help-first
// execution orders.
//
// # Program order
//
// Determinism reasoning in the paper is phrased in terms of the serial
// elision: the depth-first execution order of the spawn tree. Each frame
// carries a label — the path of spawn indices from the root — so that
// "task A precedes task B in program order" is the lexicographic
// comparison of labels. The hyperqueue uses labels to decide which
// producers' values a consumer may observe (§2.3 rule 4).
package sched

import (
	"sync"
)

// Runtime is a task scheduler with a fixed number of worker slots. The
// number of slots plays the role of the number of cores in the paper's
// scale-free sweeps: a program written against Runtime does not change
// when the slot count changes.
type Runtime struct {
	slots   chan struct{}
	workers int

	panicMu  sync.Mutex
	panicVal any // first task panic, re-raised by Run
}

// recordPanic stores the first panic raised by any task; Run re-raises
// it after the task tree has quiesced.
func (rt *Runtime) recordPanic(v any) {
	rt.panicMu.Lock()
	if rt.panicVal == nil {
		rt.panicVal = v
	}
	rt.panicMu.Unlock()
}

// New returns a runtime with the given number of worker slots (minimum 1).
func New(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	rt := &Runtime{slots: make(chan struct{}, workers), workers: workers}
	for i := 0; i < workers; i++ {
		rt.slots <- struct{}{}
	}
	return rt
}

// Workers reports the number of worker slots.
func (rt *Runtime) Workers() int { return rt.workers }

func (rt *Runtime) acquire() { <-rt.slots }
func (rt *Runtime) release() { rt.slots <- struct{}{} }

// Block runs wait while temporarily giving up the calling task's worker
// slot, so that a blocked task never starves runnable ones. It must only
// be called from inside a running task.
func (rt *Runtime) Block(wait func()) {
	rt.release()
	wait()
	rt.acquire()
}

// Run executes fn as the root frame and returns when it and all of its
// descendants have completed. It is the only entry point into the
// runtime; nested Run calls on the same Runtime are allowed and share the
// worker slots.
//
// A panic inside any task is captured so the rest of the task tree can
// quiesce (dependences are still released — values a producer pushed
// before panicking remain visible, and consumers are not deadlocked),
// and the first such panic is re-raised by Run.
func (rt *Runtime) Run(fn func(*Frame)) {
	root := newFrame(rt, nil)
	rt.acquire()
	func() {
		defer func() {
			if r := recover(); r != nil {
				rt.recordPanic(r)
			}
		}()
		fn(root)
	}()
	root.Sync()
	rt.release()
	rt.panicMu.Lock()
	v := rt.panicVal
	rt.panicVal = nil
	rt.panicMu.Unlock()
	if v != nil {
		panic(v)
	}
}

// Frame is one node of the spawn tree: the runtime context of a single
// task. A Frame's methods (Spawn, Call, Sync, attachments) must be called
// only from the task goroutine that owns the frame; Dep implementations
// may additionally touch a frame through their own synchronization (the
// hyperqueue does so under its per-queue mutex).
type Frame struct {
	rt     *Runtime
	parent *Frame
	label  []int32
	nspawn int32

	mu        sync.Mutex
	cond      *sync.Cond
	live      int // outstanding children
	attach    map[any]any
	syncHooks []func()
}

func newFrame(rt *Runtime, parent *Frame) *Frame {
	f := &Frame{rt: rt, parent: parent}
	f.cond = sync.NewCond(&f.mu)
	if parent != nil {
		f.label = append(append(make([]int32, 0, len(parent.label)+1), parent.label...), parent.nspawn)
	}
	return f
}

// Runtime returns the runtime this frame executes on.
func (f *Frame) Runtime() *Runtime { return f.rt }

// Parent returns the parent frame, or nil for the root.
func (f *Frame) Parent() *Frame { return f.parent }

// Before reports whether f precedes g in serial program order (the serial
// elision). A frame does not precede itself or its ancestors/descendants
// in the sense used by hyperqueue visibility; see IsAncestorOf.
func (f *Frame) Before(g *Frame) bool {
	n := len(f.label)
	if len(g.label) < n {
		n = len(g.label)
	}
	for i := 0; i < n; i++ {
		if f.label[i] != g.label[i] {
			return f.label[i] < g.label[i]
		}
	}
	return len(f.label) < len(g.label)
}

// IsAncestorOf reports whether f is a proper ancestor of g in the spawn
// tree.
func (f *Frame) IsAncestorOf(g *Frame) bool {
	if len(f.label) >= len(g.label) {
		return false
	}
	for i := range f.label {
		if f.label[i] != g.label[i] {
			return false
		}
	}
	return true
}

// Dep is a dependence declared at spawn time. The runtime drives each dep
// through three phases:
//
//   - Prepare is called synchronously in the parent's goroutine, in
//     program order, before the child may run. This is where access modes
//     register themselves (issue tickets, hand over views, join FIFO
//     queues).
//   - Wait is called in the child's goroutine before the child acquires a
//     worker slot; it blocks until the dependence allows the child to
//     start. Blocking here does not consume a slot.
//   - Complete is called in the child's goroutine after the child's body
//     and implicit sync have finished, and before the parent's Sync can
//     observe the child as done.
type Dep interface {
	Prepare(parent, child *Frame)
	Wait(child *Frame)
	Complete(parent, child *Frame)
}

// Spawn creates a child task executing fn, gated by deps. It corresponds
// to the paper's "spawn f(args...)": the call may proceed in parallel
// with the continuation of the caller. An implicit Sync runs when fn
// returns, as in Cilk.
func (f *Frame) Spawn(fn func(*Frame), deps ...Dep) {
	f.spawn(fn, nil, deps)
}

func (f *Frame) spawn(fn, after func(*Frame), deps []Dep) {
	c := newFrame(f.rt, f)
	f.nspawn++
	f.mu.Lock()
	f.live++
	f.mu.Unlock()
	prepared := false
	defer func() {
		// A panicking Prepare is a programming error (e.g. the privilege
		// subset rule of §2.3); undo the child registration so the error
		// is recoverable and Sync does not wait forever.
		if !prepared {
			f.mu.Lock()
			f.live--
			f.cond.Broadcast()
			f.mu.Unlock()
		}
	}()
	for _, d := range deps {
		d.Prepare(f, c)
	}
	prepared = true
	go func() {
		for _, d := range deps {
			d.Wait(c)
		}
		f.rt.acquire()
		func() {
			defer func() {
				if r := recover(); r != nil {
					f.rt.recordPanic(r)
				}
			}()
			fn(c)
		}()
		c.Sync()
		f.rt.release()
		for _, d := range deps {
			d.Complete(f, c)
		}
		if after != nil {
			after(c)
		}
		f.mu.Lock()
		f.live--
		f.cond.Broadcast()
		f.mu.Unlock()
	}()
}

// Call runs fn as a child frame and waits for it to complete, including
// its dependence completions. The paper treats calls like spawns for
// hyperqueue purposes (§4.2, "Call and return from call with push
// privileges"); a call simply foregoes concurrency with the continuation.
func (f *Frame) Call(fn func(*Frame), deps ...Dep) {
	done := make(chan struct{})
	f.spawn(fn, func(*Frame) { close(done) }, deps)
	f.rt.Block(func() { <-done })
}

// Sync blocks until all children spawned so far by this frame have
// completed, releasing the worker slot while waiting. After the children
// are done it runs the frame's sync hooks (the hyperqueue uses a hook to
// fold its children view into the user view, §4.2 "Sync").
func (f *Frame) Sync() {
	f.mu.Lock()
	pending := f.live != 0
	f.mu.Unlock()
	if pending {
		f.rt.Block(func() {
			f.mu.Lock()
			for f.live != 0 {
				f.cond.Wait()
			}
			f.mu.Unlock()
		})
	}
	f.mu.Lock()
	hooks := make([]func(), len(f.syncHooks))
	copy(hooks, f.syncHooks)
	f.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// AddSyncHook registers fn to run (in the frame's goroutine) after every
// Sync of this frame, including the implicit sync at frame completion.
func (f *Frame) AddSyncHook(fn func()) {
	f.mu.Lock()
	f.syncHooks = append(f.syncHooks, fn)
	f.mu.Unlock()
}

// Parallel reports whether the program is executing with more than one
// worker slot — the runtime check of §5.3 ("Selectively Enabling
// Pipelining", Cilk's SYNCHED): programs may select a sequential
// implementation when parallel execution is impossible, e.g. to bound
// queue growth. As the paper warns, use with care: branching on it can
// violate determinism if the two versions are not observably equivalent.
func (f *Frame) Parallel() bool { return f.rt.workers > 1 }

// Attachment returns the attachment stored under key, or nil.
// Attachments let dependence implementations hang per-frame state (such
// as hyperqueue views) off a frame.
func (f *Frame) Attachment(key any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attach[key]
}

// SetAttachment stores v under key.
func (f *Frame) SetAttachment(key any, v any) {
	f.mu.Lock()
	if f.attach == nil {
		f.attach = make(map[any]any)
	}
	f.attach[key] = v
	f.mu.Unlock()
}
