// Package sched implements the Swan-like task runtime that hyperqueues are
// built on (Vandierendonck et al., PACT 2011; SC 2013 §2.3, §4).
//
// The runtime exposes a Cilk-style spawn/sync task tree. Each spawned task
// runs in its own frame; dependence objects (Dep) passed at spawn time
// gate when the task may start and are notified when it completes, which
// is exactly the protocol the paper's queue access modes (pushdep, popdep,
// pushpopdep) and versioned-object access modes (indep, outdep, inoutdep)
// need.
//
// # Scheduling substrate
//
// The paper's Swan runtime uses Cilk-style work-first scheduling with
// continuation stealing. Go cannot steal continuations, so this runtime
// uses help-first spawning: a spawned child is pushed onto the bottom of
// the spawning worker's Chase–Lev deque (internal/deque) and the parent
// continues. A fixed pool of P workers pops locally in LIFO order and
// steals FIFO from randomized victims when its own deque drains, which
// preserves the locality and bounded-space properties of Cilk-style
// schedulers. Capacity is bounded by P run tokens: a worker holds a token
// only while executing task code, so every potentially-blocking runtime
// operation — Sync, a queue Empty/Pop wait, a pop-serialization wait, a
// dataflow gate — releases the token and wakes (or spawns) a compensating
// worker for the duration of the wait, mirroring the paper's choice to
// "block the worker" (§4.5) while keeping P runnable tasks whenever P are
// ready. Workers park when the system has no ready work and exit once no
// Run is active, so an idle Runtime holds no goroutines.
//
// The seed scheduler — one goroutine per task gated by a slot semaphore —
// is retained as PolicyGoroutine so the ablation benchmarks can compare
// the two substrates (see bench_test.go and cmd/paperbench -sched). The
// hyperqueue view algebra (internal/core) is order-robust and correct
// under both child-first and help-first execution orders.
//
// # Program order
//
// Determinism reasoning in the paper is phrased in terms of the serial
// elision: the depth-first execution order of the spawn tree. Each frame
// carries a label — the path of spawn indices from the root — so that
// "task A precedes task B in program order" is the lexicographic
// comparison of labels. The hyperqueue uses labels to decide which
// producers' values a consumer may observe (§2.3 rule 4).
package sched

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// SpawnPolicy selects the dispatch substrate of a Runtime.
type SpawnPolicy int32

const (
	// PolicySteal dispatches tasks through per-worker Chase–Lev deques
	// with randomized FIFO stealing. This is the default.
	PolicySteal SpawnPolicy = iota
	// PolicyGoroutine is the baseline substrate: one goroutine per task,
	// gated by a slot semaphore. It exists for the scheduler ablation
	// (stealing runtime vs. channel/semaphore baseline).
	PolicyGoroutine
)

func (p SpawnPolicy) String() string {
	if p == PolicyGoroutine {
		return "goroutine"
	}
	return "steal"
}

// defaultPolicy is what New uses; it is initialized from the REPRO_SCHED
// environment variable ("steal" or "goroutine") and may be overridden
// with SetDefaultPolicy (cmd/paperbench does, for its -sched flag).
var defaultPolicy atomic.Int32

func init() {
	switch v := os.Getenv("REPRO_SCHED"); v {
	case "", "steal":
	case "goroutine":
		defaultPolicy.Store(int32(PolicyGoroutine))
	default:
		// A typo here would silently corrupt ablation results; be loud.
		fmt.Fprintf(os.Stderr, "sched: ignoring unknown REPRO_SCHED=%q (want steal or goroutine); using steal\n", v)
	}
}

// SetDefaultPolicy sets the substrate New gives future runtimes.
func SetDefaultPolicy(p SpawnPolicy) { defaultPolicy.Store(int32(p)) }

// DefaultPolicy reports the substrate New gives future runtimes.
func DefaultPolicy() SpawnPolicy { return SpawnPolicy(defaultPolicy.Load()) }

// stealBatchMax bounds how many tasks one steal sweep may take (and sizes
// the per-worker steal buffer). Steal-half amortizes the victim scan over
// a run of tasks, but an unbounded grab would let one thief hoard a long
// run while siblings idle; 8 keeps the hoard no larger than one deque
// refill.
const stealBatchMax = 8

// defaultStealBatch is the steal batch cap New gives future runtimes:
// a thief takes up to min(cap, half the victim's visible run) tasks per
// steal. Cap 1 is exactly the classic single-task Chase–Lev steal and is
// kept as the ablation comparison mode (REPRO_STEAL_BATCH=1).
var defaultStealBatch atomic.Int32

func init() {
	defaultStealBatch.Store(stealBatchMax)
	if v := os.Getenv("REPRO_STEAL_BATCH"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			// A typo would silently corrupt ablation results; be loud.
			fmt.Fprintf(os.Stderr, "sched: ignoring invalid REPRO_STEAL_BATCH=%q (want integer >= 1); using %d\n", v, stealBatchMax)
			return
		}
		if n > stealBatchMax {
			n = stealBatchMax
		}
		defaultStealBatch.Store(int32(n))
	}
}

// SetStealBatchCap sets the steal batch cap New gives future runtimes
// (clamped to [1, 8]). It does not affect runtimes already built.
func SetStealBatchCap(n int) {
	if n < 1 {
		n = 1
	}
	if n > stealBatchMax {
		n = stealBatchMax
	}
	defaultStealBatch.Store(int32(n))
}

// StealBatchCap reports the steal batch cap New gives future runtimes.
func StealBatchCap() int { return int(defaultStealBatch.Load()) }

// Runtime is a task scheduler with a fixed number of workers. The number
// of workers plays the role of the number of cores in the paper's
// scale-free sweeps: a program written against Runtime does not change
// when the worker count changes.
type Runtime struct {
	workers int
	policy  SpawnPolicy

	// PolicyGoroutine state: the slot semaphore.
	slots chan struct{}

	// PolicySteal state: run tokens plus the worker pool (worker.go).
	tokens chan struct{}
	pool   pool

	// Cancellation state (cancel.go): the scopes of in-flight Runs, the
	// terminal runtime-wide cancellation cause set by Runtime.Cancel, and
	// the robustness counters (both policies).
	cancelMu     sync.Mutex
	rtErr        error
	scopes       map[*CancelScope]struct{}
	canceledRuns atomic.Uint64
	taskPanics   atomic.Uint64

	// sharedMu/shared back Shared: runtime-scoped singletons keyed by
	// client-chosen keys (the hyperqueue's segment-pool provider lives
	// here). Touched only on the Shared slow path.
	sharedMu sync.Mutex
	shared   map[any]any
}

// Shared returns the runtime-scoped value stored under key, calling
// create to build it the first time the key is seen. It is how client
// packages attach runtime-wide state — caches shared by every task and
// every queue of this runtime — without the scheduler knowing their
// types: the hyperqueue stores its segment-pool provider here so that
// all queues of a runtime draw from the same per-worker free lists.
// create runs under the runtime's shared-state lock and must not call
// Shared recursively.
func (rt *Runtime) Shared(key any, create func() any) any {
	rt.sharedMu.Lock()
	defer rt.sharedMu.Unlock()
	if v, ok := rt.shared[key]; ok {
		return v
	}
	if rt.shared == nil {
		rt.shared = make(map[any]any)
	}
	v := create()
	rt.shared[key] = v
	return v
}

// New returns a runtime with the given number of workers (minimum 1),
// using the default spawn policy.
func New(workers int) *Runtime { return NewWithPolicy(workers, DefaultPolicy()) }

// NewWithPolicy returns a runtime with the given number of workers
// (minimum 1) on an explicitly chosen dispatch substrate.
func NewWithPolicy(workers int, policy SpawnPolicy) *Runtime {
	if workers < 1 {
		workers = 1
	}
	rt := &Runtime{workers: workers, policy: policy}
	switch policy {
	case PolicyGoroutine:
		rt.slots = make(chan struct{}, workers)
		for i := 0; i < workers; i++ {
			rt.slots <- struct{}{}
		}
	default:
		rt.tokens = make(chan struct{}, workers)
		for i := 0; i < workers; i++ {
			rt.tokens <- struct{}{}
		}
		rt.pool.init(rt)
	}
	return rt
}

// Workers reports the number of workers.
func (rt *Runtime) Workers() int { return rt.workers }

// Policy reports the dispatch substrate this runtime uses.
func (rt *Runtime) Policy() SpawnPolicy { return rt.policy }

func (rt *Runtime) acquire() { <-rt.slots }
func (rt *Runtime) release() { rt.slots <- struct{}{} }

func (rt *Runtime) acquireToken() { <-rt.tokens }
func (rt *Runtime) releaseToken() { rt.tokens <- struct{}{} }

// Run executes fn as the root frame and returns when it and all of its
// descendants have completed. It is the only entry point into the
// runtime. Run may be called repeatedly (and concurrently from distinct
// goroutines, sharing the workers). As in the seed scheduler, a nested
// Run from inside a running task needs a spare worker to make progress:
// the calling task keeps its own capacity while it waits, so on a
// one-worker runtime a nested Run deadlocks (under PolicySteal a
// compensating worker is still woken, so nested Run works whenever
// workers >= 2).
//
// A panic inside any task is captured so the rest of the task tree can
// quiesce (dependences are still released — values a producer pushed
// before panicking remain visible, and consumers are not deadlocked);
// it also cancels the run's scope, so sibling tasks stop at their next
// blocking point instead of running to completion. The first such panic
// is re-raised by Run after the tree quiesces.
//
// Run returns nil on clean completion, and the cancellation cause when
// the run's scope was canceled — by Runtime.Cancel, by the run's own
// Frame.CancelScope, or by a queue poisoned with Fail (whose error
// becomes the cause). A canceled run still quiesces fully before Run
// returns: every task's completion protocol runs, so views fold and
// pool accounting balances.
func (rt *Runtime) Run(fn func(*Frame)) error {
	root := newFrame(rt, nil)
	scope := rt.beginRun()
	root.scope = scope
	if rt.policy == PolicyGoroutine {
		rt.acquire()
		func() {
			defer func() {
				if r := recover(); r != nil {
					root.absorbTaskPanic(r)
				}
			}()
			if !scope.Canceled() {
				fn(root)
			}
		}()
		root.Sync()
		rt.release()
	} else {
		done := make(chan struct{})
		rt.pool.runBegin()
		rt.pool.inject(&task{frame: root, body: fn, after: func(*Frame) { close(done) }})
		// Wait as a blocked context: if the caller is itself a task (a
		// nested Run), compensation keeps the pool making progress; for
		// a plain external caller the dip in navail is harmless.
		rt.pool.blockBegin()
		<-done
		rt.pool.blockEnd()
		rt.pool.runEnd()
	}
	return rt.endRun(scope)
}

// Frame is one node of the spawn tree: the runtime context of a single
// task. A Frame's methods (Spawn, Call, Sync, Block, attachments) must be
// called only from the task goroutine that owns the frame; Dep
// implementations may additionally touch a frame through their own
// synchronization (the hyperqueue does so under its per-queue mutex).
type Frame struct {
	rt     *Runtime
	parent *Frame
	label  []int32
	nspawn int32

	// scope is the frame's cancellation domain, inherited from the parent
	// at spawn; Run sets the root's, ScopedCall swaps in a sub-scope.
	// Written only before the frame's task can observe it (at newFrame or
	// at the top of the ScopedCall wrapper body), read by park sites.
	scope *CancelScope

	// worker is the worker currently executing this frame's task, set by
	// the stealing substrate for the duration of the task. inBlock marks
	// that the frame is inside a Block region (its token is released).
	// Both are touched only by the frame's own goroutine.
	worker  *worker
	inBlock bool

	mu        sync.Mutex
	cond      *sync.Cond
	live      int // outstanding children
	attach    map[any]any
	syncHooks []func()

	// attachFast is the single-slot attachment fast path: the first key
	// ever stored on the frame (for hyperqueue programs, by far the most
	// common case: the one queue the task works on). Attachment reads it
	// with one atomic load and an interface compare — no mutex, no map
	// hash — which matters because dependence implementations resolve
	// their per-frame state through Attachment on per-element hot paths.
	// Invariant: the slot's key is never also present in the attach map.
	attachFast atomic.Pointer[attachSlot]
}

// attachSlot is one immutable (key, value) attachment pair; SetAttachment
// publishes a fresh slot on every update so readers never observe a torn
// pair.
type attachSlot struct {
	key, val any
}

func newFrame(rt *Runtime, parent *Frame) *Frame {
	f := &Frame{rt: rt, parent: parent}
	f.cond = sync.NewCond(&f.mu)
	if parent != nil {
		f.scope = parent.scope
		f.label = append(append(make([]int32, 0, len(parent.label)+1), parent.label...), parent.nspawn)
	}
	return f
}

// Runtime returns the runtime this frame executes on.
func (f *Frame) Runtime() *Runtime { return f.rt }

// Parent returns the parent frame, or nil for the root.
func (f *Frame) Parent() *Frame { return f.parent }

// Before reports whether f precedes g in serial program order (the serial
// elision). A frame does not precede itself or its ancestors/descendants
// in the sense used by hyperqueue visibility; see IsAncestorOf.
func (f *Frame) Before(g *Frame) bool {
	n := len(f.label)
	if len(g.label) < n {
		n = len(g.label)
	}
	for i := 0; i < n; i++ {
		if f.label[i] != g.label[i] {
			return f.label[i] < g.label[i]
		}
	}
	return len(f.label) < len(g.label)
}

// IsAncestorOf reports whether f is a proper ancestor of g in the spawn
// tree.
func (f *Frame) IsAncestorOf(g *Frame) bool {
	if len(f.label) >= len(g.label) {
		return false
	}
	for i := range f.label {
		if f.label[i] != g.label[i] {
			return false
		}
	}
	return true
}

// Block runs wait while temporarily giving up the calling task's
// execution capacity, so that a blocked task never starves runnable
// ones. Under PolicySteal it releases the task's run token and ensures a
// compensating worker can drain the deques; under PolicyGoroutine it
// releases the slot semaphore. It must only be called from inside a
// running task, on that task's own frame.
// Block is panic-safe: the capacity bookkeeping is restored by defers, so
// a wait that unwinds (a park site raising CancelUnwind/AbortUnwind after
// observing cancellation or a poisoned queue) leaves the token and
// compensation accounting balanced.
func (f *Frame) Block(wait func()) {
	rt := f.rt
	if rt.policy == PolicyGoroutine {
		rt.release()
		defer rt.acquire()
		wait()
		return
	}
	if f.inBlock || f.worker == nil {
		// Re-entrant block (e.g. a queue wait inside a dep gate): the
		// token is already released.
		wait()
		return
	}
	f.inBlock = true
	rt.releaseToken()
	rt.pool.blockBegin()
	defer func() {
		rt.pool.blockEnd()
		rt.acquireToken()
		f.inBlock = false
	}()
	wait()
}

// Dep is a dependence declared at spawn time. The runtime drives each dep
// through three phases:
//
//   - Prepare is called synchronously in the parent's goroutine, in
//     program order, before the child may run. This is where access modes
//     register themselves (issue tickets, hand over views, join FIFO
//     queues).
//   - Wait is called in the child's context before the child's body runs;
//     it blocks until the dependence allows the child to start. Blocking
//     here does not consume execution capacity: the stealing substrate
//     wraps gated Waits in a Block region, and the goroutine substrate
//     runs Wait before the child acquires its slot.
//   - Complete is called in the child's context after the child's body
//     and implicit sync have finished, and before the parent's Sync can
//     observe the child as done.
type Dep interface {
	Prepare(parent, child *Frame)
	Wait(child *Frame)
	Complete(parent, child *Frame)
}

// ReadyDep is an optional extension of Dep: a non-blocking probe that
// reports whether Wait would return without blocking. Once a dep reports
// ready it must stay ready (the runtime may run Wait outside a Block
// region after a true probe). Deps that do not implement ReadyDep are
// conservatively treated as gated.
type ReadyDep interface {
	Dep
	Ready(child *Frame) bool
}

// Spawn creates a child task executing fn, gated by deps. It corresponds
// to the paper's "spawn f(args...)": the call may proceed in parallel
// with the continuation of the caller. An implicit Sync runs when fn
// returns, as in Cilk.
func (f *Frame) Spawn(fn func(*Frame), deps ...Dep) {
	f.spawn(fn, nil, deps)
}

func (f *Frame) spawn(fn, after func(*Frame), deps []Dep) {
	c := newFrame(f.rt, f)
	f.nspawn++
	f.mu.Lock()
	f.live++
	f.mu.Unlock()
	prepared := false
	defer func() {
		// A panicking Prepare is a programming error (e.g. the privilege
		// subset rule of §2.3); undo the child registration so the error
		// is recoverable and Sync does not wait forever.
		if !prepared {
			f.mu.Lock()
			f.live--
			f.cond.Broadcast()
			f.mu.Unlock()
		}
	}()
	for _, d := range deps {
		d.Prepare(f, c)
	}
	prepared = true
	t := &task{frame: c, body: fn, deps: deps, after: after}
	if f.rt.policy == PolicyGoroutine {
		go f.rt.runTaskGoroutine(t)
		return
	}
	if w := f.worker; w != nil {
		w.dq.Push(t)
	} else {
		// Spawn from a frame not currently bound to a worker (defensive;
		// the Frame contract makes this unreachable from user code).
		f.rt.pool.pushGlobal(t)
	}
	f.rt.pool.stats.Spawns.Add(1)
	f.rt.pool.ensureWorker()
}

// BatchChild describes one child of a SpawnBatch: its body and its
// spawn-time dependences.
type BatchChild struct {
	Body func(*Frame)
	Deps []Dep
}

// SpawnBatch spawns every child in children as if by consecutive Spawn
// calls — dep Prepare runs synchronously in the parent, in program order,
// so the serial elision is identical — but publishes the whole wave with
// one deque tail store (deque.PushBatch) and one worker wake sweep
// (ensureWorkers) instead of one of each per child. Loop-split pipeline
// stages that fan out k tasks per popped batch use it to take the
// scheduler off their critical path.
func (f *Frame) SpawnBatch(children []BatchChild) {
	f.spawnBatch(len(children), func(i int) (func(*Frame), []Dep) {
		return children[i].Body, children[i].Deps
	})
}

// SpawnN spawns n children running fn(c, i) for i in [0, n), all gated by
// the same deps, with batched publication as in SpawnBatch. It is the
// §5.4 loop-split fan-out shape: "for each of the k items popped this
// round, spawn a worker task with the same queue privileges".
func (f *Frame) SpawnN(n int, fn func(*Frame, int), deps ...Dep) {
	f.spawnBatch(n, func(i int) (func(*Frame), []Dep) {
		return func(c *Frame) { fn(c, i) }, deps
	})
}

func (f *Frame) spawnBatch(n int, child func(i int) (func(*Frame), []Dep)) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	f.live += n
	f.mu.Unlock()
	ts := make([]*task, 0, n)
	prepared := 0
	defer func() {
		if prepared == n {
			return
		}
		// A panicking Prepare (a programming error such as the privilege
		// subset rule): the failing child and the unprepared rest are
		// unregistered, but the children already fully prepared hold views
		// and tickets and must still run — publish them before re-raising.
		f.mu.Lock()
		f.live -= n - prepared
		f.cond.Broadcast()
		f.mu.Unlock()
		f.publishBatch(ts)
	}()
	for i := 0; i < n; i++ {
		body, deps := child(i)
		c := newFrame(f.rt, f)
		f.nspawn++
		for _, d := range deps {
			d.Prepare(f, c)
		}
		ts = append(ts, &task{frame: c, body: body, deps: deps})
		prepared++
	}
	f.publishBatch(ts)
}

// publishBatch makes a wave of fully prepared tasks runnable: one
// PushBatch on the spawning worker's deque and one wake sweep sized to
// the batch.
func (f *Frame) publishBatch(ts []*task) {
	if len(ts) == 0 {
		return
	}
	if f.rt.policy == PolicyGoroutine {
		for _, t := range ts {
			go f.rt.runTaskGoroutine(t)
		}
		return
	}
	if w := f.worker; w != nil {
		w.dq.PushBatch(ts)
	} else {
		for _, t := range ts {
			f.rt.pool.pushGlobal(t)
		}
	}
	f.rt.pool.stats.Spawns.Add(uint64(len(ts)))
	f.rt.pool.ensureWorkers(len(ts))
}

// runTaskGoroutine is the PolicyGoroutine execution path: the seed
// scheduler's goroutine-per-task protocol, kept as the ablation baseline.
// A canceled scope skips the dep gates and the body (their unwinds are
// absorbed the same way), but the sync and completion protocol always
// runs, so the parent's live-child accounting and the queue view deposits
// stay balanced across an abort.
func (rt *Runtime) runTaskGoroutine(t *task) {
	c := t.frame
	skip := c.scope.Canceled()
	if !skip {
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.absorbTaskPanic(r)
				}
			}()
			for _, d := range t.deps {
				d.Wait(c)
			}
		}()
		skip = c.scope.Canceled()
	}
	rt.acquire()
	if !skip {
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.absorbTaskPanic(r)
				}
			}()
			t.body(c)
		}()
	}
	c.Sync()
	rt.release()
	t.finish()
}

// helpLocal is the help-first counterpart of Cilk's work-first sync: a
// frame about to wait runs tasks popped LIFO from its own worker's deque
// until quit reports the wait is satisfied, the deque drains, or the pop
// surfaces a task that is not a descendant of f.
//
// The descendant guard preserves strictness: a descendant of f can only
// wait on work that is completed, stealable, or released through its own
// Block compensation — never on the buried frames above it (anything a
// task waits for is strictly earlier in program order, and f's ancestors
// are not). Without the guard, batch stealing breaks this: StealBatch
// lands sibling tasks from a victim's run in our deque, and inline-running
// a program-*later* sibling (say a consumer) beneath a program-earlier one
// (its producer, buried above us mid-Sync) deadlocks — the consumer waits
// forever for values only the buried continuation can push. A refused task
// is pushed back (same deque position) and stays stealable; we fall
// through to the Block path instead.
func (f *Frame) helpLocal(quit func() bool) {
	w := f.worker
	if w == nil || f.inBlock {
		return
	}
	for !quit() {
		t, ok := w.dq.Pop()
		if !ok {
			return
		}
		if !f.IsAncestorOf(t.frame) {
			w.dq.Push(t)
			return
		}
		f.rt.pool.runTask(w, t)
	}
}

// Call runs fn as a child frame and waits for it to complete, including
// its dependence completions. The paper treats calls like spawns for
// hyperqueue purposes (§4.2, "Call and return from call with push
// privileges"); a call simply foregoes concurrency with the continuation.
// Under PolicySteal the child is usually still at the bottom of the
// caller's deque and runs inline via helpLocal.
func (f *Frame) Call(fn func(*Frame), deps ...Dep) {
	done := make(chan struct{})
	f.spawn(fn, func(*Frame) { close(done) }, deps)
	if f.rt.policy != PolicyGoroutine {
		closed := func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
		f.helpLocal(closed)
		if closed() {
			return
		}
	}
	f.Block(func() { <-done })
}

// Sync blocks until all children spawned so far by this frame have
// completed, releasing the frame's execution capacity while waiting.
// After the children are done it runs the frame's sync hooks (the
// hyperqueue uses a hook to fold its children view into the user view,
// §4.2 "Sync").
func (f *Frame) Sync() {
	quiet := func() bool {
		f.mu.Lock()
		q := f.live == 0
		f.mu.Unlock()
		return q
	}
	if f.rt.policy != PolicyGoroutine && !quiet() {
		// Help first: run our own pending children (and their descendants)
		// off the local deque instead of parking immediately.
		f.helpLocal(quiet)
	}
	f.mu.Lock()
	pending := f.live != 0
	f.mu.Unlock()
	if pending {
		f.Block(func() {
			f.mu.Lock()
			for f.live != 0 {
				f.cond.Wait()
			}
			f.mu.Unlock()
		})
	}
	f.mu.Lock()
	hooks := make([]func(), len(f.syncHooks))
	copy(hooks, f.syncHooks)
	f.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// AddSyncHook registers fn to run (in the frame's goroutine) after every
// Sync of this frame, including the implicit sync at frame completion.
func (f *Frame) AddSyncHook(fn func()) {
	f.mu.Lock()
	f.syncHooks = append(f.syncHooks, fn)
	f.mu.Unlock()
}

// Parallel reports whether the program is executing with more than one
// worker — the runtime check of §5.3 ("Selectively Enabling
// Pipelining", Cilk's SYNCHED): programs may select a sequential
// implementation when parallel execution is impossible, e.g. to bound
// queue growth. As the paper warns, use with care: branching on it can
// violate determinism if the two versions are not observably equivalent.
func (f *Frame) Parallel() bool { return f.rt.workers > 1 }

// WorkerID returns a small non-negative integer identifying the worker
// currently executing this frame's task, or 0 when the frame is not bound
// to a pool worker (the goroutine substrate, or an external Run caller).
// IDs are stable for the duration of one task body, dense enough to index
// small sharded caches (the hyperqueue's segment pool shards by it), and
// never negative. It must only be called from the frame's own goroutine.
func (f *Frame) WorkerID() int {
	if f.worker != nil {
		return f.worker.id
	}
	return 0
}

// Attachment returns the attachment stored under key, or nil.
// Attachments let dependence implementations hang per-frame state (such
// as hyperqueue views) off a frame. The first key stored on a frame is
// served from a lock-free single-slot fast path; further keys fall back
// to a mutex-guarded map.
func (f *Frame) Attachment(key any) any {
	if s := f.attachFast.Load(); s != nil && s.key == key {
		return s.val
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attach[key]
}

// SetAttachment stores v under key.
func (f *Frame) SetAttachment(key any, v any) {
	f.mu.Lock()
	if s := f.attachFast.Load(); s == nil || s.key == key {
		f.attachFast.Store(&attachSlot{key: key, val: v})
	} else {
		if f.attach == nil {
			f.attach = make(map[any]any)
		}
		f.attach[key] = v
	}
	f.mu.Unlock()
}
