package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/deque"
)

// task is one schedulable unit: a frame, its body, its spawn-time deps,
// and an optional completion callback (Call and Run use it).
type task struct {
	frame *Frame
	body  func(*Frame)
	deps  []Dep
	after func(*Frame)
}

// finish runs the completion protocol shared by both substrates: dep
// Complete calls in the child's context, the after callback, and the
// parent's live-child accounting.
func (t *task) finish() {
	c := t.frame
	for _, d := range t.deps {
		d.Complete(c.parent, c)
	}
	if t.after != nil {
		t.after(c)
	}
	if p := c.parent; p != nil {
		p.mu.Lock()
		p.live--
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Stats is a snapshot of scheduler counters. The deque/steal counters
// are PolicySteal only (the goroutine substrate reports zeros there);
// CanceledRuns and TaskPanics are runtime-level and count under both
// substrates.
type Stats struct {
	Spawns         uint64 // tasks pushed onto deques
	Steals         uint64 // successful steal sweeps from a victim deque
	StolenTasks    uint64 // tasks taken by those sweeps (>= Steals with batching)
	Parks          uint64 // times a worker went to sleep for lack of work
	Blocks         uint64 // Block regions entered (capacity released)
	WorkersStarted uint64 // worker goroutines ever started
	Blocked        int    // tasks currently inside a Block region (gauge)
	CanceledRuns   uint64 // Runs that returned a cancellation (or re-raised a panic)
	TaskPanics     uint64 // real task panics recorded (sentinel unwinds excluded)
}

// Stats reports a snapshot of the runtime's scheduler counters.
func (rt *Runtime) Stats() Stats {
	if rt.policy == PolicyGoroutine {
		return Stats{
			CanceledRuns: rt.canceledRuns.Load(),
			TaskPanics:   rt.taskPanics.Load(),
		}
	}
	p := &rt.pool
	p.mu.Lock()
	blocked := p.blocked
	p.mu.Unlock()
	return Stats{
		Spawns:         p.stats.Spawns.Load(),
		Steals:         p.stats.Steals.Load(),
		StolenTasks:    p.stats.StolenTasks.Load(),
		Parks:          p.stats.Parks.Load(),
		Blocks:         p.stats.Blocks.Load(),
		WorkersStarted: p.stats.WorkersStarted.Load(),
		Blocked:        blocked,
		CanceledRuns:   rt.canceledRuns.Load(),
		TaskPanics:     rt.taskPanics.Load(),
	}
}

type statCounters struct {
	Spawns         atomic.Uint64
	Steals         atomic.Uint64
	StolenTasks    atomic.Uint64
	Parks          atomic.Uint64
	Blocks         atomic.Uint64
	WorkersStarted atomic.Uint64
}

// pool is the PolicySteal worker pool. Workers are started on demand,
// park when the system has no ready work, and exit once no Run is active,
// so an idle Runtime holds no goroutines.
//
// Capacity accounting: navail counts worker goroutines able to make
// progress on new work — alive minus parked minus blocked-in-task. The
// scheduler's liveness invariant is that whenever ready work exists and
// navail < workers, ensureWorker wakes or starts a worker; a worker about
// to park re-checks for work after decrementing navail, which (with Go's
// sequentially consistent atomics) closes the race against a producer
// that observed the worker as still available.
type pool struct {
	rt *Runtime

	mu         sync.Mutex
	cond       *sync.Cond // parked workers wait here
	alive      int        // worker goroutines started and not exited
	parked     int        // workers asleep in park
	wakeups    int        // pending wake permits (level-triggered signal)
	blocked    int        // tasks inside a Block region
	activeRuns int        // Run calls in flight; workers exit at zero
	global     []*task    // injection queue (root tasks, unbound spawns)
	nextID     int        // worker id allocator (ids are never reused)

	navail  atomic.Int32 // alive - parked - blocked (see above)
	victims atomic.Pointer[[]*worker]
	seed    atomic.Uint64
	stats   statCounters

	// stealCap is the per-sweep steal batch cap (steal-half up to this
	// many tasks), frozen at runtime construction from the package
	// default so a running pool never mixes modes.
	stealCap int
}

func (p *pool) init(rt *Runtime) {
	p.rt = rt
	p.cond = sync.NewCond(&p.mu)
	p.stealCap = StealBatchCap()
	v := []*worker{}
	p.victims.Store(&v)
}

func (p *pool) runBegin() {
	p.mu.Lock()
	p.activeRuns++
	p.mu.Unlock()
}

func (p *pool) runEnd() {
	p.mu.Lock()
	p.activeRuns--
	if p.activeRuns == 0 {
		p.cond.Broadcast() // parked workers re-check and exit
	}
	p.mu.Unlock()
}

func (p *pool) inject(t *task) {
	p.pushGlobal(t)
	p.ensureWorker()
}

func (p *pool) pushGlobal(t *task) {
	p.mu.Lock()
	p.global = append(p.global, t)
	p.mu.Unlock()
}

func (p *pool) popGlobal() *task {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.global) == 0 {
		return nil
	}
	t := p.global[0]
	p.global = p.global[1:]
	return t
}

// ensureWorker makes sure that, if execution capacity is undersubscribed
// (navail < workers), a worker is woken or started to pick up work. It is
// called after every deque push, global injection, and Block entry. The
// fast path is a single atomic load.
func (p *pool) ensureWorker() { p.ensureWorkers(1) }

// ensureWorkers is the batched form: after k tasks were published at
// once (SpawnN/SpawnBatch via deque.PushBatch), one sweep wakes or starts
// up to k workers instead of paying the pool lock once per task.
func (p *pool) ensureWorkers(k int) {
	if int(p.navail.Load()) >= p.rt.workers {
		return
	}
	if k > p.rt.workers {
		k = p.rt.workers
	}
	p.mu.Lock()
	// Pending wakeups are workers already on their way back.
	for k > 0 && int(p.navail.Load())+p.wakeups < p.rt.workers {
		if p.parked > p.wakeups {
			p.wakeups++
			p.cond.Signal()
		} else {
			p.startWorkerLocked()
		}
		k--
	}
	p.mu.Unlock()
}

func (p *pool) startWorkerLocked() {
	p.nextID++
	w := &worker{p: p, id: p.nextID, dq: deque.New[*task](64), rnd: p.seed.Add(0x9e3779b97f4a7c15) | 1}
	p.alive++
	p.navail.Add(1)
	p.stats.WorkersStarted.Add(1)
	old := *p.victims.Load()
	next := make([]*worker, len(old)+1)
	copy(next, old)
	next[len(old)] = w
	p.victims.Store(&next)
	go p.loop(w)
}

func (p *pool) exitLocked(w *worker) {
	p.alive--
	p.navail.Add(-1)
	old := *p.victims.Load()
	next := make([]*worker, 0, len(old)-1)
	for _, v := range old {
		if v != w {
			next = append(next, v)
		}
	}
	p.victims.Store(&next)
}

// blockBegin/blockEnd bracket a Block region: the blocked task's worker
// goroutine is buried under the wait, so capacity drops and a
// compensating worker is woken or started. The task's own deque stays
// registered as a steal victim throughout, so work it spawned earlier
// remains reachable.
func (p *pool) blockBegin() {
	p.mu.Lock()
	p.blocked++
	p.navail.Add(-1)
	p.mu.Unlock()
	p.stats.Blocks.Add(1)
	p.ensureWorker()
}

func (p *pool) blockEnd() {
	p.mu.Lock()
	p.blocked--
	p.navail.Add(1)
	p.mu.Unlock()
}

func (p *pool) hasWorkLocked() bool {
	if len(p.global) > 0 {
		return true
	}
	for _, v := range *p.victims.Load() {
		if v.dq.Len() > 0 {
			return true
		}
	}
	return false
}

// park puts a worker to sleep until new work may exist. It returns false
// when the worker should exit (no Run active). The navail decrement
// happens before the last-chance work re-check: a producer either
// observes the decremented navail (and wakes someone via ensureWorker) or
// pushed before our re-check (and we see the work) — either way no work
// is stranded.
func (p *pool) park(w *worker) bool {
	p.mu.Lock()
	if p.activeRuns == 0 {
		p.exitLocked(w)
		p.mu.Unlock()
		return false
	}
	p.parked++
	p.navail.Add(-1)
	if p.hasWorkLocked() {
		p.parked--
		p.navail.Add(1)
		p.mu.Unlock()
		return true
	}
	p.stats.Parks.Add(1)
	for p.wakeups == 0 {
		if p.activeRuns == 0 {
			p.parked--
			p.navail.Add(1)
			p.exitLocked(w)
			p.mu.Unlock()
			return false
		}
		p.cond.Wait()
	}
	p.wakeups--
	p.parked--
	p.navail.Add(1)
	p.mu.Unlock()
	return true
}

// worker owns one Chase–Lev deque: it pushes and pops at the bottom
// (LIFO) and other workers steal from the top (FIFO), which gives thieves
// the oldest — typically largest — subtree, as in Cilk. The id is a
// small positive integer that client code (the hyperqueue's segment pool)
// uses to shard per-worker caches; see Frame.WorkerID.
type worker struct {
	p   *pool
	id  int
	dq  *deque.D[*task]
	rnd uint64

	// sbuf receives steal-half batches; entries are moved to the local
	// deque (or returned) and cleared immediately, so it retains nothing
	// between sweeps.
	sbuf [stealBatchMax]*task
}

func (w *worker) rand() uint64 {
	x := w.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rnd = x
	return x
}

// find returns the next task: local LIFO pop, then the global injection
// queue, then one randomized steal sweep over the victim deques. A sweep
// takes up to half the first non-empty victim's run (capped at the pool's
// stealCap): the first task runs now and the rest go into our own deque,
// where they stay visible to other thieves and to park's work check. The
// extras are run only from the top level of the worker loop or re-stolen
// — helpLocal's descendant guard keeps them from being buried mid-Sync.
func (w *worker) find() *task {
	if t, ok := w.dq.Pop(); ok {
		return t
	}
	if t := w.p.popGlobal(); t != nil {
		return t
	}
	victims := *w.p.victims.Load()
	n := len(victims)
	if n == 0 {
		return nil
	}
	off := int(w.rand() % uint64(n))
	for i := 0; i < n; i++ {
		v := victims[(off+i)%n]
		if v == w {
			continue
		}
		if w.p.stealCap <= 1 {
			// Ablation comparison mode: classic single-task steal.
			if t, ok := v.dq.Steal(); ok {
				w.p.stats.Steals.Add(1)
				w.p.stats.StolenTasks.Add(1)
				return t
			}
			continue
		}
		if k := v.dq.StealBatch(w.sbuf[:w.p.stealCap]); k > 0 {
			w.p.stats.Steals.Add(1)
			w.p.stats.StolenTasks.Add(uint64(k))
			t := w.sbuf[0]
			if k > 1 {
				w.dq.PushBatch(w.sbuf[1:k])
			}
			for j := 0; j < k; j++ {
				w.sbuf[j] = nil
			}
			return t
		}
	}
	return nil
}

func (p *pool) loop(w *worker) {
	for {
		t := w.find()
		if t == nil {
			if !p.park(w) {
				return
			}
			continue
		}
		p.rt.acquireToken()
		p.runTask(w, t)
		p.rt.releaseToken()
	}
}

// runTask executes one task to completion on worker w: dep gates, body,
// implicit sync, dep completions, parent notification. The caller holds a
// run token; any blocking inside (gated deps, Sync, queue waits) releases
// it through Frame.Block.
//
// The recover spans the dep gates as well as the body: a gate parked on a
// queue of a canceled scope unwinds with CancelUnwind, and that unwind
// must be absorbed exactly like one from the body. A task whose scope is
// already canceled skips gates and body outright — the fast path of
// teardown — but the implicit sync and the completion protocol always
// run, so parents sync, views deposit, and tickets advance even while a
// pipeline is being torn down.
func (p *pool) runTask(w *worker, t *task) {
	c := t.frame
	c.worker = w
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.absorbTaskPanic(r)
			}
		}()
		if c.scope.Canceled() {
			return
		}
		if len(t.deps) > 0 {
			ready := true
			for _, d := range t.deps {
				rd, ok := d.(ReadyDep)
				if !ok || !rd.Ready(c) {
					ready = false
					break
				}
			}
			if ready {
				// All gates are open (and, per the ReadyDep contract, stay
				// open): run the Wait protocol without giving up the token.
				for _, d := range t.deps {
					d.Wait(c)
				}
			} else {
				c.Block(func() {
					for _, d := range t.deps {
						d.Wait(c)
					}
				})
			}
		}
		if c.scope.Canceled() {
			return
		}
		t.body(c)
	}()
	c.Sync()
	t.finish()
	c.worker = nil
}
