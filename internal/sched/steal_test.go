package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestStealsExtractBuriedWork pins the dispatch substrate itself: while a
// task's worker is buried under a Block (where, unlike Sync, no local
// helping happens), its deque can only be drained by thieves. Root spawns
// children and blocks on a channel a child closes, so every child must
// arrive at its executing worker via a FIFO steal.
func TestStealsExtractBuriedWork(t *testing.T) {
	rt := NewWithPolicy(2, PolicySteal)
	var n atomic.Int64
	ch := make(chan struct{})
	rt.Run(func(f *Frame) {
		for i := 0; i < 8; i++ {
			f.Spawn(func(*Frame) {
				if n.Add(1) == 8 {
					close(ch)
				}
			})
		}
		f.Block(func() { <-ch })
		f.Sync()
	})
	if n.Load() != 8 {
		t.Fatalf("ran %d children, want 8", n.Load())
	}
	if s := rt.Stats().Steals; s == 0 {
		t.Fatalf("Stats().Steals = 0; children of a buried owner can only run via steals")
	}
}

// treeHash computes a deterministic value over a spawn tree: each frame
// combines its spawn index with its children's results in program order
// (the parent reads them after Sync, which is a happens-before edge).
// Any scheduling bug that loses, duplicates, or mis-parents a task
// changes the hash.
func treeHash(f *Frame, depth, branch int, seed uint64) uint64 {
	h := seed*0x9e3779b97f4a7c15 + uint64(depth)
	if depth == 0 {
		return h
	}
	results := make([]uint64, branch)
	for i := 0; i < branch; i++ {
		idx := i
		f.Spawn(func(c *Frame) {
			results[idx] = treeHash(c, depth-1, branch, seed+uint64(idx)+1)
		})
	}
	f.Sync()
	for _, r := range results {
		h = h*1099511628211 ^ r
	}
	return h
}

// TestDeterminismAcrossWorkersAndPolicies runs the same deep spawn tree
// at P=1, P=NumCPU and under both substrates; the reduction must be
// identical (the scale-free property: nothing in the program depends on
// the worker count or the scheduler).
func TestDeterminismAcrossWorkersAndPolicies(t *testing.T) {
	depth, branch := 7, 3
	if testing.Short() {
		depth = 5
	}
	var want uint64
	for i, cfg := range []struct {
		workers int
		policy  SpawnPolicy
	}{
		{1, PolicySteal},
		{runtime.NumCPU(), PolicySteal},
		{2, PolicySteal},
		{runtime.NumCPU(), PolicyGoroutine},
	} {
		var got uint64
		NewWithPolicy(cfg.workers, cfg.policy).Run(func(f *Frame) {
			got = treeHash(f, depth, branch, 42)
		})
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("P=%d policy=%v: hash %#x, want %#x (P=1 steal)", cfg.workers, cfg.policy, got, want)
		}
	}
}

// TestStealTorture hammers the deques from many directions at once: a
// deep unbalanced tree where every interior frame syncs (burying its
// worker and forcing compensation) while leaves are stolen concurrently.
func TestStealTorture(t *testing.T) {
	depth := 9
	if testing.Short() {
		depth = 7
	}
	var n atomic.Int64
	var rec func(f *Frame, d int)
	rec = func(f *Frame, d int) {
		n.Add(1)
		if d == 0 {
			return
		}
		// Unbalanced: one heavy child, two light ones.
		f.Spawn(func(c *Frame) { rec(c, d-1) })
		f.Spawn(func(c *Frame) { n.Add(1) })
		f.Spawn(func(c *Frame) { n.Add(1) })
		f.Sync()
	}
	rt := NewWithPolicy(runtime.NumCPU(), PolicySteal)
	rt.Run(func(f *Frame) { rec(f, depth) })
	want := int64(depth + 1 + 2*depth)
	if n.Load() != want {
		t.Fatalf("ran %d, want %d", n.Load(), want)
	}
}

// TestWideFanoutStress pushes thousands of tasks through the deques with
// repeated syncs, at several worker counts.
func TestWideFanoutStress(t *testing.T) {
	total := 20000
	if testing.Short() {
		total = 4000
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		t.Run(fmt.Sprintf("P=%d", workers), func(t *testing.T) {
			var n atomic.Int64
			rt := NewWithPolicy(workers, PolicySteal)
			rt.Run(func(f *Frame) {
				for i := 0; i < total; i++ {
					f.Spawn(func(*Frame) { n.Add(1) })
					if i%512 == 511 {
						f.Sync()
					}
				}
				f.Sync()
			})
			if int(n.Load()) != total {
				t.Fatalf("ran %d, want %d", n.Load(), total)
			}
		})
	}
}

// TestStealBatchModes runs the determinism tree and the buried-work
// pattern under both steal modes: steal-half (the default) and the
// single-steal comparison mode. Results must be identical, and under
// batching a sweep must be able to take more than one task.
func TestStealBatchModes(t *testing.T) {
	orig := StealBatchCap()
	defer SetStealBatchCap(orig)
	depth, branch := 6, 3
	var want uint64
	for i, cap := range []int{1, stealBatchMax} {
		SetStealBatchCap(cap)
		rt := NewWithPolicy(runtime.NumCPU(), PolicySteal)
		var got uint64
		rt.Run(func(f *Frame) {
			got = treeHash(f, depth, branch, 7)
		})
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("stealCap=%d: hash %#x, want %#x (stealCap=1)", cap, got, want)
		}
		s := rt.Stats()
		if s.StolenTasks < s.Steals {
			t.Fatalf("stealCap=%d: StolenTasks=%d < Steals=%d", cap, s.StolenTasks, s.Steals)
		}
		if cap == 1 && s.StolenTasks != s.Steals {
			t.Fatalf("stealCap=1: StolenTasks=%d != Steals=%d", s.StolenTasks, s.Steals)
		}
	}
}

// TestStealBatchExtractsBuriedRun is TestStealsExtractBuriedWork with a
// wide run: a buried owner's whole backlog must drain through batch
// steals, and the extras parked in a thief's deque must not be lost.
func TestStealBatchExtractsBuriedRun(t *testing.T) {
	orig := StealBatchCap()
	defer SetStealBatchCap(orig)
	SetStealBatchCap(stealBatchMax)
	rt := NewWithPolicy(2, PolicySteal)
	const total = 64
	var n atomic.Int64
	ch := make(chan struct{})
	rt.Run(func(f *Frame) {
		// One atomic publication of the whole run: the first sweep over
		// the buried owner's deque must see a multi-task backlog.
		f.SpawnN(total, func(*Frame, int) {
			if n.Add(1) == total {
				close(ch)
			}
		})
		f.Block(func() { <-ch })
		f.Sync()
	})
	if n.Load() != total {
		t.Fatalf("ran %d children, want %d", n.Load(), total)
	}
	s := rt.Stats()
	if s.StolenTasks <= s.Steals {
		t.Fatalf("no multi-task sweep happened: StolenTasks=%d Steals=%d", s.StolenTasks, s.Steals)
	}
}

// workersAlive reports the number of live worker goroutines (test hook).
func (rt *Runtime) workersAlive() int {
	rt.pool.mu.Lock()
	defer rt.pool.mu.Unlock()
	return rt.pool.alive
}

// TestIdleParkAndQuiesce exercises the park protocol: with more workers
// than work, the surplus workers must park (not spin) while the run is
// active, wake for new work, and exit once the runtime quiesces.
func TestIdleParkAndQuiesce(t *testing.T) {
	rt := NewWithPolicy(4, PolicySteal)
	var n atomic.Int64
	rt.Run(func(f *Frame) {
		// Phase 1: a lone slow task; compensating workers find nothing
		// else and must park.
		f.Spawn(func(*Frame) {
			time.Sleep(30 * time.Millisecond)
			n.Add(1)
		})
		f.Sync()
		// Phase 2: parked workers must wake for a new burst.
		for i := 0; i < 64; i++ {
			f.Spawn(func(*Frame) { n.Add(1) })
		}
		f.Sync()
	})
	if n.Load() != 65 {
		t.Fatalf("ran %d tasks, want 65", n.Load())
	}
	if rt.Stats().Parks == 0 {
		t.Error("no worker ever parked during an idle phase")
	}
	// Quiesce: with no Run active, every worker must exit.
	deadline := time.Now().Add(5 * time.Second)
	for rt.workersAlive() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still alive after quiesce", rt.workersAlive())
		}
		time.Sleep(time.Millisecond)
	}
	// And the runtime must come back up for a later Run.
	var again atomic.Int64
	rt.Run(func(f *Frame) {
		for i := 0; i < 16; i++ {
			f.Spawn(func(*Frame) { again.Add(1) })
		}
		f.Sync()
	})
	if again.Load() != 16 {
		t.Fatalf("post-quiesce run executed %d tasks, want 16", again.Load())
	}
}

// TestBlockCompensationUnderPressure floods a small runtime with tasks
// that all block mid-body; compensating workers must keep the system
// moving and the P-bound must hold.
func TestBlockCompensationUnderPressure(t *testing.T) {
	const workers = 2
	rt := NewWithPolicy(workers, PolicySteal)
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	var reached atomic.Int64
	total := 32
	done := make(chan struct{})
	go func() {
		rt.Run(func(f *Frame) {
			for i := 0; i < total; i++ {
				f.Spawn(func(c *Frame) {
					c.Block(func() {
						reached.Add(1)
						<-gate
					})
					v := cur.Add(1)
					for {
						p := peak.Load()
						if v <= p || peak.CompareAndSwap(p, v) {
							break
						}
					}
					cur.Add(-1)
				})
			}
			f.Sync()
		})
		close(done)
	}()
	// All 32 tasks must reach the blocking point despite only 2 workers:
	// each Block releases capacity and compensates.
	deadline := time.Now().Add(5 * time.Second)
	for reached.Load() != int64(total) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d tasks reached their Block; compensation stalled", reached.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tasks never resumed after the gate opened")
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak post-block concurrency %d exceeds %d workers", p, workers)
	}
}

// TestNestedRunFromTask pins the nested-Run contract: with a spare
// worker (workers >= 2), Run called from inside a running task
// compensates for the buried caller and completes.
func TestNestedRunFromTask(t *testing.T) {
	rt := NewWithPolicy(2, PolicySteal)
	var inner atomic.Int64
	done := make(chan struct{})
	go func() {
		rt.Run(func(f *Frame) {
			rt.Run(func(g *Frame) {
				for i := 0; i < 8; i++ {
					g.Spawn(func(*Frame) { inner.Add(1) })
				}
				g.Sync()
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested Run deadlocked despite a spare worker")
	}
	if inner.Load() != 8 {
		t.Fatalf("nested run executed %d tasks, want 8", inner.Load())
	}
}

// TestGoroutinePolicyBaseline keeps the ablation baseline functional: the
// same programs must run under PolicyGoroutine, and its Stats are zero.
func TestGoroutinePolicyBaseline(t *testing.T) {
	rt := NewWithPolicy(4, PolicyGoroutine)
	if rt.Policy() != PolicyGoroutine {
		t.Fatalf("Policy() = %v", rt.Policy())
	}
	var n atomic.Int64
	rt.Run(func(f *Frame) {
		var rec func(f *Frame, d int)
		rec = func(f *Frame, d int) {
			n.Add(1)
			if d == 0 {
				return
			}
			for i := 0; i < 2; i++ {
				f.Spawn(func(c *Frame) { rec(c, d-1) })
			}
			f.Sync()
		}
		rec(f, 6)
	})
	if n.Load() != 127 {
		t.Fatalf("ran %d frames, want 127", n.Load())
	}
	if s := rt.Stats(); s != (Stats{}) {
		t.Errorf("goroutine policy reported nonzero stats: %+v", s)
	}
}

// TestSetDefaultPolicy pins the New ↔ SetDefaultPolicy contract used by
// cmd/paperbench's -sched flag.
func TestSetDefaultPolicy(t *testing.T) {
	orig := DefaultPolicy()
	defer SetDefaultPolicy(orig)
	SetDefaultPolicy(PolicyGoroutine)
	if got := New(2).Policy(); got != PolicyGoroutine {
		t.Fatalf("New after SetDefaultPolicy(goroutine): policy %v", got)
	}
	SetDefaultPolicy(PolicySteal)
	if got := New(2).Policy(); got != PolicySteal {
		t.Fatalf("New after SetDefaultPolicy(steal): policy %v", got)
	}
}
