// Package qcheck generates random hyperqueue programs and checks them
// against their serial elision. It is the engine behind cmd/quickcheck
// and the internal/core regression tests: both need the exact same
// program generator so that a seed reported by one ("FAIL seed=139") can
// be replayed by the other.
//
// Two generators exist. Generate is the original single-queue generator
// (push, spawn, pop, drain); its random-stream consumption is frozen —
// a given seed must keep producing the same program across refactors, or
// historical failure reports (seed 139) stop being reproducible. Do not
// reorder or add RNG draws in it. GenerateMulti is the extended
// generator: programs over several hyperqueues whose tasks additionally
// Sync mid-body, Call children synchronously (delegating a random
// privilege subset per queue), and consume through the non-blocking
// primitives — Empty-guarded TryPop and ReadSlice/ConsumeRead runs,
// which exercise the lock-free miss fast path and the §5.2 slice
// interface under both scheduler policies. GenerateMulti's stream
// identity is versioned rather than frozen: PR 4 extended the action
// set from 7 to 9 kinds, PR 5 from 9 to 11 (bound-handle push bursts —
// scalar Push or bulk PushSlice — and bound-handle Empty-guarded
// PopInto consumption), PR 6 appended per-queue bound draws after
// tree generation — about half the queues of each program are built
// with swan.Bounded, exercising the credit accounting on every push and
// pop path — and PR 7 extended the set from 11 to 12 kinds (reducer
// folds through swan.Reduce, checked against a serial-order RedOracle
// with an order-sensitive list-append monoid) plus a per-child
// reducer-privilege draw, changing the (seed, queues) → tree mapping. A
// failure report is therefore (generator version, seed, queues), never
// just a seed, and includes the bound assignment and reducer fold. Generated bounds are always at least the queue's total
// push count: generated programs may legally terminate with values
// still enqueued and may produce out of serial order through sibling
// producers, either of which can wedge a tight bound (see the in-order
// production discipline in OPERATIONS.md) — a generated program must
// never block on credits, only account them. The blocking paths are
// pinned by the dedicated backpressure tests instead.
//
// A program is a random task tree whose tasks push values, pop or drain
// queues, and spawn children with a random subset of their own
// privileges. While generating, the serial elision is played alongside:
// plain FIFOs record which task would consume which values if every
// spawn ran inline. Executing the program on the real runtime at any
// worker count and segment size must reproduce that oracle exactly —
// that is the paper's serializability theorem.
package qcheck

import (
	"fmt"
	"reflect"
	"strings"
	"sync"

	"repro/internal/rng"
	"repro/swan"
)

const (
	actPush = iota
	actSpawn
	actPopN
	actDrain
	actSync
	actCall
	actTryPopN    // GenerateMulti only: pop n values via Empty-guarded TryPop
	actReadSliceN // GenerateMulti only: consume n values via ReadSlice/ConsumeRead
	actBindPushN  // GenerateMulti only: push n values through a bound Pusher
	actBindPopN   // GenerateMulti only: consume n values via Popper.PopInto
	actReduceAdd  // GenerateMulti only: fold a value into the program's reducer
)

type action struct {
	kind  int
	q     int // queue index for push/pop/drain
	val   int
	n     int
	child *task
}

// task is one node of the generated spawn tree. modes[qi] is the
// privilege mask the task holds on queue qi: 1=push, 2=pop, 3=both,
// 0=none (no dependence is passed for that queue). red is the write
// privilege on the program's reducer (GenerateMulti only): the root
// holds it and children inherit it by random draw, like queue modes.
type task struct {
	id    int
	modes []uint8
	red   bool
	acts  []action
}

// Program is one generated random program together with its
// serial-elision oracle: Oracle[taskID] lists the values that task pops,
// in order, across all queues.
type Program struct {
	Seed   uint64
	Queues int
	Oracle map[int][]int
	Tasks  int
	Values int
	// Bounds[qi] is the swan.Bounded budget queue qi is constructed
	// with, 0 for unbounded. Nil for Generate programs (the frozen
	// single-queue generator predates bounds).
	Bounds []int
	// RedOracle is the serial elision of the program's reducer: the
	// values reducer-privileged tasks fold in, in serial program order.
	// The list-append monoid is order-sensitive, so a merge performed
	// out of serial order cannot cancel out. Nil for Generate programs.
	RedOracle []int
	root      *task
}

type generator struct {
	r         *rng.RNG
	nq        int
	nextID    int
	nextVal   int
	oracle    map[int][]int
	serialQ   [][]int // the serial elision's FIFO content, per queue
	pushed    []int   // values ever pushed, per queue (for safe bound draws)
	redOracle []int   // reducer folds in serial (= generation) order
}

// Generate builds the original single-queue random program for seed.
// Generation is deterministic: the same seed always yields the same
// program and oracle. The RNG consumption of this function is frozen
// (see the package comment).
func Generate(seed uint64) *Program {
	g := &generator{r: rng.New(seed), nq: 1, oracle: make(map[int][]int), serialQ: make([][]int, 1)}
	root := g.gen(3, 4)
	return &Program{Seed: seed, Queues: 1, Oracle: g.oracle, Tasks: g.nextID, Values: g.nextVal, root: root}
}

func (g *generator) gen(mode uint8, depth int) *task {
	td := &task{id: g.nextID, modes: []uint8{mode}}
	g.nextID++
	for i, n := 0, 2+g.r.Intn(5); i < n; i++ {
		switch g.r.Intn(4) {
		case 0:
			if mode&1 == 0 {
				continue
			}
			for j, k := 0, 1+g.r.Intn(4); j < k; j++ {
				td.acts = append(td.acts, action{kind: actPush, val: g.nextVal})
				g.serialQ[0] = append(g.serialQ[0], g.nextVal)
				g.nextVal++
			}
		case 1:
			if depth == 0 {
				continue
			}
			cm := mode
			if mode == 3 {
				cm = []uint8{1, 2, 3}[g.r.Intn(3)]
			}
			td.acts = append(td.acts, action{kind: actSpawn, child: g.gen(cm, depth-1)})
		case 2:
			if mode&2 == 0 || len(g.serialQ[0]) == 0 {
				continue
			}
			n := 1 + g.r.Intn(len(g.serialQ[0]))
			td.acts = append(td.acts, action{kind: actPopN, n: n})
			g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[0][:n]...)
			g.serialQ[0] = g.serialQ[0][n:]
		case 3:
			if mode&2 == 0 {
				continue
			}
			td.acts = append(td.acts, action{kind: actDrain})
			if len(g.serialQ[0]) > 0 {
				g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[0]...)
				g.serialQ[0] = nil
			}
		}
	}
	return td
}

// GenerateMulti builds a random program over the given number of
// hyperqueues with the extended action set: push bursts and
// pop/drain/TryPop/ReadSlice on a randomly chosen queue, mid-task Sync,
// and synchronous Call children alongside Spawn children, each delegated
// an independent random privilege subset per queue. Deterministic per
// (seed, queues); the RNG consumption is versioned independently of
// Generate's (see the package comment).
func GenerateMulti(seed uint64, queues int) *Program {
	if queues < 1 {
		queues = 1
	}
	g := &generator{r: rng.New(seed), nq: queues, oracle: make(map[int][]int), serialQ: make([][]int, queues), pushed: make([]int, queues)}
	modes := make([]uint8, queues)
	for i := range modes {
		modes[i] = 3
	}
	root := g.genMulti(modes, true, 4)
	// Bound draws come after the tree so the (seed, queues) → tree
	// mapping is stable; a bound of at least the total push count plus a
	// little jitter accounts credits on every path without ever blocking
	// (see the package comment).
	bounds := make([]int, queues)
	for qi := range bounds {
		if g.r.Intn(2) == 0 {
			bounds[qi] = max(1, g.pushed[qi]) + g.r.Intn(4)
		}
	}
	return &Program{Seed: seed, Queues: queues, Oracle: g.oracle, Tasks: g.nextID, Values: g.nextVal, Bounds: bounds, RedOracle: g.redOracle, root: root}
}

func (g *generator) genMulti(modes []uint8, red bool, depth int) *task {
	td := &task{id: g.nextID, modes: modes, red: red}
	g.nextID++
	// consume appends a bounded-count consumer action (Pop, TryPop or
	// ReadSlice — identical generation bookkeeping, identical RNG draws)
	// on a randomly chosen queue and moves the consumed prefix of the
	// serial elision to the oracle.
	consume := func(kind int) {
		qi := g.r.Intn(g.nq)
		if modes[qi]&2 == 0 || len(g.serialQ[qi]) == 0 {
			return
		}
		n := 1 + g.r.Intn(len(g.serialQ[qi]))
		td.acts = append(td.acts, action{kind: kind, q: qi, n: n})
		g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[qi][:n]...)
		g.serialQ[qi] = g.serialQ[qi][n:]
	}
	for i, n := 0, 2+g.r.Intn(6); i < n; i++ {
		switch g.r.Intn(12) {
		case 0, 1: // push burst on one queue
			qi := g.r.Intn(g.nq)
			if modes[qi]&1 == 0 {
				continue
			}
			for j, k := 0, 1+g.r.Intn(4); j < k; j++ {
				td.acts = append(td.acts, action{kind: actPush, q: qi, val: g.nextVal})
				g.serialQ[qi] = append(g.serialQ[qi], g.nextVal)
				g.pushed[qi]++
				g.nextVal++
			}
		case 2, 3: // spawn or call a child with a random privilege subset
			if depth == 0 {
				continue
			}
			kind := actSpawn
			if g.r.Intn(3) == 0 {
				kind = actCall
			}
			cm := make([]uint8, g.nq)
			for qi := range cm {
				cm[qi] = modes[qi] & uint8(g.r.Intn(4))
			}
			cred := red && g.r.Intn(2) == 0
			td.acts = append(td.acts, action{kind: kind, child: g.genMulti(cm, cred, depth-1)})
		case 4: // pop a bounded number of values from one queue
			consume(actPopN)
		case 5: // drain one queue to permanent emptiness
			qi := g.r.Intn(g.nq)
			if modes[qi]&2 == 0 {
				continue
			}
			td.acts = append(td.acts, action{kind: actDrain, q: qi})
			if len(g.serialQ[qi]) > 0 {
				g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[qi]...)
				g.serialQ[qi] = nil
			}
		case 6: // sync: wait for all children spawned so far
			td.acts = append(td.acts, action{kind: actSync})
		case 7: // consume a bounded number of values via TryPop
			consume(actTryPopN)
		case 8: // consume a bounded number of values via ReadSlice
			consume(actReadSliceN)
		case 9: // push burst through a bound handle (scalar or bulk)
			qi := g.r.Intn(g.nq)
			if modes[qi]&1 == 0 {
				continue
			}
			k := 1 + g.r.Intn(4)
			td.acts = append(td.acts, action{kind: actBindPushN, q: qi, val: g.nextVal, n: k})
			for j := 0; j < k; j++ {
				g.serialQ[qi] = append(g.serialQ[qi], g.nextVal)
				g.pushed[qi]++
				g.nextVal++
			}
		case 10: // consume a bounded number of values via Popper.PopInto
			consume(actBindPopN)
		case 11: // fold a fresh value into the reducer
			if !red {
				continue
			}
			td.acts = append(td.acts, action{kind: actReduceAdd, val: g.nextVal})
			g.redOracle = append(g.redOracle, g.nextVal)
			g.nextVal++
		}
	}
	return td
}

// deps builds the spawn-time dependence list for a child's per-queue
// privilege masks. Queues the child holds no privilege on get no
// dependence at all.
func deps(modes []uint8, qs []*swan.Queue[int]) []swan.Dep {
	var ds []swan.Dep
	for qi, m := range modes {
		switch m {
		case 1:
			ds = append(ds, swan.Push(qs[qi]))
		case 2:
			ds = append(ds, swan.Pop(qs[qi]))
		case 3:
			ds = append(ds, swan.PushPop(qs[qi]))
		}
	}
	return ds
}

// Outcome is everything a program execution produced: the per-task
// consumption map, the reducer's final fold, and — for the soak
// harness's pool audit — how many segments the program's queues held
// when it finished (counted at the final quiescent point, before the
// queues are abandoned to the garbage collector).
type Outcome struct {
	Consumed      map[int][]int
	Reduced       []int
	ChainSegments uint64
}

// Execute runs the program and returns the per-task consumption map;
// ExecuteFull additionally returns the reducer fold.
func (p *Program) Execute(workers, segCap int, policy swan.SpawnPolicy) map[int][]int {
	return p.ExecuteFull(workers, segCap, policy).Consumed
}

// ExecuteFull runs the program on a fresh runtime with the given worker
// count, segment capacity and scheduling substrate, returning what each
// task actually consumed and what the program's reducer folded. The
// hyperqueue's runtime self-checking assertions are enabled for the
// duration of the process (qcheck is a verifier; an assertion failure
// surfaces as a panic out of ExecuteFull).
func (p *Program) ExecuteFull(workers, segCap int, policy swan.SpawnPolicy) Outcome {
	var out Outcome
	swan.NewWithPolicy(workers, policy).Run(func(f *swan.Frame) {
		out = p.exec(f, segCap)
	})
	return out
}

// RunOn executes the program against an existing runtime, inside an
// isolated Call child of frame f — the soak harness uses it to churn one
// long-lived runtime (and its shared segment pools) through many
// programs instead of building a runtime per program. The program's
// queues are created in, and die with, the child frame; Outcome reports
// their final chain segments so the caller can keep its pool-accounting
// books.
func (p *Program) RunOn(f *swan.Frame, segCap int) Outcome {
	var out Outcome
	f.Call(func(c *swan.Frame) { out = p.exec(c, segCap) })
	return out
}

// exec is the shared program interpreter: it builds the program's queues
// and reducer on frame f, walks the task tree, syncs, and snapshots the
// outcome. f must be a root-like frame that owns nothing else on the
// queues it creates (ExecuteFull passes a fresh runtime's root, RunOn an
// isolated Call child).
func (p *Program) exec(f *swan.Frame, segCap int) Outcome {
	swan.SetQueueDebugChecks(true)
	out := Outcome{Consumed: make(map[int][]int)}
	consumed := out.Consumed
	var mu sync.Mutex
	{
		qs := make([]*swan.Queue[int], p.Queues)
		for i := range qs {
			var opts []swan.QueueOption
			if i < len(p.Bounds) && p.Bounds[i] > 0 {
				opts = append(opts, swan.Bounded(p.Bounds[i]))
			}
			qs[i] = swan.NewQueueWithCapacity[int](f, segCap, opts...)
		}
		red := swan.NewReducer(f, swan.Monoid[[]int]{
			Identity: func() []int { return nil },
			Combine:  func(into *[]int, from []int) { *into = append(*into, from...) },
		})
		var walk func(f *swan.Frame, td *task)
		walk = func(f *swan.Frame, td *task) {
			for _, a := range td.acts {
				switch a.kind {
				case actPush:
					qs[a.q].Push(f, a.val)
				case actSpawn, actCall:
					child := a.child
					body := func(c *swan.Frame) { walk(c, child) }
					ds := deps(child.modes, qs)
					if child.red {
						ds = append(ds, swan.Reduce(red))
					}
					if a.kind == actCall {
						f.Call(body, ds...)
					} else {
						f.Spawn(body, ds...)
					}
				case actPopN:
					for j := 0; j < a.n; j++ {
						v := qs[a.q].Pop(f)
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				case actDrain:
					for !qs[a.q].Empty(f) {
						v := qs[a.q].Pop(f)
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				case actTryPopN:
					// Empty gating keeps the loop bounded and deterministic:
					// a false Empty answer means a value is reachable for
					// this frame, so the very next TryPop must hit. A miss
					// after that (or a premature permanent emptiness) leaves
					// values unconsumed and surfaces as an oracle mismatch.
					for j := 0; j < a.n; j++ {
						if qs[a.q].Empty(f) {
							break
						}
						v, ok := qs[a.q].TryPop(f)
						if !ok {
							break
						}
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				case actReadSliceN:
					// Same Empty gating; ReadSlice after a false Empty must
					// return at least one value. Values are recorded before
					// ConsumeRead invalidates the aliased storage.
					for remaining := a.n; remaining > 0; {
						if qs[a.q].Empty(f) {
							break
						}
						s := qs[a.q].ReadSlice(f, remaining)
						if len(s) == 0 {
							break
						}
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], s...)
						mu.Unlock()
						qs[a.q].ConsumeRead(f, len(s))
						remaining -= len(s)
					}
				case actBindPushN:
					// Bound-handle producer: odd counts go value by value
					// (scalar Push), even counts as one PushSlice — both
					// shapes deterministically exercised across seeds.
					pw := qs[a.q].BindPush(f)
					if a.n%2 == 1 {
						for j := 0; j < a.n; j++ {
							pw.Push(a.val + j)
						}
					} else {
						vals := make([]int, a.n)
						for j := range vals {
							vals[j] = a.val + j
						}
						pw.PushSlice(vals)
					}
				case actBindPopN:
					// Bound-handle consumer: Empty-guarded bulk PopInto,
					// same progress contract as the TryPop action — a false
					// Empty means the next PopInto must transfer at least
					// one value.
					pp := qs[a.q].BindPop(f)
					buf := make([]int, a.n)
					for got := 0; got < a.n; {
						if pp.Empty() {
							break
						}
						n := pp.PopInto(buf[got:])
						if n == 0 {
							break
						}
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], buf[got:got+n]...)
						mu.Unlock()
						got += n
					}
				case actReduceAdd:
					red.BindReduce(f).Add([]int{a.val})
				case actSync:
					f.Sync()
				}
			}
		}
		walk(f, p.root)
		f.Sync()
		out.Reduced = red.Value(f)
		// Quiescent now (the Sync covered every spawned task): count the
		// segments the queues still hold, for the caller's pool audit.
		for _, q := range qs {
			out.ChainSegments += q.DebugChainSegments(f)
		}
	}
	return out
}

// Check executes the program and compares against the oracles (both the
// per-task consumption map and the reducer fold). It returns the
// consumed map and whether everything matched.
func (p *Program) Check(workers, segCap int, policy swan.SpawnPolicy) (map[int][]int, bool) {
	out, ok := p.CheckFull(workers, segCap, policy)
	return out.Consumed, ok
}

// CheckFull executes the program and compares the full Outcome against
// the oracles: every task's consumption must match the serial elision
// and the reducer's fold must list the reduced values in serial program
// order.
func (p *Program) CheckFull(workers, segCap int, policy swan.SpawnPolicy) (Outcome, bool) {
	out := p.ExecuteFull(workers, segCap, policy)
	ok := Equal(out.Consumed, p.Oracle) && reflect.DeepEqual(out.Reduced, p.RedOracle)
	return out, ok
}

// OpLog renders the program's task tree as one operation per line — a
// human-readable replay artifact. A failure report that carries the
// (generator version, seed, queues) triple is already replayable; the op
// log is what the nightly soak uploads alongside it so a failing window
// can be read without re-running the generator.
func (p *Program) OpLog() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program seed=%d queues=%d tasks=%d values=%d bounds=%v\n",
		p.Seed, p.Queues, p.Tasks, p.Values, p.Bounds)
	var walk func(td *task, depth int)
	walk = func(td *task, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%stask %d modes=%v red=%v\n", indent, td.id, td.modes, td.red)
		for _, a := range td.acts {
			switch a.kind {
			case actPush:
				fmt.Fprintf(&b, "%s  push q%d v%d\n", indent, a.q, a.val)
			case actSpawn:
				fmt.Fprintf(&b, "%s  spawn task %d\n", indent, a.child.id)
				walk(a.child, depth+1)
			case actCall:
				fmt.Fprintf(&b, "%s  call task %d\n", indent, a.child.id)
				walk(a.child, depth+1)
			case actPopN:
				fmt.Fprintf(&b, "%s  pop q%d n=%d\n", indent, a.q, a.n)
			case actDrain:
				fmt.Fprintf(&b, "%s  drain q%d\n", indent, a.q)
			case actSync:
				fmt.Fprintf(&b, "%s  sync\n", indent)
			case actTryPopN:
				fmt.Fprintf(&b, "%s  trypop q%d n=%d\n", indent, a.q, a.n)
			case actReadSliceN:
				fmt.Fprintf(&b, "%s  readslice q%d n=%d\n", indent, a.q, a.n)
			case actBindPushN:
				fmt.Fprintf(&b, "%s  bindpush q%d v%d n=%d\n", indent, a.q, a.val, a.n)
			case actBindPopN:
				fmt.Fprintf(&b, "%s  bindpop q%d n=%d\n", indent, a.q, a.n)
			case actReduceAdd:
				fmt.Fprintf(&b, "%s  reduce v%d\n", indent, a.val)
			}
		}
	}
	walk(p.root, 0)
	return b.String()
}

// DefaultPolicy reports the scheduling substrate selected by the
// REPRO_SCHED environment variable, so callers can sweep it without
// importing the runtime packages.
func DefaultPolicy() swan.SpawnPolicy { return swan.DefaultPolicy() }

// Equal reports whether two per-task consumption maps are identical.
func Equal(a, b map[int][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !reflect.DeepEqual(v, b[k]) {
			return false
		}
	}
	return true
}
