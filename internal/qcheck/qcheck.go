// Package qcheck generates random hyperqueue programs and checks them
// against their serial elision. It is the engine behind cmd/quickcheck
// and the internal/core regression tests: both need the exact same
// program generator so that a seed reported by one ("FAIL seed=139") can
// be replayed by the other.
//
// A program is a random task tree whose tasks push values, pop or drain
// the queue, and spawn children with a random subset of their own
// privileges. While generating, the serial elision is played alongside:
// a plain FIFO records which task would consume which values if every
// spawn ran inline. Executing the program on the real runtime at any
// worker count and segment size must reproduce that oracle exactly —
// that is the paper's serializability theorem.
//
// The generator's random-stream consumption is part of its identity: a
// given seed must keep producing the same program across refactors, or
// historical failure reports stop being reproducible. Do not reorder or
// add RNG draws.
package qcheck

import (
	"reflect"
	"sync"

	"repro/internal/rng"
	"repro/swan"
)

const (
	actPush = iota
	actSpawn
	actPopN
	actDrain
)

type action struct {
	kind  int
	val   int
	n     int
	child *task
}

type task struct {
	id   int
	mode uint8 // 1=push, 2=pop, 3=both
	acts []action
}

// Program is one generated random program together with its
// serial-elision oracle: Oracle[taskID] lists the values that task pops,
// in order.
type Program struct {
	Seed   uint64
	Oracle map[int][]int
	Tasks  int
	Values int
	root   *task
}

type generator struct {
	r       *rng.RNG
	nextID  int
	nextVal int
	oracle  map[int][]int
	serialQ []int
}

// Generate builds the random program for seed. Generation is
// deterministic: the same seed always yields the same program and
// oracle.
func Generate(seed uint64) *Program {
	g := &generator{r: rng.New(seed), oracle: make(map[int][]int)}
	root := g.gen(3, 4)
	return &Program{Seed: seed, Oracle: g.oracle, Tasks: g.nextID, Values: g.nextVal, root: root}
}

func (g *generator) gen(mode uint8, depth int) *task {
	td := &task{id: g.nextID, mode: mode}
	g.nextID++
	for i, n := 0, 2+g.r.Intn(5); i < n; i++ {
		switch g.r.Intn(4) {
		case 0:
			if mode&1 == 0 {
				continue
			}
			for j, k := 0, 1+g.r.Intn(4); j < k; j++ {
				td.acts = append(td.acts, action{kind: actPush, val: g.nextVal})
				g.serialQ = append(g.serialQ, g.nextVal)
				g.nextVal++
			}
		case 1:
			if depth == 0 {
				continue
			}
			cm := mode
			if mode == 3 {
				cm = []uint8{1, 2, 3}[g.r.Intn(3)]
			}
			td.acts = append(td.acts, action{kind: actSpawn, child: g.gen(cm, depth-1)})
		case 2:
			if mode&2 == 0 || len(g.serialQ) == 0 {
				continue
			}
			n := 1 + g.r.Intn(len(g.serialQ))
			td.acts = append(td.acts, action{kind: actPopN, n: n})
			g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[:n]...)
			g.serialQ = g.serialQ[n:]
		case 3:
			if mode&2 == 0 {
				continue
			}
			td.acts = append(td.acts, action{kind: actDrain})
			if len(g.serialQ) > 0 {
				g.oracle[td.id] = append(g.oracle[td.id], g.serialQ...)
				g.serialQ = nil
			}
		}
	}
	return td
}

// Execute runs the program on the real runtime with the given worker
// count, segment capacity and scheduling substrate, returning what each
// task actually consumed. The hyperqueue's runtime self-checking
// assertions are enabled for the duration of the process (qcheck is a
// verifier; an assertion failure surfaces as a panic out of Execute).
func (p *Program) Execute(workers, segCap int, policy swan.SpawnPolicy) map[int][]int {
	swan.SetQueueDebugChecks(true)
	consumed := make(map[int][]int)
	var mu sync.Mutex
	swan.NewWithPolicy(workers, policy).Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, segCap)
		var exec func(f *swan.Frame, td *task)
		exec = func(f *swan.Frame, td *task) {
			for _, a := range td.acts {
				switch a.kind {
				case actPush:
					q.Push(f, a.val)
				case actSpawn:
					child := a.child
					var dep swan.Dep
					switch child.mode {
					case 1:
						dep = swan.Push(q)
					case 2:
						dep = swan.Pop(q)
					default:
						dep = swan.PushPop(q)
					}
					f.Spawn(func(c *swan.Frame) { exec(c, child) }, dep)
				case actPopN:
					for j := 0; j < a.n; j++ {
						v := q.Pop(f)
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				case actDrain:
					for !q.Empty(f) {
						v := q.Pop(f)
						mu.Lock()
						consumed[td.id] = append(consumed[td.id], v)
						mu.Unlock()
					}
				}
			}
		}
		exec(f, p.root)
	})
	return consumed
}

// Check executes the program and compares against the oracle. It
// returns the consumed map and whether it matched.
func (p *Program) Check(workers, segCap int, policy swan.SpawnPolicy) (map[int][]int, bool) {
	got := p.Execute(workers, segCap, policy)
	return got, Equal(got, p.Oracle)
}

// DefaultPolicy reports the scheduling substrate selected by the
// REPRO_SCHED environment variable, so callers can sweep it without
// importing the runtime packages.
func DefaultPolicy() swan.SpawnPolicy { return swan.DefaultPolicy() }

// Equal reports whether two per-task consumption maps are identical.
func Equal(a, b map[int][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !reflect.DeepEqual(v, b[k]) {
			return false
		}
	}
	return true
}
