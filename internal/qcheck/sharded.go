package qcheck

import "repro/swan"

// ShardedProgram is a randomized check for the swan.Sharded fan-out:
// a pseudo-random value stream, a seed-derived content partition and a
// seed-derived transform, executed through the fan-out and compared
// element-for-element against the serial elision (the transform applied
// in arrival order). The geometry (shard count, queue bound, segment
// capacity) is drawn from the seed too, biased toward the deadlock-prone
// corners: tiny bounds, more shards than workers, single-element
// streams.
type ShardedProgram struct {
	Seed   uint64
	Values int
	Shards int
	Bound  int
	SegCap int

	vals []uint64
	mult uint64
}

func shardedMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GenerateSharded derives a sharded program from seed.
func GenerateSharded(seed uint64) *ShardedProgram {
	r := seed
	next := func() uint64 { r = shardedMix(r); return r }
	p := &ShardedProgram{Seed: seed}
	switch next() % 4 {
	case 0:
		p.Values = int(next() % 4) // empty and near-empty streams
	case 1:
		p.Values = 1 + int(next()%64)
	default:
		p.Values = 256 + int(next()%4096)
	}
	p.Shards = 1 + int(next()%8)
	p.Bound = []int{1, 2, 7, 64, 1024}[next()%5]
	p.SegCap = []int{1, 8, 256}[next()%3]
	p.mult = next() | 1 // odd multiplier: a bijective transform
	p.vals = make([]uint64, p.Values)
	for i := range p.vals {
		p.vals[i] = next()
	}
	return p
}

func (p *ShardedProgram) transform(v uint64) uint64 { return shardedMix(v * p.mult) }

// Check runs the program on the real runtime and reports whether the
// egress stream matches the serial elision.
func (p *ShardedProgram) Check(workers int, policy swan.SpawnPolicy) bool {
	got := make([]uint64, 0, p.Values)
	rt := swan.NewWithPolicy(workers, policy)
	rt.Run(func(f *swan.Frame) {
		s := swan.NewSharded(f,
			swan.ShardConfig{Shards: p.Shards, Bound: p.Bound, SegCap: p.SegCap},
			func(v uint64) uint64 { return v },
			func(c *swan.Frame, shard int) func(uint64) uint64 {
				return p.transform
			})
		f.Spawn(func(c *swan.Frame) {
			w := s.In().BindPush(c)
			w.PushSlice(p.vals)
		}, swan.Push(s.In()))
		s.Launch(f)
		f.Spawn(func(c *swan.Frame) {
			r := s.Out().BindPop(c)
			for !r.Empty() {
				got = append(got, r.Pop())
			}
		}, swan.Pop(s.Out()))
		f.Sync()
	})
	if len(got) != len(p.vals) {
		return false
	}
	for i, v := range p.vals {
		if got[i] != p.transform(v) {
			return false
		}
	}
	return true
}
