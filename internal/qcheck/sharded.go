package qcheck

import "repro/swan"

// ShardedProgram is a randomized check for the swan.Sharded fan-out:
// a pseudo-random value stream, a seed-derived content partition and a
// seed-derived transform, executed through the fan-out and compared
// element-for-element against the serial elision (the transform applied
// in arrival order). The geometry (shard count, queue bound, segment
// capacity) is drawn from the seed too, biased toward the deadlock-prone
// corners: tiny bounds, more shards than workers, single-element
// streams.
type ShardedProgram struct {
	Seed   uint64
	Values int
	Shards int
	Bound  int
	SegCap int

	vals []uint64
	mult uint64
}

func shardedMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GenerateSharded derives a sharded program from seed.
func GenerateSharded(seed uint64) *ShardedProgram {
	r := seed
	next := func() uint64 { r = shardedMix(r); return r }
	p := &ShardedProgram{Seed: seed}
	switch next() % 4 {
	case 0:
		p.Values = int(next() % 4) // empty and near-empty streams
	case 1:
		p.Values = 1 + int(next()%64)
	default:
		p.Values = 256 + int(next()%4096)
	}
	p.Shards = 1 + int(next()%8)
	p.Bound = []int{1, 2, 7, 64, 1024}[next()%5]
	p.SegCap = []int{1, 8, 256}[next()%3]
	p.mult = next() | 1 // odd multiplier: a bijective transform
	p.vals = make([]uint64, p.Values)
	for i := range p.vals {
		p.vals[i] = next()
	}
	return p
}

func (p *ShardedProgram) transform(v uint64) uint64 { return shardedMix(v * p.mult) }

// Check runs the program on a fresh runtime and reports whether the
// egress stream matches the serial elision.
func (p *ShardedProgram) Check(workers int, policy swan.SpawnPolicy) bool {
	var ok bool
	swan.NewWithPolicy(workers, policy).Run(func(f *swan.Frame) {
		ok, _ = p.RunOn(f)
	})
	return ok
}

// RunOn executes the program as a child of an existing frame (the soak
// harness runs many programs on one long-lived runtime) and reports
// whether the egress matched the serial elision, plus the number of
// segments the fan-out's queues still held at quiescence — the caller's
// pool-audit term for the abandoned queues.
func (p *ShardedProgram) RunOn(f *swan.Frame) (ok bool, chains uint64) {
	got := make([]uint64, 0, p.Values)
	var s *swan.Sharded[uint64, uint64]
	f.Call(func(c *swan.Frame) {
		s = swan.NewSharded(c,
			swan.ShardConfig{Shards: p.Shards, Bound: p.Bound, SegCap: p.SegCap},
			func(v uint64) uint64 { return v },
			func(w *swan.Frame, shard int) func(uint64) uint64 {
				return p.transform
			})
		c.Spawn(func(w *swan.Frame) {
			pu := s.In().BindPush(w)
			pu.PushSlice(p.vals)
		}, swan.Push(s.In()))
		s.Launch(c)
		c.Spawn(func(w *swan.Frame) {
			r := s.Out().BindPop(w)
			for !r.Empty() {
				got = append(got, r.Pop())
			}
		}, swan.Pop(s.Out()))
		c.Sync()
		chains = s.DebugChainSegments(c)
	})
	if len(got) != len(p.vals) {
		return false, chains
	}
	for i, v := range p.vals {
		if got[i] != p.transform(v) {
			return false, chains
		}
	}
	return true, chains
}
