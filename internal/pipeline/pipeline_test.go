package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPthreadsIdentityOrder(t *testing.T) {
	const n = 500
	var got []int
	RunPthreads(
		func(emit func(any)) {
			for i := 0; i < n; i++ {
				emit(i)
			}
		},
		[]Stage{
			{Name: "work", Workers: 8, Fn: func(d any, emit func(any)) { emit(d.(int) * 2) }},
			{Name: "sink", Ordered: true, Fn: func(d any, emit func(any)) { got = append(got, d.(int)) }},
		},
		16,
	)
	if len(got) != n {
		t.Fatalf("sink saw %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d, want %d (order broken)", i, v, i*2)
		}
	}
}

func TestPthreadsFanOutOrdered(t *testing.T) {
	// Each input k expands into k+1 children (variable fan-out, like
	// dedup's FragmentRefine); order at the sink must still be the
	// depth-first serial order.
	const n = 60
	var got []int
	var want []int
	for k := 0; k < n; k++ {
		for j := 0; j <= k; j++ {
			want = append(want, k*1000+j)
		}
	}
	RunPthreads(
		func(emit func(any)) {
			for i := 0; i < n; i++ {
				emit(i)
			}
		},
		[]Stage{
			{Name: "refine", Workers: 8, Fn: func(d any, emit func(any)) {
				k := d.(int)
				for j := 0; j <= k; j++ {
					emit(k*1000 + j)
				}
			}},
			{Name: "work", Workers: 8, Fn: func(d any, emit func(any)) { emit(d) }},
			{Name: "sink", Ordered: true, Fn: func(d any, emit func(any)) { got = append(got, d.(int)) }},
		},
		16,
	)
	if len(got) != len(want) {
		t.Fatalf("sink saw %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPthreadsZeroFanOut(t *testing.T) {
	// Stages may emit nothing for an item (dedup skips Compress for
	// duplicates); ordering must survive the holes.
	const n = 100
	var got []int
	RunPthreads(
		func(emit func(any)) {
			for i := 0; i < n; i++ {
				emit(i)
			}
		},
		[]Stage{
			{Name: "filter", Workers: 6, Fn: func(d any, emit func(any)) {
				if d.(int)%3 == 0 {
					emit(d)
				}
			}},
			{Name: "sink", Ordered: true, Fn: func(d any, emit func(any)) { got = append(got, d.(int)) }},
		},
		8,
	)
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*3)
		}
	}
	if len(got) != (n+2)/3 {
		t.Fatalf("sink saw %d items, want %d", len(got), (n+2)/3)
	}
}

func TestPthreadsParallelismUsed(t *testing.T) {
	var cur, peak atomic.Int64
	gate := make(chan struct{})
	var once sync.Once
	RunPthreads(
		func(emit func(any)) {
			for i := 0; i < 16; i++ {
				emit(i)
			}
		},
		[]Stage{
			{Name: "work", Workers: 4, Fn: func(d any, emit func(any)) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				if c >= 2 {
					once.Do(func() { close(gate) })
				}
				<-gate // hold until at least two workers overlap
				cur.Add(-1)
				emit(d)
			}},
		},
		16,
	)
	if peak.Load() < 2 {
		t.Fatalf("peak stage concurrency %d; workers not parallel", peak.Load())
	}
}

func TestPthreadsMultipleOrderedStages(t *testing.T) {
	const n = 120
	var mid, got []int
	RunPthreads(
		func(emit func(any)) {
			for i := 0; i < n; i++ {
				emit(i)
			}
		},
		[]Stage{
			{Name: "par1", Workers: 5, Fn: func(d any, emit func(any)) { emit(d) }},
			{Name: "ord1", Ordered: true, Fn: func(d any, emit func(any)) {
				mid = append(mid, d.(int))
				emit(d)
			}},
			{Name: "par2", Workers: 5, Fn: func(d any, emit func(any)) { emit(d) }},
			{Name: "ord2", Ordered: true, Fn: func(d any, emit func(any)) { got = append(got, d.(int)) }},
		},
		8,
	)
	for i := 0; i < n; i++ {
		if mid[i] != i || got[i] != i {
			t.Fatalf("order broken: mid[%d]=%d got[%d]=%d", i, mid[i], i, got[i])
		}
	}
}

func TestOrdererDirect(t *testing.T) {
	// Drive the orderer with records arriving in a hostile order.
	o := newOrderer()
	var got []int
	d := func(v any) { got = append(got, v.(int)) }
	// Stream of 2 items, item 0 expands to children {10, 11}, item 1 to {20}.
	o.insert(rec{path: []int32{1, 0}, payload: 20}, d)
	o.insert(rec{path: []int32{1}, marker: true, count: 1}, d)
	o.insert(rec{path: []int32{0, 1}, payload: 11}, d)
	o.insert(rec{path: nil, marker: true, count: 2}, d)
	if len(got) != 0 {
		t.Fatalf("premature delivery: %v", got)
	}
	o.insert(rec{path: []int32{0, 0}, payload: 10}, d)
	o.insert(rec{path: []int32{0}, marker: true, count: 2}, d)
	want := []int{10, 11, 20}
	if len(got) != 3 {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestTBBIdentityOrder(t *testing.T) {
	const n = 400
	i := 0
	var got []int
	RunTBB(
		func() any {
			if i >= n {
				return nil
			}
			i++
			return i - 1
		},
		[]Filter{
			{Name: "double", Mode: Parallel, Fn: func(d any) any { return d.(int) * 2 }},
			{Name: "out", Mode: SerialInOrder, Fn: func(d any) any {
				got = append(got, d.(int))
				return d
			}},
		},
		8, 16,
	)
	if len(got) != n {
		t.Fatalf("output saw %d, want %d", len(got), n)
	}
	for k, v := range got {
		if v != k*2 {
			t.Fatalf("got[%d] = %d, want %d", k, v, k*2)
		}
	}
}

func TestTBBDropKeepsOrder(t *testing.T) {
	const n = 200
	i := 0
	var got []int
	RunTBB(
		func() any {
			if i >= n {
				return nil
			}
			i++
			return i - 1
		},
		[]Filter{
			{Name: "drop-odds", Mode: Parallel, Fn: func(d any) any {
				if d.(int)%2 == 1 {
					return Drop
				}
				return d
			}},
			{Name: "out", Mode: SerialInOrder, Fn: func(d any) any {
				got = append(got, d.(int))
				return d
			}},
		},
		6, 10,
	)
	if len(got) != n/2 {
		t.Fatalf("output saw %d, want %d", len(got), n/2)
	}
	for k, v := range got {
		if v != k*2 {
			t.Fatalf("got[%d] = %d, want %d", k, v, k*2)
		}
	}
}

func TestTBBSerialOutOfOrderExclusive(t *testing.T) {
	const n = 100
	i := 0
	var inside, peak atomic.Int64
	var count atomic.Int64
	RunTBB(
		func() any {
			if i >= n {
				return nil
			}
			i++
			return i
		},
		[]Filter{
			{Name: "serial", Mode: SerialOutOfOrder, Fn: func(d any) any {
				c := inside.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				count.Add(1)
				inside.Add(-1)
				return d
			}},
		},
		8, 8,
	)
	if peak.Load() != 1 {
		t.Fatalf("serial filter ran %d-way concurrent", peak.Load())
	}
	if count.Load() != n {
		t.Fatalf("processed %d, want %d", count.Load(), n)
	}
}

func TestTBBTokenLimit(t *testing.T) {
	const tokens = 3
	var inflight, peak atomic.Int64
	i := 0
	RunTBB(
		func() any {
			if i >= 50 {
				return nil
			}
			i++
			inflight.Add(1)
			return i
		},
		[]Filter{
			{Name: "track", Mode: Parallel, Fn: func(d any) any {
				c := inflight.Load()
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				return d
			}},
			{Name: "done", Mode: Parallel, Fn: func(d any) any {
				inflight.Add(-1)
				return d
			}},
		},
		8, tokens,
	)
	if peak.Load() > tokens {
		t.Fatalf("in-flight peak %d exceeds token cap %d", peak.Load(), tokens)
	}
}

func TestTBBEmptyInput(t *testing.T) {
	ran := false
	RunTBB(func() any { return nil },
		[]Filter{{Name: "x", Mode: Parallel, Fn: func(d any) any { ran = true; return d }}},
		4, 4)
	if ran {
		t.Fatal("filter ran with empty input")
	}
}

func TestPthreadsEmptySource(t *testing.T) {
	var n int
	RunPthreads(func(emit func(any)) {},
		[]Stage{{Name: "sink", Ordered: true, Fn: func(d any, emit func(any)) { n++ }}}, 4)
	if n != 0 {
		t.Fatalf("sink ran %d times on empty source", n)
	}
}

func TestTBBMultipleSerialInOrderFilters(t *testing.T) {
	const n = 150
	i := 0
	var first, second []int
	RunTBB(
		func() any {
			if i >= n {
				return nil
			}
			i++
			return i - 1
		},
		[]Filter{
			{Name: "s1", Mode: SerialInOrder, Fn: func(d any) any {
				first = append(first, d.(int))
				return d
			}},
			{Name: "par", Mode: Parallel, Fn: func(d any) any { return d.(int) + 1000 }},
			{Name: "s2", Mode: SerialInOrder, Fn: func(d any) any {
				second = append(second, d.(int))
				return d
			}},
		},
		6, 12,
	)
	for k := 0; k < n; k++ {
		if first[k] != k {
			t.Fatalf("first[%d] = %d", k, first[k])
		}
		if second[k] != k+1000 {
			t.Fatalf("second[%d] = %d", k, second[k])
		}
	}
}

func TestTBBDropInFirstFilterReleasesOrder(t *testing.T) {
	// Drop everything; in-order filters downstream must not wedge.
	const n = 50
	i := 0
	var got []int
	RunTBB(
		func() any {
			if i >= n {
				return nil
			}
			i++
			return i - 1
		},
		[]Filter{
			{Name: "dropall", Mode: Parallel, Fn: func(d any) any { return Drop }},
			{Name: "sink", Mode: SerialInOrder, Fn: func(d any) any {
				got = append(got, d.(int))
				return d
			}},
		},
		4, 8,
	)
	if len(got) != 0 {
		t.Fatalf("sink saw %v after drop-all", got)
	}
}

func TestPthreadsDefaultWorkerCount(t *testing.T) {
	// Workers: 0 must default to one worker, not zero.
	var n atomic.Int64
	RunPthreads(
		func(emit func(any)) { emit(1); emit(2) },
		[]Stage{{Name: "w", Workers: 0, Fn: func(d any, emit func(any)) { n.Add(1) }}},
		2,
	)
	if n.Load() != 2 {
		t.Fatalf("stage with Workers=0 processed %d items", n.Load())
	}
}

func TestPthreadsDeepFanOutChain(t *testing.T) {
	// Two consecutive fan-out stages: hierarchical sequencing must hold
	// through depth-3 paths.
	var got []int
	RunPthreads(
		func(emit func(any)) {
			for i := 0; i < 6; i++ {
				emit(i)
			}
		},
		[]Stage{
			{Name: "fan1", Workers: 4, Fn: func(d any, emit func(any)) {
				for j := 0; j < 3; j++ {
					emit(d.(int)*10 + j)
				}
			}},
			{Name: "fan2", Workers: 4, Fn: func(d any, emit func(any)) {
				for j := 0; j < 2; j++ {
					emit(d.(int)*10 + j)
				}
			}},
			{Name: "sink", Ordered: true, Fn: func(d any, emit func(any)) {
				got = append(got, d.(int))
			}},
		},
		8,
	)
	if len(got) != 6*3*2 {
		t.Fatalf("sink saw %d items, want 36", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}
