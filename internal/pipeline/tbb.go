package pipeline

import "sync"

// FilterMode mirrors tbb::pipeline's filter kinds.
type FilterMode int

const (
	// Parallel filters process any number of items concurrently.
	Parallel FilterMode = iota
	// SerialInOrder filters process one item at a time, in input order.
	SerialInOrder
	// SerialOutOfOrder filters process one item at a time, any order.
	SerialOutOfOrder
)

// Filter is one TBB-style pipeline filter. Filters are strictly 1:1:
// each input item yields exactly one output item — the structural
// constraint the paper contrasts with hyperqueues (§6.2: variable
// input/output counts force restructuring under TBB). A filter may
// return the item unchanged or a transformed value; returning Drop
// removes the item from the stream (modelling tbb's pattern of passing
// through a tagged wrapper).
type Filter struct {
	Name string
	Mode FilterMode
	Fn   func(any) any
}

// Drop is the sentinel a filter returns to delete an item from the
// stream while keeping sequence accounting intact.
var Drop = new(struct{})

// RunTBB executes a token-limited structured pipeline, the shape of
// tbb::pipeline::run(maxTokens). The input function is the first,
// implicitly serial-in-order filter: it returns items until it returns
// nil (end of stream). At most maxTokens items are in flight, processed
// by a pool of `workers` goroutines.
func RunTBB(input func() any, filters []Filter, workers, maxTokens int) {
	if workers < 1 {
		workers = 1
	}
	if maxTokens < 1 {
		maxTokens = 1
	}
	type token struct {
		seq  int64
		data any
	}
	var (
		inMu   sync.Mutex
		nextIn int64
		eof    bool
	)
	// Per-serial-filter ordering state.
	type serialState struct {
		mu   sync.Mutex
		cond *sync.Cond
		next int64 // next sequence number to admit (in-order mode)
	}
	states := make([]*serialState, len(filters))
	for i, f := range filters {
		if f.Mode != Parallel {
			s := &serialState{}
			s.cond = sync.NewCond(&s.mu)
			states[i] = s
		}
	}
	tokens := make(chan struct{}, maxTokens)
	for i := 0; i < maxTokens; i++ {
		tokens <- struct{}{}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				<-tokens
				inMu.Lock()
				if eof {
					inMu.Unlock()
					tokens <- struct{}{}
					return
				}
				data := input()
				if data == nil {
					eof = true
					inMu.Unlock()
					tokens <- struct{}{}
					return
				}
				tk := token{seq: nextIn, data: data}
				nextIn++
				inMu.Unlock()

				dropped := false
				for i, f := range filters {
					switch f.Mode {
					case Parallel:
						if !dropped {
							tk.data = f.Fn(tk.data)
						}
					case SerialOutOfOrder:
						if !dropped {
							s := states[i]
							s.mu.Lock()
							tk.data = f.Fn(tk.data)
							s.mu.Unlock()
						}
					case SerialInOrder:
						// Dropped items still take their in-order turn so
						// successors are released in sequence, mirroring
						// TBB's pass-through of tagged empties.
						s := states[i]
						s.mu.Lock()
						for s.next != tk.seq {
							s.cond.Wait()
						}
						if !dropped {
							tk.data = f.Fn(tk.data)
						}
						s.next++
						s.cond.Broadcast()
						s.mu.Unlock()
					}
					if tk.data == Drop {
						dropped = true
					}
				}
				tokens <- struct{}{}
			}
		}()
	}
	wg.Wait()
}
