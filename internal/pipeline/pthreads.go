// Package pipeline implements the two baseline pipeline frameworks the
// paper evaluates hyperqueues against (§6): a POSIX-threads-style
// pipeline — thread pools per stage connected by bounded queues, with
// per-stage thread-count tuning and oversubscription — and a TBB-style
// structured pipeline with token-limited filters (tbb.go).
//
// Both baselines are intentionally *not* deterministic in the paper's
// sense (no serial elision); they reproduce the programming models whose
// performance and programmability the paper compares against.
package pipeline

import "sync"

// StageFn processes one work item and emits zero or more results —
// dedup's FragmentRefine emits many small chunks per coarse chunk, and
// Deduplicate drops none but Compress is skipped for duplicates, so
// variable fan-out is part of the model.
type StageFn func(data any, emit func(any))

// Stage describes one pthreads-style pipeline stage.
type Stage struct {
	Name    string
	Workers int  // goroutines dedicated to the stage (oversubscription allowed)
	Ordered bool // serial in-order stage: one worker, items in original stream order
	Fn      StageFn
}

// rec is the wire format between stages: either a payload at a
// hierarchical sequence path, or a marker recording how many children a
// path expanded into. Hierarchical paths let ordered stages reconstruct
// the original stream order across variable fan-out.
type rec struct {
	path    []int32
	payload any
	marker  bool
	count   int32
}

func childPath(p []int32, i int32) []int32 {
	cp := make([]int32, len(p)+1)
	copy(cp, p)
	cp[len(p)] = i
	return cp
}

// RunPthreads executes a pthreads-style pipeline: source feeds the first
// stage, every stage runs Workers goroutines over a bounded channel of
// capacity chanCap, and Ordered stages deliver items in original stream
// order. The call returns when the last stage has consumed everything.
func RunPthreads(source func(emit func(any)), stages []Stage, chanCap int) {
	if chanCap < 1 {
		chanCap = 1
	}
	in := make(chan rec, chanCap)
	go func(src chan<- rec) {
		var n int32
		source(func(v any) {
			src <- rec{path: []int32{n}, payload: v}
			n++
		})
		src <- rec{path: nil, marker: true, count: n}
		close(src)
	}(in)
	for _, st := range stages {
		out := make(chan rec, chanCap)
		if st.Ordered {
			go runOrdered(st, in, out)
		} else {
			go runParallel(st, in, out)
		}
		in = out
	}
	// Drain the final channel; the last stage's emissions are discarded
	// (real pipelines make their last stage a sink with side effects).
	for range in {
	}
}

// runParallel runs st.Workers goroutines over the input. Each processed
// item expands into child paths plus a marker; upstream markers are
// forwarded untouched.
func runParallel(st Stage, in <-chan rec, out chan<- rec) {
	w := st.Workers
	if w < 1 {
		w = 1
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for r := range in {
				if r.marker {
					out <- r
					continue
				}
				var n int32
				st.Fn(r.payload, func(v any) {
					out <- rec{path: childPath(r.path, n), payload: v}
					n++
				})
				out <- rec{path: r.path, marker: true, count: n}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
}

// runOrdered reorders the stream back to original order before applying
// the stage function, then re-emits a flat, freshly numbered stream.
func runOrdered(st Stage, in <-chan rec, out chan<- rec) {
	o := newOrderer()
	var n int32
	emit := func(v any) {
		out <- rec{path: []int32{n}, payload: v}
		n++
	}
	for r := range in {
		o.insert(r, func(v any) { st.Fn(v, emit) })
	}
	out <- rec{path: nil, marker: true, count: n}
	close(out)
}

// orderer reconstructs original stream order from hierarchically
// sequenced records. It holds a tree of expansion nodes: an item record
// makes a leaf, a marker fixes a node's child count, and delivery is the
// depth-first walk of the completed frontier.
type orderer struct {
	root *onode
}

type onode struct {
	children  map[int32]*onode
	item      any
	isLeaf    bool
	delivered bool
	count     int32 // -1 until the marker arrives
	next      int32
}

func newONode() *onode { return &onode{children: map[int32]*onode{}, count: -1} }

func newOrderer() *orderer { return &orderer{root: newONode()} }

func (o *orderer) nodeAt(path []int32) *onode {
	n := o.root
	for _, i := range path {
		c := n.children[i]
		if c == nil {
			c = newONode()
			n.children[i] = c
		}
		n = c
	}
	return n
}

// insert records r and delivers any newly in-order payloads.
func (o *orderer) insert(r rec, deliver func(any)) {
	n := o.nodeAt(r.path)
	if r.marker {
		n.count = r.count
	} else {
		n.item, n.isLeaf = r.payload, true
	}
	o.root.drain(deliver)
}

// drain walks the frontier in depth-first order, delivering leaves, and
// reports whether the node is fully exhausted.
func (n *onode) drain(deliver func(any)) bool {
	if n.isLeaf {
		if !n.delivered {
			deliver(n.item)
			n.delivered = true
		}
		return true
	}
	for {
		if n.count >= 0 && n.next >= n.count {
			n.children = nil // release exhausted subtree
			return true
		}
		c := n.children[n.next]
		if c == nil {
			return false // next child's records not here yet
		}
		if !c.drain(deliver) {
			return false
		}
		delete(n.children, n.next)
		n.next++
	}
}
