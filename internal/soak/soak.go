// Package soak is the long-horizon lifecycle fuzzer of the verification
// stack. Where qcheck generates one random task tree, executes it on a
// fresh runtime and compares against the serial elision, soak drives one
// long-lived runtime through millions of stepper operations mixing every
// lifecycle surface the library has — queue creation (bounded, named),
// push/pop bursts through every primitive (Push, PushSlice, blocking
// Pop, Empty-guarded TryPop, PopInto, ReadSlice/ConsumeRead), producer
// and consumer child tasks, reducer folds, hypermap puts, sharded
// fan-outs, embedded qcheck programs, Recycle/rearm, and periodic
// runtime teardown/rebuild with the segment pools carried over — while
// three oracles watch:
//
//   - a serial model: every queue carries a model FIFO played in program
//     order; every popped value is compared against it, every reducer
//     fold and hypermap winner against its serial counterpart;
//   - invariant sweeps: every SweepEvery steps the stepper syncs and
//     walks the §4.4 invariants of every live queue (the per-operation
//     no-hidden-data assertions stay enabled throughout);
//   - a pool audit: every AuditEvery steps, segment conservation is
//     checked exactly — SegmentAllocs == PooledSegments +
//     DroppedSegments + retired + Σ live chain segments — so a single
//     leaked or double-recycled segment fails the run at the next stripe.
//
// Execution is windowed: each window of OpsPerWindow steps runs as one
// Runtime.Run, derives its op sequence from wseed = seed + windowIndex,
// ends fully drained and audited, and folds everything it observed into
// a sha256 digest. The digest is the replay oracle: every
// ReplayEveryWindows windows the window is re-executed from wseed on a
// fresh runtime and must reproduce the digest bit-for-bit — the paper's
// determinism claim, checked end-to-end over the whole lifecycle mix. A
// failure is reported as a one-line FAIL record whose replay command
// re-runs exactly the failing window.
package soak

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/qcheck"
	"repro/internal/rng"
	"repro/swan"
)

// Fault kinds for Options.FaultStep: the deliberate bug classes the
// negative smoke injects to prove the harness still detects failures.
const (
	// FaultValue injects a model-invisible value; the drain compare must
	// catch it.
	FaultValue = "value"
	// FaultCancel cancels the window's root scope; the next blocking op
	// must unwind and Run must report the cancellation, which the
	// harness converts into a window failure.
	FaultCancel = "cancel"
)

// Options configures a Runner beyond the step-mix Config.
type Options struct {
	// Workers is the runtime worker count (default 4).
	Workers int
	// Policy selects the scheduling substrate.
	Policy swan.SpawnPolicy
	// FaultStep, when > 0, injects a deliberate bug at that global
	// 1-based step: the harness must detect it and the failure must
	// replay deterministically. This is the harness's own smoke test — a
	// fuzzer that cannot fail finds nothing.
	FaultStep int64
	// FaultKind selects the injected bug class (FaultValue, FaultCancel).
	// Empty means FaultValue.
	FaultKind string
	// Progress, when set, receives occasional one-line status reports.
	Progress func(format string, args ...any)
}

// Report summarizes a completed run. Counters accumulate over primary
// and replayed windows alike.
type Report struct {
	Steps    int64 // primary stepper operations executed
	Windows  int64 // primary windows completed
	Sweeps   int64 // invariant sweeps (all clean)
	Audits   int64 // pool audits (all balanced)
	Replays  int64 // replay windows compared (all digest-identical)
	Rebuilds int64 // runtime teardown/rebuild cycles
	Recycles int64 // Queue.Recycle calls (mid-window rearms + end-of-window)
	Qchecks  int64 // embedded qcheck programs (all matched their oracle)
	Shardeds int64 // sharded fan-outs (all matched the serial elision)
	Handoffs int64 // bounded handoffs (producer blocked on credits)
	Chaos    int64 // chaos kills (canceled wedges, poisoned wedges, deadline/shed probes)
	Pushed   int64 // values pushed through live working-set queues
	Popped   int64 // values popped from live working-set queues
	Retired  uint64
	// Interrupted reports the run ended early via Runner.Stop (SIGINT):
	// the in-flight window was canceled and drained, not failed.
	Interrupted bool
	// FinalStats snapshots the long-lived runtime after the last window.
	FinalStats swan.RuntimeStats
}

// Failure describes one detected violation, with everything needed to
// replay it: the window is re-run by seeding a fresh one-window soak
// with the failing window's wseed.
type Failure struct {
	Config    string
	Policy    string
	Workers   int
	Window    int64  // index of the failing window in the original run
	WSeed     uint64 // the window's seed — the replay seed
	Steps     int64  // the window's length — the replay step count
	Step      int64  // global step at failure (best effort for panics)
	Fault     int64  // in-window fault step, 0 if none was injected
	FaultKind string // injected bug class (FaultValue, FaultCancel); "" if none
	Msg       string
	OpLog     string // the failing window's op log, up to the failure
}

// FailLine renders the quickcheck-style one-line failure record followed
// by a copy-pasteable replay command that re-executes exactly the
// failing window.
func (fl *Failure) FailLine() string {
	cmd := fmt.Sprintf(
		"go run ./cmd/soakfuzz -config %s -policy %s -workers %d -seed %d -steps %d",
		fl.Config, fl.Policy, fl.Workers, fl.WSeed, fl.Steps)
	if fl.Fault > 0 {
		cmd += fmt.Sprintf(" -fault %d", fl.Fault)
		if fl.FaultKind != "" && fl.FaultKind != FaultValue {
			cmd += fmt.Sprintf(" -faultkind %s", fl.FaultKind)
		}
	}
	return fmt.Sprintf(
		"FAIL soak config=%s policy=%s window=%d wseed=%d step=%d: %s\nreplay: %s",
		fl.Config, fl.Policy, fl.Window, fl.WSeed, fl.Step, fl.Msg, cmd)
}

// PolicyName renders a SpawnPolicy as the -policy flag spelling.
func PolicyName(p swan.SpawnPolicy) string {
	if p == swan.PolicyGoroutine {
		return "goroutine"
	}
	return "steal"
}

// ParsePolicy is the inverse of PolicyName.
func ParsePolicy(s string) (swan.SpawnPolicy, error) {
	switch s {
	case "steal":
		return swan.PolicySteal, nil
	case "goroutine":
		return swan.PolicyGoroutine, nil
	}
	return swan.PolicySteal, fmt.Errorf("unknown policy %q (want steal or goroutine)", s)
}

// Runner drives soak windows against one long-lived runtime.
type Runner struct {
	cfg Config
	opt Options
	rep Report
	// retired counts segments abandoned with dead queues — every queue a
	// window leaves behind is counted at quiescence before abandonment,
	// so the audit balance stays closed across the provider's whole life
	// (the pool is carried across runtime rebuilds).
	retired uint64

	// Stop support: current is whichever runtime a window is executing
	// on right now (the long-lived one, or a replay's), so an external
	// Stop can reach its cancel scope.
	mu      sync.Mutex
	current *swan.Runtime
	stopped bool
}

// Stop cancels the in-flight window through the runtime's cancellation
// API and makes Run return cleanly once it unwinds: parked producers
// and consumers wake and unwind, views fold, and the report (including
// the final stats snapshot) stays valid at the interrupted point. Safe
// to call from any goroutine — a signal handler, typically.
func (r *Runner) Stop() {
	r.mu.Lock()
	r.stopped = true
	rt := r.current
	r.mu.Unlock()
	if rt != nil {
		rt.Cancel(nil)
	}
}

// Stopped reports whether Stop has been called.
func (r *Runner) Stopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

func (r *Runner) setCurrent(rt *swan.Runtime) *swan.Runtime {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.current = rt
	return rt
}

// New returns a Runner for the given config and options. The config must
// validate.
func New(cfg Config, opt Options) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	switch opt.FaultKind {
	case "":
		opt.FaultKind = FaultValue
	case FaultValue, FaultCancel:
	default:
		return nil, fmt.Errorf("unknown fault kind %q (want %s or %s)",
			opt.FaultKind, FaultValue, FaultCancel)
	}
	return &Runner{cfg: cfg, opt: opt}, nil
}

// Run executes steps stepper operations starting from seed and returns
// the report, plus a Failure if any oracle fired. The per-operation
// debug assertions (no-hidden-data) are enabled process-wide for the
// duration.
func (r *Runner) Run(seed uint64, steps int64) (Report, *Failure) {
	swan.SetQueueDebugChecks(true)
	rt := r.setCurrent(swan.NewWithPolicy(r.opt.Workers, r.opt.Policy))
	var done, window int64
	for done < steps {
		if r.Stopped() {
			r.rep.Interrupted = true
			break
		}
		n := int64(r.cfg.OpsPerWindow)
		if steps-done < n {
			n = steps - done
		}
		wseed := seed + uint64(window)
		var fault int64
		if fs := r.opt.FaultStep; fs > done && fs <= done+n {
			fault = fs - done
		}
		res, fail := r.runWindow(rt, &r.retired, wseed, n, fault)
		if fail != nil {
			if r.Stopped() {
				// Stop canceled the window mid-flight: a clean interrupt,
				// not an oracle violation.
				r.rep.Interrupted = true
				return r.report(rt), nil
			}
			r.decorate(fail, window, wseed, n, done)
			return r.report(rt), fail
		}
		if k := int64(r.cfg.ReplayEveryWindows); k > 0 && window%k == k-1 {
			// Replay-window determinism check: a fresh runtime (own pool,
			// own retired tally) re-executes the window from wseed. The
			// digest folds every value every oracle saw, so a single
			// reordered or corrupted element diverges it.
			var retired2 uint64
			res2, fail2 := r.runWindow(r.setCurrent(swan.NewWithPolicy(r.opt.Workers, r.opt.Policy)),
				&retired2, wseed, n, fault)
			r.setCurrent(rt)
			switch {
			case fail2 != nil:
				if r.Stopped() {
					r.rep.Interrupted = true
					return r.report(rt), nil
				}
				fail2.Msg = "replay of a clean window failed: " + fail2.Msg
				r.decorate(fail2, window, wseed, n, done)
				return r.report(rt), fail2
			case res2.digest != res.digest:
				fail := &Failure{
					Msg: fmt.Sprintf("replay-window digest mismatch: %x vs %x",
						res.digest, res2.digest),
					Step: done + n,
				}
				r.decorate(fail, window, wseed, n, done)
				return r.report(rt), fail
			}
			r.rep.Replays++
		}
		done += n
		window++
		r.rep.Steps = done
		r.rep.Windows = window
		if k := int64(r.cfg.RebuildEveryWindows); k > 0 && window%k == 0 && done < steps {
			// Teardown/rebuild: the old runtime is abandoned (Run leaves
			// no live workers between calls), the new one inherits the
			// segment pools — so pooled-segment reuse, and the audit
			// balance, span rebuild boundaries.
			old := rt
			rt = r.setCurrent(swan.NewWithPolicy(r.opt.Workers, r.opt.Policy))
			core.CarryProvider(old, rt)
			r.rep.Rebuilds++
		}
		if r.opt.Progress != nil && window%16 == 0 {
			r.opt.Progress("soak: %d/%d steps, %d windows, %d sweeps, %d audits, %d replays, %d rebuilds",
				done, steps, r.rep.Windows, r.rep.Sweeps, r.rep.Audits, r.rep.Replays, r.rep.Rebuilds)
		}
	}
	return r.report(rt), nil
}

// WindowDigest executes a single window in isolation on a fresh runtime
// and returns its digest. It is the determinism test hook: the digest
// must depend only on (config, wseed, steps, fault) — never on the
// policy, the worker count, or scheduling luck.
func WindowDigest(cfg Config, opt Options, wseed uint64, steps int64) ([sha256.Size]byte, *Failure) {
	r, err := New(cfg, opt)
	if err != nil {
		return [sha256.Size]byte{}, &Failure{Msg: err.Error()}
	}
	swan.SetQueueDebugChecks(true)
	rt := swan.NewWithPolicy(r.opt.Workers, r.opt.Policy)
	var fault int64
	if fs := r.opt.FaultStep; fs > 0 && fs <= steps {
		fault = fs
	}
	res, fail := r.runWindow(rt, &r.retired, wseed, steps, fault)
	if fail != nil {
		r.decorate(fail, 0, wseed, steps, 0)
	}
	return res.digest, fail
}

func (r *Runner) report(rt *swan.Runtime) Report {
	rep := r.rep
	rep.Retired = r.retired
	rep.FinalStats = swan.Stats(rt)
	return rep
}

func (r *Runner) decorate(fail *Failure, window int64, wseed uint64, n, done int64) {
	fail.Config = r.cfg.Name
	fail.Policy = PolicyName(r.opt.Policy)
	fail.Workers = r.opt.Workers
	fail.Window = window
	fail.WSeed = wseed
	fail.Steps = n
	fail.Step += done
	if fail.Fault > 0 {
		fail.FaultKind = r.opt.FaultKind
	}
}

type windowResult struct {
	digest [sha256.Size]byte
}

// failPanic carries an oracle violation out of the window stepper; the
// runtime quiesces the remaining tasks (all of which can complete — the
// stepper never schedules work that depends on future ops) and
// runWindow's recover converts it into a Failure.
type failPanic struct{ msg string }

func (r *Runner) runWindow(rt *swan.Runtime, retired *uint64, wseed uint64, steps, fault int64) (res windowResult, fail *Failure) {
	w := &window{
		r:       r,
		rng:     rng.New(wseed),
		h:       sha256.New(),
		prov:    core.ProviderOf(rt),
		retired: retired,
		steps:   steps,
		fault:   fault,
	}
	defer func() {
		if p := recover(); p != nil {
			msg := fmt.Sprintf("panic: %v", p)
			if fp, ok := p.(failPanic); ok {
				msg = fp.msg
			}
			fail = &Failure{Step: w.step, Fault: fault, Msg: msg, OpLog: w.renderLog()}
		}
	}()
	if err := rt.Run(func(f *swan.Frame) {
		w.f = f
		w.run()
	}); err != nil {
		// The window's root scope was canceled — either the injected
		// cancel fault or a genuine bug. Either way the window did not
		// complete its oracles, so it is a failure.
		return res, &Failure{
			Step:  w.step,
			Fault: fault,
			Msg:   fmt.Sprintf("window Run ended canceled: %v", err),
			OpLog: w.renderLog(),
		}
	}
	w.h.Sum(res.digest[:0])
	return res, nil
}

// liveQ is one working-set queue plus its serial model: the values
// pushed (by the root or by already-spawned producer children, in
// program order) and not yet claimed by a pop.
type liveQ struct {
	id    int
	q     *swan.Queue[uint64]
	bound int // 0 = unbounded
	model []uint64
}

// deferredPop is a consumer child's pending verification: the child
// fills got concurrently; the next sync point compares it against want
// and folds it into the digest, in spawn order.
type deferredPop struct {
	qid  int
	want []uint64
	got  []uint64
}

type window struct {
	r       *Runner
	f       *swan.Frame
	rng     *rng.RNG
	h       hash.Hash
	prov    *core.PoolProvider
	retired *uint64
	steps   int64
	fault   int64
	step    int64 // current 1-based step

	qs       []*liveQ
	nq       int
	red      *swan.Reducer[uint64]
	redModel uint64
	hmap     *swan.Hypermap[uint64, uint64]
	hmapW    map[uint64]uint64 // serial first-writer-wins winners
	deferred []deferredPop
	log      []string
}

func (w *window) logf(format string, args ...any) {
	w.log = append(w.log, fmt.Sprintf(format, args...))
}

func (w *window) renderLog() string {
	if len(w.log) == 0 {
		return ""
	}
	return strings.Join(w.log, "\n") + "\n"
}

func (w *window) failf(format string, args ...any) {
	panic(failPanic{fmt.Sprintf("step %d: %s", w.step, fmt.Sprintf(format, args...))})
}

// d8 folds values into the window digest.
func (w *window) d8(vs ...uint64) {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], v)
		w.h.Write(b[:])
	}
}

func (w *window) tag(s string) { w.h.Write([]byte(s)) }

// draw returns k fresh pseudo-random payload values.
func (w *window) draw(k int) []uint64 {
	vs := make([]uint64, k)
	for i := range vs {
		vs[i] = w.rng.Uint64()
	}
	return vs
}

func (w *window) run() {
	w.hmapW = make(map[uint64]uint64)
	w.red = swan.NewReducer(w.f, swan.Monoid[uint64]{
		Identity: func() uint64 { return 0 },
		Combine:  func(into *uint64, from uint64) { *into += from },
	})
	w.hmap = swan.NewHypermap[uint64, uint64](w.f)
	cfg := &w.r.cfg
	for w.step = 1; w.step <= w.steps; w.step++ {
		if w.step == w.fault {
			w.opFault()
		}
		if e := int64(cfg.HandoffEvery); e > 0 && w.step%e == 0 {
			w.opHandoff()
		}
		if e := int64(cfg.QcheckEvery); e > 0 && w.step%e == 0 {
			w.opQcheck()
		}
		if e := int64(cfg.ShardedEvery); e > 0 && w.step%e == 0 {
			w.opSharded()
		}
		if e := int64(cfg.ChaosEvery); e > 0 && w.step%e == 0 {
			w.opChaos()
		}
		if e := int64(cfg.SweepEvery); e > 0 && w.step%e == 0 {
			w.opSweep()
		}
		if e := int64(cfg.AuditEvery); e > 0 && w.step%e == 0 {
			w.opAudit()
		}
		switch c := w.rng.Intn(100); {
		case c < 12:
			w.opCreate()
		case c < 40:
			w.opPush()
		case c < 55:
			w.opSpawnProducer()
		case c < 72:
			w.opPop()
		case c < 82:
			w.opSpawnConsumer()
		case c < 88:
			w.opDrain()
		case c < 93:
			w.opReduce()
		case c < 97:
			w.opHypermap()
		default:
			w.opRecycle()
		}
	}
	w.finish()
}

// syncPoint quiesces the task tree and settles every deferred consumer
// verification, folding the popped values into the digest in spawn
// order. After it returns, every queue the window owns is quiescent
// (DebugChainSegments/CheckInvariants/Recycle preconditions hold).
func (w *window) syncPoint() {
	w.f.Sync()
	for _, d := range w.deferred {
		for i, v := range d.want {
			if d.got[i] != v {
				w.failf("consumer child on q%d: value %d is %d, want %d", d.qid, i, d.got[i], v)
			}
		}
		w.d8(d.got...)
	}
	w.deferred = w.deferred[:0]
}

// pick returns a random live queue, creating one if the working set is
// empty.
func (w *window) pick() *liveQ {
	if len(w.qs) == 0 {
		return w.opCreate()
	}
	return w.qs[w.rng.Intn(len(w.qs))]
}

// headroom is the largest burst that can be scheduled on lq without
// risking a permanent credit block: after every already-scheduled op
// completes, the queue holds len(model) values, so a burst of
// bound-len(model) always fits without depending on any future pop.
func (w *window) headroom(lq *liveQ) int {
	h := w.r.cfg.MaxBurst
	if lq.bound > 0 && lq.bound-len(lq.model) < h {
		h = lq.bound - len(lq.model)
	}
	return h
}

func (w *window) opCreate() *liveQ {
	if len(w.qs) >= w.r.cfg.MaxQueues {
		return w.qs[w.rng.Intn(len(w.qs))]
	}
	bound := w.r.cfg.Bounds[w.rng.Intn(len(w.r.cfg.Bounds))]
	var opts []swan.QueueOption
	if bound > 0 {
		opts = append(opts, swan.Bounded(bound))
	} else if w.rng.Intn(4) == 0 {
		// Metering for unbounded queues comes from Named. Stable names
		// keep the stats registry's rendered output bounded over long
		// runs (rows aggregate by name).
		opts = append(opts, swan.Named(fmt.Sprintf("soak.q%d", w.nq%4)))
	}
	w.nq++
	lq := &liveQ{
		id:    w.nq,
		q:     swan.NewQueueWithCapacity[uint64](w.f, w.r.cfg.SegCap, opts...),
		bound: bound,
	}
	w.qs = append(w.qs, lq)
	w.logf("create q%d bound=%d", lq.id, bound)
	w.tag("create")
	return lq
}

func (w *window) opPush() {
	lq := w.pick()
	h := w.headroom(lq)
	if h <= 0 {
		w.logf("push q%d: no credit headroom, skipped", lq.id)
		return
	}
	k := 1 + w.rng.Intn(h)
	vals := w.draw(k)
	switch w.rng.Intn(3) {
	case 0:
		for _, v := range vals {
			lq.q.Push(w.f, v)
		}
	case 1:
		pu := lq.q.BindPush(w.f)
		for _, v := range vals {
			pu.Push(v)
		}
	default:
		pu := lq.q.BindPush(w.f)
		pu.PushSlice(vals)
	}
	lq.model = append(lq.model, vals...)
	w.d8(vals...)
	w.logf("push q%d n=%d", lq.id, k)
	w.r.rep.Pushed += int64(k)
}

func (w *window) opSpawnProducer() {
	lq := w.pick()
	h := w.headroom(lq)
	if h <= 0 {
		w.logf("producer q%d: no credit headroom, skipped", lq.id)
		return
	}
	k := 1 + w.rng.Intn(h)
	vals := w.draw(k)
	slice := w.rng.Intn(2) == 0
	if lq.bound > 0 {
		// In-order-production discipline (OPERATIONS.md): on a bounded
		// queue a producer child's values are serially ordered before
		// the root's later pushes, but can land physically after them —
		// the root's values then hold the bound while the consumer
		// waits for the child's, wedging the credit cycle. The root
		// therefore stays the sole producer of bounded working-set
		// queues; the blocking producer path is exercised by the
		// dedicated handoff op, which keeps production sequential.
		pu := lq.q.BindPush(w.f)
		if slice {
			pu.PushSlice(vals)
		} else {
			for _, v := range vals {
				pu.Push(v)
			}
		}
		lq.model = append(lq.model, vals...)
		w.d8(vals...)
		w.logf("producer q%d n=%d slice=%v inline (bounded)", lq.id, k, slice)
		w.r.rep.Pushed += int64(k)
		return
	}
	q := lq.q
	w.f.Spawn(func(c *swan.Frame) {
		pu := q.BindPush(c)
		if slice {
			pu.PushSlice(vals)
		} else {
			for _, v := range vals {
				pu.Push(v)
			}
		}
	}, swan.Push(q))
	lq.model = append(lq.model, vals...)
	w.d8(vals...)
	w.logf("producer q%d n=%d slice=%v", lq.id, k, slice)
	w.r.rep.Pushed += int64(k)
}

func (w *window) opPop() {
	lq := w.pick()
	if len(lq.model) == 0 {
		w.logf("pop q%d: model empty, skipped", lq.id)
		return
	}
	k := len(lq.model)
	if k > w.r.cfg.MaxBurst {
		k = w.r.cfg.MaxBurst
	}
	k = 1 + w.rng.Intn(k)
	mode := w.rng.Intn(4)
	got := make([]uint64, 0, k)
	switch mode {
	case 0: // blocking Pop
		for i := 0; i < k; i++ {
			got = append(got, lq.q.Pop(w.f))
		}
	case 1: // Empty-guarded TryPop
		po := lq.q.BindPop(w.f)
		for len(got) < k && !po.Empty() {
			if v, ok := po.TryPop(); ok {
				got = append(got, v)
			}
		}
	case 2: // Empty-guarded PopInto
		po := lq.q.BindPop(w.f)
		buf := make([]uint64, k)
		n := 0
		for n < k && !po.Empty() {
			n += po.PopInto(buf[n:])
		}
		got = buf[:n]
	default: // Empty-guarded ReadSlice/ConsumeRead
		po := lq.q.BindPop(w.f)
		for len(got) < k && !po.Empty() {
			s := po.ReadSlice(k - len(got))
			got = append(got, s...)
			po.ConsumeRead(len(s))
		}
	}
	if len(got) != k {
		w.failf("pop q%d mode=%d: got %d values, want %d", lq.id, mode, len(got), k)
	}
	for i := range got {
		if got[i] != lq.model[i] {
			w.failf("pop q%d mode=%d: value %d is %d, want %d", lq.id, mode, i, got[i], lq.model[i])
		}
	}
	lq.model = lq.model[:copy(lq.model, lq.model[k:])]
	w.d8(got...)
	w.logf("pop q%d n=%d mode=%d", lq.id, k, mode)
	w.r.rep.Popped += int64(k)
}

func (w *window) opSpawnConsumer() {
	lq := w.pick()
	if len(lq.model) == 0 {
		w.logf("consumer q%d: model empty, skipped", lq.id)
		return
	}
	k := len(lq.model)
	if k > w.r.cfg.MaxBurst {
		k = w.r.cfg.MaxBurst
	}
	k = 1 + w.rng.Intn(k)
	want := append([]uint64(nil), lq.model[:k]...)
	lq.model = lq.model[:copy(lq.model, lq.model[k:])]
	got := make([]uint64, k)
	q := lq.q
	popInto := w.rng.Intn(2) == 0
	w.f.Spawn(func(c *swan.Frame) {
		po := q.BindPop(c)
		if popInto {
			n := 0
			for n < len(got) && !po.Empty() {
				n += po.PopInto(got[n:])
			}
		} else {
			for i := range got {
				got[i] = po.Pop()
			}
		}
	}, swan.Pop(q))
	w.deferred = append(w.deferred, deferredPop{lq.id, want, got})
	w.logf("consumer q%d n=%d popinto=%v", lq.id, k, popInto)
	w.r.rep.Popped += int64(k)
}

// drain pops the queue to permanent emptiness from the root and checks
// every value against the model. Any live producer or consumer child
// settles first — Empty blocks until the emptiness decision is valid,
// and the consumer role is acquired only after spawned pop children
// completed — so the result is deterministic.
func (w *window) drain(lq *liveQ) {
	got := make([]uint64, 0, len(lq.model))
	for !lq.q.Empty(w.f) {
		got = append(got, lq.q.Pop(w.f))
	}
	if len(got) != len(lq.model) {
		w.failf("drain q%d: got %d values, want %d", lq.id, len(got), len(lq.model))
	}
	for i := range got {
		if got[i] != lq.model[i] {
			w.failf("drain q%d: value %d is %d, want %d", lq.id, i, got[i], lq.model[i])
		}
	}
	w.d8(got...)
	lq.model = lq.model[:0]
	w.r.rep.Popped += int64(len(got))
}

func (w *window) opDrain() {
	lq := w.pick()
	n := len(lq.model)
	w.drain(lq)
	w.logf("drain q%d n=%d", lq.id, n)
}

// opRecycle drives a queue through its full lifecycle: quiesce, drain,
// Recycle (segments home to the pool, flow credits rearmed), then push
// through the recycled queue again to prove the rearm took.
func (w *window) opRecycle() {
	lq := w.pick()
	w.syncPoint()
	w.drain(lq)
	if !lq.q.CanRecycle(w.f) {
		w.failf("recycle q%d: CanRecycle false after sync+drain", lq.id)
	}
	lq.q.Recycle(w.f)
	w.r.rep.Recycles++
	w.tag("recycle")
	vals := w.draw(1 + w.rng.Intn(4))
	pu := lq.q.BindPush(w.f)
	pu.PushSlice(vals)
	lq.model = append(lq.model, vals...)
	w.d8(vals...)
	w.logf("recycle q%d rearm=%d", lq.id, len(vals))
	w.r.rep.Pushed += int64(len(vals))
}

func (w *window) opReduce() {
	vals := w.draw(1 + w.rng.Intn(4))
	for _, v := range vals {
		w.redModel += v
	}
	red := w.red
	if w.rng.Intn(2) == 0 {
		h := red.BindReduce(w.f)
		for _, v := range vals {
			h.Add(v)
		}
		w.logf("reduce n=%d inline", len(vals))
	} else {
		w.f.Spawn(func(c *swan.Frame) {
			h := red.BindReduce(c)
			for _, v := range vals {
				h.Add(v)
			}
		}, swan.Reduce(red))
		w.logf("reduce n=%d child", len(vals))
	}
}

func (w *window) opHypermap() {
	k := 1 + w.rng.Intn(4)
	keys := make([]uint64, k)
	vals := w.draw(k)
	for i := range keys {
		// A small keyspace forces first-writer-wins collisions.
		keys[i] = w.rng.Uint64() % 64
	}
	// Serial model: puts apply in program order, first writer wins.
	for i := range keys {
		if _, ok := w.hmapW[keys[i]]; !ok {
			w.hmapW[keys[i]] = vals[i]
		}
	}
	hm := w.hmap
	if w.rng.Intn(2) == 0 {
		h := hm.BindMap(w.f)
		for i := range keys {
			h.Put(keys[i], vals[i])
		}
		w.logf("hypermap n=%d inline", k)
	} else {
		w.f.Spawn(func(c *swan.Frame) {
			h := hm.BindMap(c)
			for i := range keys {
				h.Put(keys[i], vals[i])
			}
		}, swan.MapWrite(hm))
		w.logf("hypermap n=%d child", k)
	}
}

// opHandoff exercises the blocking credit path the headroom clamp
// otherwise avoids: a self-contained bounded queue whose producer child
// pushes past the bound (blocking on credits) while a consumer child
// drains it.
func (w *window) opHandoff() {
	b := 1 + w.rng.Intn(4)
	k := 2*b + w.rng.Intn(b+1)
	vals := w.draw(k)
	got := make([]uint64, k)
	var chains uint64
	w.f.Call(func(c *swan.Frame) {
		q := swan.NewQueueWithCapacity[uint64](c, w.r.cfg.SegCap, swan.Bounded(b))
		c.Spawn(func(p *swan.Frame) {
			pu := q.BindPush(p)
			for _, v := range vals {
				pu.Push(v)
			}
		}, swan.Push(q))
		c.Spawn(func(p *swan.Frame) {
			po := q.BindPop(p)
			for i := range got {
				got[i] = po.Pop()
			}
		}, swan.Pop(q))
		c.Sync()
		chains = q.DebugChainSegments(c)
	})
	*w.retired += chains
	for i := range got {
		if got[i] != vals[i] {
			w.failf("handoff: value %d is %d, want %d", i, got[i], vals[i])
		}
	}
	w.d8(vals...)
	w.logf("handoff bound=%d n=%d", b, k)
	w.r.rep.Handoffs++
}

// opChaos kills one randomly chosen live mini-pipeline: a ScopedCall
// wedge canceled mid-flight, the same wedge poisoned through Queue.Fail,
// or a deterministic deadline/shed probe. Each variant ends at a
// quiesced point with its abandoned chain segments counted into the
// retired tally, so the pool audit stays exact across the abort.
func (w *window) opChaos() {
	switch w.rng.Intn(3) {
	case 0:
		w.opCancel()
	case 1:
		w.opPoison()
	default:
		w.opDeadline()
	}
	w.r.rep.Chaos++
}

// wedge builds the canonical cancellation target inside a fresh cancel
// sub-scope — a producer child credit-parked on bounded qa, a consumer
// child parked in Pop on empty qb (the producer's unreached Push
// privilege on qb keeps the emptiness undecided) — then kills it with
// kill and returns the ScopedCall error. How far the producer got before
// the kill is scheduling-dependent, so nothing the wedge transfers is
// folded into the digest; only the kill's error identity is checked.
func (w *window) wedge(kill func(c *swan.Frame, qa *swan.Queue[uint64])) error {
	b := 1 + w.rng.Intn(3)
	vals := w.draw(4 * (b + 1))
	var chains uint64
	err := w.f.ScopedCall(func(c *swan.Frame) {
		qa := swan.NewQueueWithCapacity[uint64](c, w.r.cfg.SegCap, swan.Bounded(b))
		qb := swan.NewQueueWithCapacity[uint64](c, w.r.cfg.SegCap)
		c.Spawn(func(p *swan.Frame) {
			pu := qa.BindPush(p)
			for _, v := range vals {
				pu.Push(v) // wedges on credits at b values: nothing pops qa
			}
			qb.Push(p, 1) // never reached
		}, swan.Push(qa), swan.Push(qb))
		c.Spawn(func(p *swan.Frame) {
			qb.Pop(p) // parks: the producer never reaches its qb push
		}, swan.Pop(qb))
		kill(c, qa)
		c.Sync()
		chains = qa.DebugChainSegments(c) + qb.DebugChainSegments(c)
	})
	*w.retired += chains
	return err
}

// opCancel cancels a wedged pipeline's scope: the credit-parked producer
// and the parked consumer must both unwind promptly, the sub-scope must
// quiesce without touching the window's own scope, and ScopedCall must
// report ErrCanceled.
func (w *window) opCancel() {
	err := w.wedge(func(c *swan.Frame, _ *swan.Queue[uint64]) {
		c.CancelScope().Cancel(nil)
	})
	if !errors.Is(err, swan.ErrCanceled) {
		w.failf("cancel wedge: ScopedCall error = %v, want ErrCanceled", err)
	}
	w.tag("cancel")
	w.logf("chaos cancel wedge")
}

// opPoison poisons the wedged pipeline's bounded queue instead: the
// credit-parked producer wakes with the failure, which cancels the
// sub-scope and frees the parked consumer; ScopedCall reports the
// poison error.
func (w *window) opPoison() {
	err := w.wedge(func(_ *swan.Frame, qa *swan.Queue[uint64]) {
		qa.Fail(nil)
	})
	if !errors.Is(err, swan.ErrQueueFailed) {
		w.failf("poison wedge: ScopedCall error = %v, want ErrQueueFailed", err)
	}
	w.tag("poison")
	w.logf("chaos poison wedge")
}

// opDeadline probes the shed and deadline surface with a fully
// deterministic script: TryPush against a full bound must refuse (a
// shed), PushTimeout against it must report ErrTimeout (another shed),
// PopTimeout must time out while the only producer is credit-parked
// elsewhere, then deliver every value once the credit cycle unblocks,
// and must report ErrEmpty once the queue's emptiness is settled.
func (w *window) opDeadline() {
	const short = 2 * time.Millisecond
	const long = 10 * time.Second // generous: reached only on a bug
	vs := w.draw(3)
	var chains uint64
	w.f.Call(func(c *swan.Frame) {
		qa := swan.NewQueueWithCapacity[uint64](c, w.r.cfg.SegCap, swan.Bounded(1))
		qb := swan.NewQueueWithCapacity[uint64](c, w.r.cfg.SegCap, swan.Bounded(1))
		pua := qa.BindPush(c)
		if !pua.TryPush(vs[0]) {
			w.failf("deadline: TryPush into an empty bounded queue refused")
		}
		if pua.TryPush(vs[0]) {
			w.failf("deadline: TryPush past the bound accepted")
		}
		if err := pua.PushTimeout(vs[0], short); !errors.Is(err, swan.ErrTimeout) {
			w.failf("deadline: PushTimeout on a full queue = %v, want ErrTimeout", err)
		}
		c.Spawn(func(p *swan.Frame) {
			qa.Push(p, vs[1]) // credit-parked until the root pops vs[0]
			qb.Push(p, vs[2])
		}, swan.Push(qa), swan.Push(qb))
		pob := qb.BindPop(c)
		if _, err := pob.PopTimeout(short); !errors.Is(err, swan.ErrTimeout) {
			w.failf("deadline: PopTimeout with a parked producer = %v, want ErrTimeout", err)
		}
		poa := qa.BindPop(c)
		for i, want := range []uint64{vs[0], vs[1]} {
			got, err := poa.PopTimeout(long)
			if err != nil || got != want {
				w.failf("deadline: qa value %d = %d (err %v), want %d", i, got, err, want)
			}
		}
		if got, err := pob.PopTimeout(long); err != nil || got != vs[2] {
			w.failf("deadline: qb value = %d (err %v), want %d", got, err, vs[2])
		}
		c.Sync()
		if _, err := poa.PopTimeout(short); !errors.Is(err, swan.ErrEmpty) {
			w.failf("deadline: PopTimeout on settled emptiness = %v, want ErrEmpty", err)
		}
		chains = qa.DebugChainSegments(c) + qb.DebugChainSegments(c)
	})
	*w.retired += chains
	w.d8(vs...)
	w.tag("deadline")
	w.logf("chaos deadline probe")
}

// opQcheck embeds one randomly generated qcheck program as a child of
// the window's root and checks it against its serial-elision oracle.
func (w *window) opQcheck() {
	seed := w.rng.Uint64()
	queues := 1 + w.rng.Intn(w.r.cfg.QcheckQueues)
	segCap := []int{1, 8, 64}[w.rng.Intn(3)]
	prog := qcheck.GenerateMulti(seed, queues)
	out := prog.RunOn(w.f, segCap)
	*w.retired += out.ChainSegments
	if !qcheck.Equal(out.Consumed, prog.Oracle) {
		w.failf("qcheck program seed=%d queues=%d segcap=%d diverged from its serial elision\n%s",
			seed, queues, segCap, prog.OpLog())
	}
	w.tag("qcheck")
	w.d8(seed, uint64(prog.Values))
	w.logf("qcheck seed=%d queues=%d segcap=%d values=%d", seed, queues, segCap, prog.Values)
	w.r.rep.Qchecks++
}

// opSharded runs one randomly generated sharded fan-out as a child of
// the window's root and checks the egress against the serial elision.
func (w *window) opSharded() {
	seed := w.rng.Uint64()
	sp := qcheck.GenerateSharded(seed)
	ok, chains := sp.RunOn(w.f)
	*w.retired += chains
	if !ok {
		w.failf("sharded program seed=%d values=%d shards=%d bound=%d segcap=%d diverged from its serial elision",
			seed, sp.Values, sp.Shards, sp.Bound, sp.SegCap)
	}
	w.tag("sharded")
	w.d8(seed, uint64(sp.Values), uint64(sp.Shards))
	w.logf("sharded seed=%d values=%d shards=%d bound=%d", seed, sp.Values, sp.Shards, sp.Bound)
	w.r.rep.Shardeds++
}

// opSweep syncs and walks the §4.4 invariants of every live queue.
func (w *window) opSweep() {
	w.syncPoint()
	for _, lq := range w.qs {
		if vs := lq.q.CheckInvariants(w.f); len(vs) > 0 {
			w.failf("invariant sweep q%d: %s", lq.id, vs[0].String())
		}
	}
	w.logf("sweep queues=%d", len(w.qs))
	w.r.rep.Sweeps++
}

// opAudit checks segment conservation exactly: every segment ever
// allocated is in the pool, dropped, retired with a dead queue, or in a
// live queue's chain. A leak (segment lost without being retired) or a
// double-recycle (pool gains a segment the equation doesn't source)
// breaks the balance at the next stripe.
func (w *window) opAudit() {
	w.syncPoint()
	var live uint64
	for _, lq := range w.qs {
		live += lq.q.DebugChainSegments(w.f)
	}
	allocs := w.prov.SegmentAllocs()
	pooled := uint64(w.prov.PooledSegments())
	dropped := w.prov.DroppedSegments()
	if allocs != pooled+dropped+*w.retired+live {
		w.failf("pool audit: allocs=%d but pooled=%d + dropped=%d + retired=%d + live=%d = %d",
			allocs, pooled, dropped, *w.retired, live,
			pooled+dropped+*w.retired+live)
	}
	w.logf("audit allocs=%d pooled=%d dropped=%d retired=%d live=%d",
		allocs, pooled, dropped, *w.retired, live)
	w.r.rep.Audits++
}

// opFault injects the deliberate bug. FaultValue plants a queue holding
// a value no model records; the window-end drain compare must catch it.
// FaultCancel cancels the window's root scope and immediately drives a
// blocking Pop into it: the pop must unwind (a canceled scope may not
// decide emptiness), Run must return the cancellation, and runWindow
// must convert that into a window failure — deterministically at this
// step.
func (w *window) opFault() {
	if w.r.opt.FaultKind == FaultCancel {
		w.logf("fault: window scope canceled")
		w.f.CancelScope().Cancel(nil)
		q := swan.NewQueueWithCapacity[uint64](w.f, w.r.cfg.SegCap)
		q.Pop(w.f) // unwinds with the cancellation
		w.failf("fault: blocking Pop on a canceled scope returned")
		return
	}
	q := swan.NewQueueWithCapacity[uint64](w.f, w.r.cfg.SegCap)
	q.Push(w.f, 0xfa017ed)
	w.nq++
	w.qs = append(w.qs, &liveQ{id: w.nq, q: q})
	w.logf("fault: unmodeled value injected on fresh q%d", w.nq)
}

// finish settles the window: quiesce, check the hyperobject oracles,
// sweep, drain and retire every queue, and run a closing audit with an
// empty working set — the strictest form of the balance equation.
func (w *window) finish() {
	w.syncPoint()
	if got := w.red.Value(w.f); got != w.redModel {
		w.failf("reducer fold: got %d, want %d", got, w.redModel)
	}
	w.d8(w.redModel)
	if got, want := w.hmap.Len(w.f), len(w.hmapW); got != want {
		w.failf("hypermap size: got %d keys, want %d", got, want)
	}
	keys := make([]uint64, 0, len(w.hmapW))
	for k := range w.hmapW {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		v, ok := w.hmap.Get(w.f, k)
		if !ok || v != w.hmapW[k] {
			w.failf("hypermap key %d: got %d (present=%v), want %d", k, v, ok, w.hmapW[k])
		}
		w.d8(k, v)
	}
	for _, lq := range w.qs {
		if vs := lq.q.CheckInvariants(w.f); len(vs) > 0 {
			w.failf("final sweep q%d: %s", lq.id, vs[0].String())
		}
		w.drain(lq)
		if w.rng.Intn(2) == 0 {
			// Recycle returns the whole chain to the pool; the recycled
			// queue keeps exactly one fresh segment, which dies with it.
			lq.q.Recycle(w.f)
			w.r.rep.Recycles++
			*w.retired++
		} else {
			*w.retired += lq.q.DebugChainSegments(w.f)
		}
	}
	w.qs = nil
	w.opAudit()
	w.r.rep.Sweeps++
}
