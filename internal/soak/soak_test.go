package soak

import (
	"strings"
	"testing"

	"repro/swan"
)

var policies = []struct {
	name string
	p    swan.SpawnPolicy
}{
	{"steal", swan.PolicySteal},
	{"goroutine", swan.PolicyGoroutine},
}

// TestSoakShort runs a bounded soak under both scheduling policies: no
// oracle may fire, and every op class the ci config stripes in must
// actually have run — a soak that silently skips its sweeps or audits
// proves nothing.
func TestSoakShort(t *testing.T) {
	steps := int64(24_000)
	if testing.Short() {
		// Still ≥ RebuildEveryWindows+1 windows of the ci config, so the
		// rebuild and replay stripes run at least once.
		steps = 10_000
	}
	cfg, ok := LookupConfig("ci")
	if !ok {
		t.Fatal("ci config missing")
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			r, err := New(cfg, Options{Workers: 4, Policy: pol.p})
			if err != nil {
				t.Fatal(err)
			}
			rep, fail := r.Run(0x50ac^uint64(len(pol.name)), steps)
			if fail != nil {
				t.Fatalf("soak failed:\n%s\nop log:\n%s", fail.FailLine(), fail.OpLog)
			}
			if rep.Steps != steps {
				t.Fatalf("ran %d steps, want %d", rep.Steps, steps)
			}
			for name, n := range map[string]int64{
				"sweeps":   rep.Sweeps,
				"audits":   rep.Audits,
				"recycles": rep.Recycles,
				"qchecks":  rep.Qchecks,
				"shardeds": rep.Shardeds,
				"handoffs": rep.Handoffs,
				"rebuilds": rep.Rebuilds,
				"replays":  rep.Replays,
			} {
				if n == 0 {
					t.Errorf("op class %s never ran", name)
				}
			}
			if rep.Pushed != rep.Popped {
				t.Errorf("pushed %d values but popped %d — windows must end drained",
					rep.Pushed, rep.Popped)
			}
		})
	}
}

// TestInjectedFaultDetected is the harness's negative control: a
// model-invisible value injected mid-run must produce a failure, and
// the failure's replay recipe (wseed, window length, in-window fault
// step) must reproduce the identical report — under the same policy,
// under the other policy, and at a different worker count.
func TestInjectedFaultDetected(t *testing.T) {
	cfg, _ := LookupConfig("ci")
	r, err := New(cfg, Options{Workers: 4, Policy: swan.PolicySteal, FaultStep: 4321})
	if err != nil {
		t.Fatal(err)
	}
	_, fail := r.Run(3, 9000)
	if fail == nil {
		t.Fatal("injected fault was not detected")
	}
	if fail.Fault == 0 {
		t.Fatalf("failure does not carry the fault step: %+v", fail)
	}
	if !strings.Contains(fail.FailLine(), "-fault") {
		t.Fatalf("FAIL line lacks the -fault replay flag:\n%s", fail.FailLine())
	}
	for _, pol := range policies {
		for _, workers := range []int{2, 7} {
			r2, err := New(cfg, Options{Workers: workers, Policy: pol.p, FaultStep: fail.Fault})
			if err != nil {
				t.Fatal(err)
			}
			_, fail2 := r2.Run(fail.WSeed, fail.Steps)
			if fail2 == nil {
				t.Fatalf("replay (%s, %d workers) did not reproduce the failure", pol.name, workers)
			}
			if fail2.Msg != fail.Msg || fail2.Step != fail.Step-(fail.Window*int64(cfg.OpsPerWindow)) {
				t.Fatalf("replay (%s, %d workers) diverged:\noriginal: step=%d %s\nreplay:   step=%d %s",
					pol.name, workers, fail.Step, fail.Msg, fail2.Step, fail2.Msg)
			}
		}
	}
}

// TestWindowDigestScheduleIndependent pins the replay-window oracle
// itself: the digest folds every value every oracle observed, so it must
// be bit-identical across policies and worker counts — the paper's
// determinism claim applied to the fuzzer's whole op mix.
func TestWindowDigestScheduleIndependent(t *testing.T) {
	cfg, _ := LookupConfig("ci")
	steps := int64(cfg.OpsPerWindow)
	var ref [32]byte
	for i, opt := range []Options{
		{Workers: 1, Policy: swan.PolicySteal},
		{Workers: 8, Policy: swan.PolicySteal},
		{Workers: 4, Policy: swan.PolicyGoroutine},
	} {
		d, fail := WindowDigest(cfg, opt, 42, steps)
		if fail != nil {
			t.Fatalf("window failed under %+v: %s", opt, fail.Msg)
		}
		if i == 0 {
			ref = d
			continue
		}
		if d != ref {
			t.Fatalf("digest diverged under %+v: %x vs %x", opt, d, ref)
		}
	}
}

func TestConfigPresets(t *testing.T) {
	names := ConfigNames()
	if len(names) < 3 {
		t.Fatalf("want at least ci/default/heavy presets, have %v", names)
	}
	for _, name := range names {
		cfg, ok := LookupConfig(name)
		if !ok {
			t.Fatalf("ConfigNames lists %q but LookupConfig misses it", name)
		}
		if err := cfg.validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, ok := LookupConfig("no-such-config"); ok {
		t.Error("LookupConfig accepted an unknown name")
	}
	bad := Config{Name: "bad", OpsPerWindow: 100, SegCap: 4, MaxQueues: 2,
		MaxBurst: 8, Bounds: []int{3}}
	if err := bad.validate(); err == nil {
		t.Error("validate accepted a bound of 3 (rearm pushes up to 4 values)")
	}
	if _, err := New(bad, Options{}); err == nil {
		t.Error("New accepted an invalid config")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range policies {
		p, err := ParsePolicy(pol.name)
		if err != nil || p != pol.p {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.name, p, err)
		}
		if PolicyName(pol.p) != pol.name {
			t.Errorf("PolicyName(%v) = %q, want %q", pol.p, PolicyName(pol.p), pol.name)
		}
	}
	if _, err := ParsePolicy("fibers"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}
