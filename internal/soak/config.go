package soak

import (
	"fmt"
	"sort"
	"strings"
)

// Config parameterizes one soak run. The stripe knobs follow the
// every-N-steps discipline of block-chain state fuzzers: each expensive
// op class (embedded quickcheck programs, sharded fan-outs, invariant
// sweeps, pool audits) fires on its own stride, so a long run interleaves
// them against the cheap per-step lifecycle churn without any class
// starving the others. Strides are chosen co-prime-ish so the classes
// drift through each other rather than always coinciding.
//
// A Config is part of the replay identity: a failure is reproduced by
// (config name, policy, window seed, window length, fault step), so the
// presets registered here must never change semantics under an existing
// name — add a new name instead.
type Config struct {
	Name string

	// OpsPerWindow is the stepper length of one window — the unit of
	// replay. Each window runs as one Runtime.Run with a self-contained
	// op sequence derived from wseed = seed + windowIndex, ends fully
	// drained and audited, and its sha256 digest is the determinism
	// oracle: re-executing the window from wseed must reproduce the
	// digest bit-for-bit.
	OpsPerWindow int

	// SegCap is the hyperqueue segment capacity of the live working-set
	// queues. Small values churn the segment pool harder.
	SegCap int
	// MaxQueues caps the live-queue working set per window.
	MaxQueues int
	// MaxBurst caps the values moved by one push/pop burst.
	MaxBurst int
	// Bounds are the candidate swan.Bounded budgets for new live queues
	// (0 = unbounded). The stepper clamps bursts to the remaining credit
	// budget, so any bound >= 5 is safe (the post-Recycle rearm pushes
	// up to 4 values without a clamp).
	Bounds []int

	// Stripe knobs: the op class fires every N steps; 0 disables it.
	SweepEvery   int // invariant sweep (§4.4 walk over every live queue)
	AuditEvery   int // pool-accounting audit (segment balance equation)
	QcheckEvery  int // one embedded qcheck.GenerateMulti program
	QcheckQueues int // queue count for embedded qcheck programs
	ShardedEvery int // one qcheck.GenerateSharded fan-out
	HandoffEvery int // one bounded handoff (producer blocks on credits)
	ChaosEvery   int // one chaos kill (canceled wedge, poisoned wedge, or deadline/shed probe)

	// Window-granularity knobs.
	RebuildEveryWindows int // tear down and rebuild the runtime (pools carried over)
	ReplayEveryWindows  int // re-execute the window and compare digests
}

// presets are the registered configurations. "ci" is sized for the PR
// gate (small windows, frequent sweeps), "default" for interactive runs,
// "heavy" for the nightly and multi-hour `make soak` (long windows,
// tiny segments, big bursts — maximum pool churn), and "chaos" layers
// the kill stripe — canceled wedges, poisoned queues, deadline/shed
// probes — over the ci geometry. Existing names keep their exact
// semantics (replay identity); chaos is a new name, not a change to ci.
var presets = []Config{
	{
		Name:         "ci",
		OpsPerWindow: 2000,
		SegCap:       16,
		MaxQueues:    5,
		MaxBurst:     32,
		Bounds:       []int{0, 0, 7, 64, 256},
		SweepEvery:   200,
		AuditEvery:   400,
		QcheckEvery:  700,
		QcheckQueues: 2,
		ShardedEvery: 1500,
		HandoffEvery: 500,

		RebuildEveryWindows: 4,
		ReplayEveryWindows:  4,
	},
	{
		Name:         "chaos",
		OpsPerWindow: 2000,
		SegCap:       16,
		MaxQueues:    5,
		MaxBurst:     32,
		Bounds:       []int{0, 0, 7, 64, 256},
		SweepEvery:   200,
		AuditEvery:   300,
		QcheckEvery:  700,
		QcheckQueues: 2,
		ShardedEvery: 1500,
		HandoffEvery: 500,
		ChaosEvery:   90,

		RebuildEveryWindows: 4,
		ReplayEveryWindows:  3,
	},
	{
		Name:         "default",
		OpsPerWindow: 4000,
		SegCap:       32,
		MaxQueues:    6,
		MaxBurst:     48,
		Bounds:       []int{0, 0, 7, 64, 256},
		SweepEvery:   250,
		AuditEvery:   500,
		QcheckEvery:  900,
		QcheckQueues: 3,
		ShardedEvery: 1700,
		HandoffEvery: 700,

		RebuildEveryWindows: 8,
		ReplayEveryWindows:  5,
	},
	{
		Name:         "heavy",
		OpsPerWindow: 20000,
		SegCap:       8,
		MaxQueues:    8,
		MaxBurst:     128,
		Bounds:       []int{0, 0, 7, 64, 1024},
		SweepEvery:   500,
		AuditEvery:   1000,
		QcheckEvery:  1500,
		QcheckQueues: 3,
		ShardedEvery: 3000,
		HandoffEvery: 900,

		RebuildEveryWindows: 6,
		ReplayEveryWindows:  7,
	},
}

// LookupConfig returns the preset registered under name.
func LookupConfig(name string) (Config, bool) {
	for _, c := range presets {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// ConfigNames lists the registered preset names, sorted.
func ConfigNames() []string {
	names := make([]string, len(presets))
	for i, c := range presets {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// validate rejects geometries the stepper cannot drive safely.
func (c *Config) validate() error {
	var bad []string
	if c.OpsPerWindow < 1 {
		bad = append(bad, "OpsPerWindow must be >= 1")
	}
	if c.SegCap < 1 {
		bad = append(bad, "SegCap must be >= 1")
	}
	if c.MaxQueues < 1 {
		bad = append(bad, "MaxQueues must be >= 1")
	}
	if c.MaxBurst < 1 {
		bad = append(bad, "MaxBurst must be >= 1")
	}
	if len(c.Bounds) == 0 {
		bad = append(bad, "Bounds must list at least one candidate")
	}
	for _, b := range c.Bounds {
		// The post-Recycle rearm pushes up to 4 values without a clamp.
		if b != 0 && b < 5 {
			bad = append(bad, fmt.Sprintf("bound %d too tight (need 0 or >= 5)", b))
		}
	}
	if c.QcheckEvery > 0 && c.QcheckQueues < 1 {
		bad = append(bad, "QcheckQueues must be >= 1 when QcheckEvery is set")
	}
	if len(bad) > 0 {
		return fmt.Errorf("soak config %q: %s", c.Name, strings.Join(bad, "; "))
	}
	return nil
}
