// Package stats provides the small descriptive-statistics toolkit the
// benchmark harness uses to report measurements honestly: minimum (the
// steady-state estimate the tables use), mean, standard deviation and a
// normal-approximation confidence half-width.
package stats

import "math"

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// RelStdDev returns the coefficient of variation (stddev/mean), or 0
// when the mean is zero.
func (s *Sample) RelStdDev() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}
