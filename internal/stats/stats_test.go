package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func sample(xs ...float64) *Sample {
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSingleObservation(t *testing.T) {
	s := sample(42)
	if s.Min() != 42 || s.Max() != 42 || s.Mean() != 42 {
		t.Fatal("single observation stats wrong")
	}
	if s.StdDev() != 0 || s.CI95() != 0 {
		t.Fatal("dispersion of one observation must be 0")
	}
}

func TestKnownValues(t *testing.T) {
	s := sample(2, 4, 4, 4, 5, 5, 7, 9)
	if !almost(s.Mean(), 5) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almost(s.StdDev(), want) {
		t.Fatalf("stddev = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatal("min/max wrong")
	}
}

func TestRelStdDev(t *testing.T) {
	s := sample(10, 10, 10)
	if s.RelStdDev() != 0 {
		t.Fatal("constant sample must have zero relative stddev")
	}
	z := sample(-1, 1)
	if z.RelStdDev() != 0 {
		t.Fatal("zero-mean guard failed")
	}
}

func TestQuickMinLEMeanLEMax(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		var s Sample
		for i := 0; i < int(n%50)+1; i++ {
			s.Add(r.Float64()*100 - 50)
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStdDevNonNegative(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		var s Sample
		for i := 0; i < int(n%20)+2; i++ {
			s.Add(r.NormFloat64())
		}
		return s.StdDev() >= 0 && s.CI95() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rng.New(5)
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(r.NormFloat64())
	}
	r = rng.New(5)
	for i := 0; i < 1000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: n=10 %v vs n=1000 %v", small.CI95(), large.CI95())
	}
}
