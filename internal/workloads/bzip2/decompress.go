package bzip2

import (
	"encoding/binary"

	"repro/swan"
)

// RunDecompressHyperqueue decompresses a stream produced by any of the
// Run* compressors using the same 3-stage hyperqueue pipeline in
// reverse: a serial task splits the stream into framed blocks, a
// dispatcher spawns one decompression task per block (order restored by
// the queue's reduction semantics), and a serial task concatenates the
// output. This is the extension the paper's pipeline structure makes
// free: the decompressor is the same program shape with the stage
// bodies swapped.
func RunDecompressHyperqueue(rt *swan.Runtime, stream []byte, segCap int) ([]byte, error) {
	var out []byte
	var firstErr error
	rt.Run(func(f *swan.Frame) {
		type decoded struct {
			data []byte
			err  error
		}
		outQ := swan.NewQueueWithCapacity[decoded](f, segCap)
		f.Spawn(func(mid *swan.Frame) {
			blkQ := swan.NewQueueWithCapacity[[]byte](mid, segCap)
			mid.Spawn(func(c *swan.Frame) { // serial framing stage
				p := stream
				for len(p) > 0 {
					n, k := binary.Uvarint(p)
					if k <= 0 || uint64(len(p)-k) < n {
						blkQ.Push(c, nil) // framing error marker
						return
					}
					blkQ.Push(c, p[k:uint64(k)+n])
					p = p[uint64(k)+n:]
				}
			}, swan.Push(blkQ))
			mid.Spawn(func(c *swan.Frame) { // parallel block decode
				for !blkQ.Empty(c) {
					blk := blkQ.Pop(c)
					c.Spawn(func(g *swan.Frame) {
						if blk == nil {
							outQ.Push(g, decoded{err: errInvalidStream})
							return
						}
						d, err := DecompressBlock(blk)
						outQ.Push(g, decoded{data: d, err: err})
					}, swan.Push(outQ))
				}
			}, swan.Pop(blkQ), swan.Push(outQ))
		}, swan.Push(outQ))
		f.Spawn(func(c *swan.Frame) { // serial concatenation stage
			for !outQ.Empty(c) {
				d := outQ.Pop(c)
				if d.err != nil && firstErr == nil {
					firstErr = d.err
				}
				out = append(out, d.data...)
			}
		}, swan.Pop(outQ))
		f.Sync()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
