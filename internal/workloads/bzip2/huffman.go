package bzip2

import (
	"container/heap"
	"errors"
	"sort"
)

// maxCodeLen caps canonical Huffman code lengths so length bytes always
// fit comfortably and decode tables stay small.
const maxCodeLen = 31

// huffNode is a tree node for code-length derivation.
type huffNode struct {
	freq        int64
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int           { return len(h) }
func (h huffHeap) Less(i, j int) bool { return h[i].freq < h[j].freq }
func (h huffHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)        { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any          { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }

// codeLengths computes Huffman code lengths for the 256 byte symbols from
// their frequencies. Symbols with zero frequency get length 0 (no code).
func codeLengths(freq *[256]int64) [256]uint8 {
	var lengths [256]uint8
	h := huffHeap{}
	for s, f := range freq {
		if f > 0 {
			h = append(h, &huffNode{freq: f, sym: s})
		}
	}
	if len(h) == 0 {
		return lengths
	}
	if len(h) == 1 {
		lengths[h[0].sym] = 1
		return lengths
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			if depth > maxCodeLen {
				// Unreachable for block sizes under ~1.3 MB (a depth-32
				// Huffman code needs Fibonacci-skewed frequencies summing
				// past 2^21); Compress caps blocks well below that.
				panic("bzip2: Huffman code length overflow")
			}
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h[0], 0)
	return lengths
}

// canonicalCodes assigns canonical codes from lengths: codes are ordered
// by (length, symbol), so the lengths alone reconstruct the codebook.
func canonicalCodes(lengths *[256]uint8) (codes [256]uint32) {
	type sl struct {
		sym int
		len uint8
	}
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].len != syms[j].len {
			return syms[i].len < syms[j].len
		}
		return syms[i].sym < syms[j].sym
	})
	code := uint32(0)
	prevLen := uint8(0)
	for _, e := range syms {
		code <<= (e.len - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.len
	}
	return codes
}

// bitWriter packs bits most-significant-first.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nbit uint
}

func (w *bitWriter) writeBits(code uint32, n uint8) {
	w.cur = (w.cur << n) | uint64(code)
	w.nbit += uint(n)
	for w.nbit >= 8 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit))
	}
}

func (w *bitWriter) flush() {
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.nbit = 0
	}
	w.cur = 0
}

// bitReader unpacks bits most-significant-first.
type bitReader struct {
	buf  []byte
	pos  int
	cur  uint64
	nbit uint
}

func (r *bitReader) readBit() (uint32, error) {
	if r.nbit == 0 {
		if r.pos >= len(r.buf) {
			return 0, errors.New("bzip2: bitstream exhausted")
		}
		r.cur = uint64(r.buf[r.pos])
		r.pos++
		r.nbit = 8
	}
	r.nbit--
	return uint32(r.cur>>r.nbit) & 1, nil
}

// huffEncode encodes s with canonical Huffman coding; the 256 code
// lengths plus the bit count fully describe the stream.
func huffEncode(s []byte) (lengths [256]uint8, nbits uint64, data []byte) {
	var freq [256]int64
	for _, c := range s {
		freq[c]++
	}
	lengths = codeLengths(&freq)
	codes := canonicalCodes(&lengths)
	w := bitWriter{buf: make([]byte, 0, len(s)/2+16)}
	for _, c := range s {
		w.writeBits(codes[c], lengths[c])
		nbits += uint64(lengths[c])
	}
	w.flush()
	return lengths, nbits, w.buf
}

// huffDecode decodes n symbols from data given the canonical code
// lengths.
func huffDecode(lengths *[256]uint8, data []byte, n int) ([]byte, error) {
	// Build a decode map from (length, code) to symbol.
	type lc struct {
		len  uint8
		code uint32
	}
	codes := canonicalCodes(lengths)
	dec := make(map[lc]byte)
	for s := 0; s < 256; s++ {
		if lengths[s] > 0 {
			dec[lc{lengths[s], codes[s]}] = byte(s)
		}
	}
	out := make([]byte, 0, n)
	r := bitReader{buf: data}
	for len(out) < n {
		var code uint32
		var l uint8
		for {
			b, err := r.readBit()
			if err != nil {
				return nil, err
			}
			code = code<<1 | b
			l++
			if sym, ok := dec[lc{l, code}]; ok {
				out = append(out, sym)
				break
			}
			if l > maxCodeLen {
				return nil, errors.New("bzip2: invalid Huffman code")
			}
		}
	}
	return out, nil
}
