package bzip2

// mtf applies move-to-front coding: each byte is replaced by its current
// index in a self-organizing symbol list, turning the BWT's local symbol
// clustering into runs of small values.
func mtf(s []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(s))
	for i, c := range s {
		var j int
		for table[j] != c {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = c
	}
	return out
}

// unmtf inverts move-to-front coding.
func unmtf(s []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(s))
	for i, j := range s {
		c := table[j]
		out[i] = c
		copy(table[1:int(j)+1], table[:j])
		table[0] = c
	}
	return out
}

// rleThreshold is the run length at which run-length encoding switches to
// an explicit count byte, as in classic bzip2 RLE.
const rleThreshold = 4

// rle run-length encodes s: runs of rleThreshold identical bytes are
// emitted literally and followed by one count byte holding the number of
// additional repetitions (0–255). Longer runs repeat the pattern.
func rle(s []byte) []byte {
	out := make([]byte, 0, len(s)/2+16)
	for i := 0; i < len(s); {
		c := s[i]
		j := i
		for j < len(s) && s[j] == c && j-i < rleThreshold+255 {
			j++
		}
		n := j - i
		if n < rleThreshold {
			for k := 0; k < n; k++ {
				out = append(out, c)
			}
		} else {
			for k := 0; k < rleThreshold; k++ {
				out = append(out, c)
			}
			out = append(out, byte(n-rleThreshold))
		}
		i = j
	}
	return out
}

// unrle inverts rle.
func unrle(s []byte) []byte {
	out := make([]byte, 0, len(s)*2)
	run := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		out = append(out, c)
		if run > 0 && c == out[len(out)-2] {
			run++
		} else {
			run = 1
		}
		if run == rleThreshold {
			if i+1 >= len(s) {
				break // malformed tail; tolerate for robustness
			}
			i++
			for k := 0; k < int(s[i]); k++ {
				out = append(out, c)
			}
			run = 0
		}
	}
	return out
}
