// Package bzip2 implements a from-scratch block-sorting compressor with
// the same stage structure as the bzip2 utility the paper benchmarks in
// §6.3: Burrows–Wheeler transform, move-to-front, run-length and Huffman
// coding, applied block by block. The compressor is the parallel stage of
// a 3-stage pipeline whose first (read) and last (write) stages are
// serial, exactly the shape the paper exploits.
//
// The codec is complete — Decompress inverts Compress bit-exactly — so
// the benchmark's work is real, not simulated.
package bzip2

import "sort"

// bwtSort computes the Burrows–Wheeler transform of s over its cyclic
// rotations, returning the transformed bytes and the index of the
// original string in the sorted rotation order (needed for inversion).
//
// Rotation sorting uses prefix doubling (Manber–Myers) in O(n log² n):
// ranks double in compared length each round until all rotations are
// distinguished.
func bwtSort(s []byte) (out []byte, primary int) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	sa := make([]int, n)
	rank := make([]int, n)
	tmp := make([]int, n)
	for i := 0; i < n; i++ {
		sa[i] = i
		rank[i] = int(s[i])
	}
	for k := 1; ; k *= 2 {
		cmp := func(a, b int) bool {
			if rank[a] != rank[b] {
				return rank[a] < rank[b]
			}
			ra, rb := rank[(a+k)%n], rank[(b+k)%n]
			return ra < rb
		}
		sort.Slice(sa, func(i, j int) bool { return cmp(sa[i], sa[j]) })
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			tmp[sa[i]] = tmp[sa[i-1]]
			if cmp(sa[i-1], sa[i]) {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if rank[sa[n-1]] == n-1 || k >= n {
			// All rotations distinguished, or the input is periodic
			// (identical rotations can never be distinguished; any
			// consistent tie order yields a correct, invertible BWT).
			break
		}
	}
	out = make([]byte, n)
	for i, r := range sa {
		out[i] = s[(r+n-1)%n]
		if r == 0 {
			primary = i
		}
	}
	return out, primary
}

// unbwt inverts the Burrows–Wheeler transform using the standard LF
// mapping.
func unbwt(l []byte, primary int) []byte {
	n := len(l)
	if n == 0 {
		return nil
	}
	var counts [256]int
	for _, c := range l {
		counts[c]++
	}
	// first[c] = index in F (sorted column) of the first occurrence of c.
	var first [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		first[c] = sum
		sum += counts[c]
	}
	// next[i]: position in L of the predecessor row.
	next := make([]int, n)
	var seen [256]int
	for i, c := range l {
		next[first[c]+seen[c]] = i
		seen[c]++
	}
	out := make([]byte, n)
	p := next[primary]
	for i := 0; i < n; i++ {
		out[i] = l[p]
		p = next[p]
	}
	return out
}
