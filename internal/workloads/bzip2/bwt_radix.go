package bzip2

// bwt computes the Burrows–Wheeler transform with the O(n log n)
// cyclic-shift suffix-array algorithm (prefix doubling with stable
// counting sort). This is the production path used by CompressBlock;
// bwtSort (comparison-based doubling) is retained as a cross-check and
// for the ablation benchmark.
func bwt(s []byte) (out []byte, primary int) {
	n := len(s)
	if n == 0 {
		return nil, 0
	}
	p := make([]int, n)  // rotation indices in sorted order
	c := make([]int, n)  // equivalence class (rank) of each rotation
	pn := make([]int, n) // scratch: order by second key
	cn := make([]int, n) // scratch: next classes
	alpha := 256
	if n > alpha {
		alpha = n
	}
	cnt := make([]int, alpha+1)

	// Round 0: counting sort by first byte.
	for i := 0; i < n; i++ {
		cnt[int(s[i])+1]++
	}
	for i := 1; i <= 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := 0; i < n; i++ {
		p[cnt[s[i]]] = i
		cnt[s[i]]++
	}
	classes := 1
	c[p[0]] = 0
	for i := 1; i < n; i++ {
		if s[p[i]] != s[p[i-1]] {
			classes++
		}
		c[p[i]] = classes - 1
	}

	for k := 1; k < n && classes < n; k *= 2 {
		// Order by second key: rotation starting at p[i]-k has its second
		// half already sorted by the current p.
		for i := 0; i < n; i++ {
			pn[i] = p[i] - k
			if pn[i] < 0 {
				pn[i] += n
			}
		}
		// Stable counting sort by first key (current class).
		for i := 0; i <= classes; i++ {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[c[pn[i]]+1]++
		}
		for i := 1; i <= classes; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := 0; i < n; i++ {
			p[cnt[c[pn[i]]]] = pn[i]
			cnt[c[pn[i]]]++
		}
		// Recompute classes over (c[i], c[i+k]).
		classes = 1
		cn[p[0]] = 0
		for i := 1; i < n; i++ {
			cur := [2]int{c[p[i]], c[(p[i]+k)%n]}
			prev := [2]int{c[p[i-1]], c[(p[i-1]+k)%n]}
			if cur != prev {
				classes++
			}
			cn[p[i]] = classes - 1
		}
		c, cn = cn, c
	}

	out = make([]byte, n)
	for i, r := range p {
		out[i] = s[(r+n-1)%n]
		if r == 0 {
			primary = i
		}
	}
	return out, primary
}
