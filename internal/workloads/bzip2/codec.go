package bzip2

import (
	"encoding/binary"
	"errors"
)

// MaxBlockSize is the largest block CompressBlock accepts (cf. bzip2's
// 900 kB blocks); it also keeps Huffman code lengths within bounds.
const MaxBlockSize = 900 * 1024

// DefaultBlockSize is the block size used by the pipeline when the
// caller does not specify one.
const DefaultBlockSize = 128 * 1024

// CompressBlock compresses one block: BWT → MTF → RLE → canonical
// Huffman. The output is self-contained and decodable by DecompressBlock.
func CompressBlock(block []byte) []byte {
	if len(block) > MaxBlockSize {
		panic("bzip2: block exceeds MaxBlockSize")
	}
	if len(block) == 0 {
		return []byte{0}
	}
	b, primary := bwt(block)
	m := mtf(b)
	r := rle(m)
	lengths, nbits, data := huffEncode(r)

	out := make([]byte, 0, len(data)+300)
	out = append(out, 1) // version/format marker
	out = binary.AppendUvarint(out, uint64(len(block)))
	out = binary.AppendUvarint(out, uint64(primary))
	out = binary.AppendUvarint(out, uint64(len(r)))
	out = binary.AppendUvarint(out, nbits)
	out = append(out, lengths[:]...)
	out = append(out, data...)
	return out
}

// DecompressBlock inverts CompressBlock.
func DecompressBlock(enc []byte) ([]byte, error) {
	if len(enc) == 0 {
		return nil, errors.New("bzip2: empty block")
	}
	if enc[0] == 0 {
		return nil, nil
	}
	if enc[0] != 1 {
		return nil, errors.New("bzip2: unknown block format")
	}
	p := enc[1:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errors.New("bzip2: truncated header")
		}
		p = p[n:]
		return v, nil
	}
	origLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	primary, err := readUvarint()
	if err != nil {
		return nil, err
	}
	rleLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if _, err = readUvarint(); err != nil { // nbits, implied by rleLen
		return nil, err
	}
	if len(p) < 256 {
		return nil, errors.New("bzip2: truncated length table")
	}
	var lengths [256]uint8
	copy(lengths[:], p[:256])
	p = p[256:]

	r, err := huffDecode(&lengths, p, int(rleLen))
	if err != nil {
		return nil, err
	}
	m := unrle(r)
	b := unmtf(m)
	out := unbwt(b, int(primary))
	if uint64(len(out)) != origLen {
		return nil, errors.New("bzip2: length mismatch after decode")
	}
	return out, nil
}

// SplitBlocks cuts data into blocks of at most blockSize bytes.
func SplitBlocks(data []byte, blockSize int) [][]byte {
	if blockSize < 1 {
		blockSize = DefaultBlockSize
	}
	if blockSize > MaxBlockSize {
		blockSize = MaxBlockSize
	}
	var blocks [][]byte
	for len(data) > 0 {
		n := blockSize
		if n > len(data) {
			n = len(data)
		}
		blocks = append(blocks, data[:n])
		data = data[n:]
	}
	return blocks
}
