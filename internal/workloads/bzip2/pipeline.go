package bzip2

import (
	"encoding/binary"

	"repro/internal/rng"
	"repro/swan"
)

// GenerateInput synthesizes compressible, deterministic input text of
// roughly the requested size: words drawn from a small vocabulary with a
// skewed distribution, so BWT/MTF/Huffman all have realistic work.
func GenerateInput(seed uint64, size int) []byte {
	r := rng.New(seed)
	vocab := make([][]byte, 64)
	for i := range vocab {
		w := make([]byte, 3+r.Intn(8))
		for j := range w {
			w[j] = byte('a' + r.Intn(26))
		}
		vocab[i] = w
	}
	out := make([]byte, 0, size+16)
	for len(out) < size {
		// Skewed choice: low indices much more likely.
		idx := r.Intn(8) * r.Intn(8)
		out = append(out, vocab[idx]...)
		out = append(out, ' ')
	}
	return out[:size]
}

// appendRecord frames one compressed block into the output stream.
func appendRecord(out, block []byte) []byte {
	out = binary.AppendUvarint(out, uint64(len(block)))
	return append(out, block...)
}

// DecompressStream inverts any of the Run* pipelines' output.
func DecompressStream(stream []byte) ([]byte, error) {
	var out []byte
	for len(stream) > 0 {
		n, k := binary.Uvarint(stream)
		if k <= 0 {
			return nil, errInvalidStream
		}
		stream = stream[k:]
		blk, err := DecompressBlock(stream[:n])
		if err != nil {
			return nil, err
		}
		stream = stream[n:]
		out = append(out, blk...)
	}
	return out, nil
}

var errInvalidStream = errorString("bzip2: invalid stream framing")

type errorString string

func (e errorString) Error() string { return string(e) }

// RunSerial is the reference implementation: the serial elision of every
// parallel variant below.
func RunSerial(data []byte, blockSize int) []byte {
	var out []byte
	for _, blk := range SplitBlocks(data, blockSize) {
		out = appendRecord(out, CompressBlock(blk))
	}
	return out
}

// RunObjects is the task-dataflow version (paper [7], §6.3 baseline):
// one outdep compress task per block, serialized writes through an
// inoutdep on the output buffer. The read stage is the spawning loop
// itself — it cannot overlap with compression the way a queue allows,
// but compression tasks run fully parallel.
func RunObjects(rt *swan.Runtime, data []byte, blockSize int) []byte {
	var out []byte
	rt.Run(func(f *swan.Frame) {
		sink := swan.NewVersioned[[]byte](nil)
		for _, blk := range SplitBlocks(data, blockSize) {
			blk := blk
			enc := swan.NewVersioned[[]byte](nil)
			f.Spawn(func(c *swan.Frame) {
				enc.Set(c, CompressBlock(blk))
			}, swan.Out(enc))
			f.Spawn(func(c *swan.Frame) {
				sink.Set(c, appendRecord(sink.Get(c), enc.Get(c)))
			}, swan.In(enc), swan.InOut(sink))
		}
		f.Sync()
		out = sink.Get(f)
	})
	return out
}

// RunHyperqueue is the paper's first bzip2 hyperqueue implementation
// (§6.3): one task per stage connected by two hyperqueues; the middle
// stage spawns a compression task per popped block, passing the output
// queue's push privilege so block order is restored by the reduction
// properties.
func RunHyperqueue(rt *swan.Runtime, data []byte, blockSize, segCap int) []byte {
	return runHyperqueue(rt, data, blockSize, segCap, 0)
}

// RunHyperqueueBounded is RunHyperqueue with a bounded block queue: the
// splitter stage is a single in-order producer, so swan.Bounded safely
// caps how far it can run ahead of the dispatcher — the flow-control
// alternative to the §5.4 loop-split for bounding memory. The output
// queue stays unbounded (its producers are the concurrently spawned
// compression tasks, which complete out of serial order) but is Named,
// so both stages appear in the runtime's queue metrics.
func RunHyperqueueBounded(rt *swan.Runtime, data []byte, blockSize, segCap, bound int) []byte {
	if bound < 1 {
		bound = 64
	}
	return runHyperqueue(rt, data, blockSize, segCap, bound)
}

func runHyperqueue(rt *swan.Runtime, data []byte, blockSize, segCap, bound int) []byte {
	q1opts := []swan.QueueOption{swan.Named("bzip2.blocks")}
	if bound > 0 {
		q1opts = append(q1opts, swan.Bounded(bound))
	}
	var out []byte
	rt.Run(func(f *swan.Frame) {
		q2 := swan.NewQueueWithCapacity[[]byte](f, segCap, swan.Named("bzip2.compressed"))
		f.Spawn(func(s12 *swan.Frame) {
			q1 := swan.NewQueueWithCapacity[[]byte](s12, segCap, q1opts...)
			s12.Spawn(func(c *swan.Frame) {
				pw := q1.BindPush(c)
				pw.PushSlice(SplitBlocks(data, blockSize))
			}, swan.Push(q1))
			s12.Spawn(func(c *swan.Frame) {
				pp := q1.BindPop(c)
				for !pp.Empty() {
					blk := pp.Pop()
					c.Spawn(func(g *swan.Frame) {
						q2.Push(g, CompressBlock(blk))
					}, swan.Push(q2))
				}
			}, swan.Pop(q1), swan.Push(q2))
			s12.Sync()
			if q1.CanRecycle(s12) {
				q1.Recycle(s12) // drained: segments back to the runtime pool
			}
		}, swan.Push(q2))
		f.Spawn(func(c *swan.Frame) {
			pp := q2.BindPop(c)
			for !pp.Empty() {
				out = appendRecord(out, pp.Pop())
			}
		}, swan.Pop(q2))
		f.Sync()
		if q2.CanRecycle(f) {
			q2.Recycle(f)
		}
	})
	return out
}

// RunHyperqueueLoopSplit applies the §5.4 queue-loop-split idiom: the
// block loop is hoisted out of the producer task so that at most
// batch blocks are queued per round, bounding memory growth when the
// program executes serially while keeping the same parallelism. Each
// round is one bulk transfer end to end: the producer publishes its
// blocks with a single PushSlice (one wake-up probe per round), the
// round's dispatch task drains its visible slice with PopInto (one
// reachability probe per segment) and publishes all of its compression
// tasks as one batched spawn (Frame.SpawnN): one deque store and one
// worker wake sweep per round instead of one per block. Output order is
// unchanged — SpawnN prepares the push privileges in index order, which
// is pop order.
func RunHyperqueueLoopSplit(rt *swan.Runtime, data []byte, blockSize, segCap, batch int) []byte {
	if batch < 1 {
		batch = 8
	}
	var out []byte
	rt.Run(func(f *swan.Frame) {
		q2 := swan.NewQueueWithCapacity[[]byte](f, segCap)
		f.Spawn(func(s12 *swan.Frame) {
			q1 := swan.NewQueueWithCapacity[[]byte](s12, segCap)
			pw := q1.BindPush(s12)
			blocks := SplitBlocks(data, blockSize)
			for len(blocks) > 0 {
				n := batch
				if n > len(blocks) {
					n = len(blocks)
				}
				pw.PushSlice(blocks[:n])
				blocks = blocks[n:]
				s12.Spawn(func(c *swan.Frame) {
					// Only this round's blocks are visible (pushes after
					// this task's spawn are hidden by rule 4), so the
					// drain collects at most batch blocks.
					pp := q1.BindPop(c)
					round := make([][]byte, batch)
					got := 0
					for got < len(round) && !pp.Empty() {
						got += pp.PopInto(round[got:])
					}
					c.SpawnN(got, func(g *swan.Frame, i int) {
						q2.Push(g, CompressBlock(round[i]))
					}, swan.Push(q2))
				}, swan.Pop(q1), swan.Push(q2))
			}
			s12.Sync()
			if q1.CanRecycle(s12) {
				q1.Recycle(s12)
			}
		}, swan.Push(q2))
		f.Spawn(func(c *swan.Frame) {
			pp := q2.BindPop(c)
			for !pp.Empty() {
				out = appendRecord(out, pp.Pop())
			}
		}, swan.Pop(q2))
		f.Sync()
		if q2.CanRecycle(f) {
			q2.Recycle(f)
		}
	})
	return out
}
