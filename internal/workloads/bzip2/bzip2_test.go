package bzip2

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/swan"
)

func TestBWTRoundTrip(t *testing.T) {
	cases := [][]byte{
		[]byte("banana"),
		[]byte("a"),
		[]byte("abracadabra abracadabra"),
		[]byte("aaaaaaaa"),
		[]byte("abababab"), // periodic: identical rotations
		{0, 255, 0, 255, 1},
		nil,
	}
	for _, c := range cases {
		l, p := bwt(c)
		got := unbwt(l, p)
		if !bytes.Equal(got, c) {
			t.Errorf("bwt round trip failed for %q: got %q (L=%q, p=%d)", c, got, l, p)
		}
	}
}

func TestBWTKnownVector(t *testing.T) {
	l, p := bwt([]byte("banana"))
	if string(l) != "nnbaaa" || p != 3 {
		t.Fatalf("bwt(banana) = %q,%d; want nnbaaa,3", l, p)
	}
}

func TestBWTQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		l, p := bwt(data)
		return bytes.Equal(unbwt(l, p), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMTFRoundTrip(t *testing.T) {
	data := []byte("mississippi river runs")
	if !bytes.Equal(unmtf(mtf(data)), data) {
		t.Fatal("mtf round trip failed")
	}
}

func TestMTFKnownBehavior(t *testing.T) {
	// Repeated symbols become zeros after the first occurrence.
	out := mtf([]byte{'a', 'a', 'a'})
	if out[1] != 0 || out[2] != 0 {
		t.Fatalf("mtf(aaa) = %v; repeats must map to 0", out)
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1, 1, 1, 1},
		bytes.Repeat([]byte{7}, 1000),
		{1, 2, 3, 4, 4, 4, 4, 4, 5},
	}
	for _, c := range cases {
		if got := unrle(rle(c)); !bytes.Equal(got, c) {
			t.Errorf("rle round trip failed for len=%d: got len=%d", len(c), len(got))
		}
	}
}

func TestRLEQuick(t *testing.T) {
	f := func(data []byte) bool { return bytes.Equal(unrle(rle(data)), data) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLECompressesRuns(t *testing.T) {
	long := bytes.Repeat([]byte{0}, 500)
	if enc := rle(long); len(enc) >= len(long)/10 {
		t.Fatalf("rle of 500-byte run is %d bytes; not compressing", len(enc))
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog 1234567890")
	lengths, _, enc := huffEncode(data)
	dec, err := huffDecode(&lengths, enc, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("huffman round trip failed")
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	data := bytes.Repeat([]byte{'x'}, 100)
	lengths, _, enc := huffEncode(data)
	dec, err := huffDecode(&lengths, enc, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("single-symbol round trip failed")
	}
}

func TestHuffmanQuick(t *testing.T) {
	f := func(data []byte) bool {
		lengths, _, enc := huffEncode(data)
		dec, err := huffDecode(&lengths, enc, len(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanCompresses(t *testing.T) {
	data := GenerateInput(1, 20000)
	_, _, enc := huffEncode(data)
	if len(enc) >= len(data) {
		t.Fatalf("huffman output %d >= input %d on skewed text", len(enc), len(data))
	}
}

func TestBlockRoundTrip(t *testing.T) {
	data := GenerateInput(2, 50000)
	enc := CompressBlock(data)
	dec, err := DecompressBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("block round trip failed")
	}
	if len(enc) >= len(data) {
		t.Errorf("compressed %d >= original %d; pipeline should shrink text", len(enc), len(data))
	}
}

func TestBlockEmpty(t *testing.T) {
	enc := CompressBlock(nil)
	dec, err := DecompressBlock(enc)
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty block round trip: %v, %v", dec, err)
	}
}

func TestBlockBinaryData(t *testing.T) {
	r := rng.New(9)
	data := make([]byte, 10000)
	r.Bytes(data) // incompressible
	dec, err := DecompressBlock(CompressBlock(data))
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatal("binary block round trip failed")
	}
}

func TestDecompressBlockErrors(t *testing.T) {
	if _, err := DecompressBlock(nil); err == nil {
		t.Error("nil block accepted")
	}
	if _, err := DecompressBlock([]byte{99}); err == nil {
		t.Error("bad format byte accepted")
	}
	if _, err := DecompressBlock([]byte{1, 5}); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestSplitBlocks(t *testing.T) {
	data := make([]byte, 1000)
	blocks := SplitBlocks(data, 300)
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
	if len(blocks[3]) != 100 {
		t.Fatalf("tail block %d bytes, want 100", len(blocks[3]))
	}
}

func TestSerialPipelineRoundTrip(t *testing.T) {
	data := GenerateInput(3, 100000)
	stream := RunSerial(data, 16*1024)
	dec, err := DecompressStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("serial pipeline round trip failed")
	}
}

func TestAllPipelinesAgree(t *testing.T) {
	data := GenerateInput(4, 80000)
	const bs = 8 * 1024
	ref := RunSerial(data, bs)
	rt := swan.New(8)
	if got := RunObjects(rt, data, bs); !bytes.Equal(got, ref) {
		t.Error("objects pipeline output differs from serial elision")
	}
	if got := RunHyperqueue(rt, data, bs, 8); !bytes.Equal(got, ref) {
		t.Error("hyperqueue pipeline output differs from serial elision")
	}
	if got := RunHyperqueueLoopSplit(rt, data, bs, 8, 4); !bytes.Equal(got, ref) {
		t.Error("loop-split pipeline output differs from serial elision")
	}
}

// TestHyperqueueBounded pins the flow-controlled variant: identical
// output to the serial elision at tight and loose bounds (including a
// bound smaller than the block count, which forces the splitter to
// block mid-PushSlice), and the bounded block queue's meter must show a
// high-water mark within the bound.
func TestHyperqueueBounded(t *testing.T) {
	data := GenerateInput(6, 80000)
	const bs = 4 * 1024 // 20 blocks: bound 2 forces real backpressure
	ref := RunSerial(data, bs)
	for _, bound := range []int{2, 8, 1 << 20} {
		for _, workers := range []int{1, 8} {
			rt := swan.New(workers)
			if got := RunHyperqueueBounded(rt, data, bs, 8, bound); !bytes.Equal(got, ref) {
				t.Errorf("bounded(%d) pipeline at %d workers differs from serial elision", bound, workers)
			}
			for _, qs := range swan.Stats(rt).Queues {
				if qs.Name == "bzip2.blocks" && qs.Bound > 0 && qs.HighWater > int64(qs.Bound) {
					t.Errorf("bounded(%d) at %d workers: high-water %d exceeds bound %d",
						bound, workers, qs.HighWater, qs.Bound)
				}
			}
		}
	}
}

func TestPipelinesAtOneWorker(t *testing.T) {
	data := GenerateInput(5, 40000)
	const bs = 8 * 1024
	ref := RunSerial(data, bs)
	rt := swan.New(1)
	if got := RunHyperqueue(rt, data, bs, 4); !bytes.Equal(got, ref) {
		t.Error("hyperqueue at 1 worker differs")
	}
	if got := RunObjects(rt, data, bs); !bytes.Equal(got, ref) {
		t.Error("objects at 1 worker differs")
	}
}

func TestGenerateInputDeterministic(t *testing.T) {
	a := GenerateInput(7, 1000)
	b := GenerateInput(7, 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("input generation not deterministic")
	}
	c := GenerateInput(8, 1000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds gave identical input")
	}
}

func TestBWTRadixMatchesSort(t *testing.T) {
	r := rng.New(77)
	cases := [][]byte{
		[]byte("banana"), []byte("abababab"), []byte("aaaa"), {0}, nil,
	}
	for i := 0; i < 30; i++ {
		b := make([]byte, 1+r.Intn(2000))
		r.Bytes(b)
		if i%3 == 0 { // low-entropy variant: long runs
			for j := range b {
				b[j] &= 3
			}
		}
		cases = append(cases, b)
	}
	for _, c := range cases {
		lr, pr := bwt(c)
		ls, ps := bwtSort(c)
		if !bytes.Equal(lr, ls) {
			t.Fatalf("radix and sort BWT outputs differ for len=%d", len(c))
		}
		// primary may differ for periodic inputs (tie order among
		// identical rotations); both must decode correctly.
		if !bytes.Equal(unbwt(lr, pr), c) {
			t.Fatalf("radix BWT round trip failed for len=%d", len(c))
		}
		if !bytes.Equal(unbwt(ls, ps), c) {
			t.Fatalf("sort BWT round trip failed for len=%d", len(c))
		}
	}
}

func TestBWTRadixQuick(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		l, p := bwt(data)
		return bytes.Equal(unbwt(l, p), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBWTRadix(b *testing.B) {
	data := GenerateInput(3, 64*1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		bwt(data)
	}
}

func BenchmarkBWTSort(b *testing.B) {
	data := GenerateInput(3, 64*1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		bwtSort(data)
	}
}

func TestParallelDecompressor(t *testing.T) {
	data := GenerateInput(11, 200000)
	stream := RunSerial(data, 16*1024)
	rt := swan.New(8)
	got, err := RunDecompressHyperqueue(rt, stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parallel decompressor output differs from input")
	}
}

func TestParallelDecompressorCorrupt(t *testing.T) {
	rt := swan.New(4)
	if _, err := RunDecompressHyperqueue(rt, []byte{0xff, 0xff, 0xff}, 4); err == nil {
		t.Fatal("corrupt stream accepted")
	}
	data := GenerateInput(12, 50000)
	stream := RunSerial(data, 8*1024)
	stream[len(stream)/2] ^= 0x5a // corrupt a block body
	if got, err := RunDecompressHyperqueue(rt, stream, 4); err == nil && bytes.Equal(got, data) {
		t.Fatal("silently decoded corrupted stream to original data")
	}
}

func TestFullCompressDecompressParallel(t *testing.T) {
	data := GenerateInput(13, 300000)
	rt := swan.New(8)
	stream := RunHyperqueue(rt, data, 32*1024, 8)
	got, err := RunDecompressHyperqueue(rt, stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compress→decompress round trip failed")
	}
}
