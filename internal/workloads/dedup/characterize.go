package dedup

import "time"

// StageTime is one row of the Table 2 characterization.
type StageTime struct {
	Name       string
	Iterations int
	Seconds    float64
	Percent    float64
}

// CharacterizeStages measures the serial per-stage breakdown of the dedup
// pipeline — the harness that regenerates Table 2. Iteration counts
// follow the paper's accounting: Fragment and FragmentRefine count coarse
// chunks, Deduplicate and Output count all fine chunks, Compress counts
// only unique chunks.
func CharacterizeStages(data []byte, o Options) []StageTime {
	rows := []StageTime{
		{Name: "Fragment"},
		{Name: "FragmentRefine"},
		{Name: "Deduplicate"},
		{Name: "Compress"},
		{Name: "Output"},
	}
	store := NewStore()
	var res Result

	t0 := time.Now()
	coarse := Fragment(data, o)
	rows[0].Seconds = time.Since(t0).Seconds()
	rows[0].Iterations = len(coarse)

	for _, cc := range coarse {
		t1 := time.Now()
		fines := Refine(cc, o)
		rows[1].Seconds += time.Since(t1).Seconds()
		rows[1].Iterations++

		for _, fine := range fines {
			c := &Chunk{Data: fine}
			t2 := time.Now()
			Deduplicate(c, store, o.DedupRounds)
			t3 := time.Now()
			Compress(c)
			t4 := time.Now()
			res.Stream, res.Checksum = output(res.Stream, res.Checksum, c, o)
			t5 := time.Now()
			rows[2].Seconds += t3.Sub(t2).Seconds()
			rows[2].Iterations++
			if !c.Dup {
				rows[3].Seconds += t4.Sub(t3).Seconds()
				rows[3].Iterations++
			}
			rows[4].Seconds += t5.Sub(t4).Seconds()
			rows[4].Iterations++
		}
	}
	var total float64
	for _, r := range rows {
		total += r.Seconds
	}
	for i := range rows {
		rows[i].Percent = 100 * rows[i].Seconds / total
	}
	return rows
}
