package dedup

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"io"

	"repro/swan"
)

// RestoreHyperqueue is the parallel inverse of the dedup pipeline: a
// serial task frames the output stream into records, parallel tasks
// inflate unique payloads (order restored by the queue's reduction
// semantics), and a serial task resolves duplicate references and
// concatenates. It mirrors PARSEC's `restore` mode as a hyperqueue
// program and doubles as an end-to-end integrity check for every
// compressor variant.
//
// Forward references — a duplicate record appearing before the unique
// record that carries its payload, possible when the compressor ran in
// parallel — are parked and resolved as payloads arrive; the final
// stitching is a single ordered pass.
func RestoreHyperqueue(rt *swan.Runtime, stream []byte, segCap int) ([]byte, error) {
	type rec struct {
		id      int64
		payload []byte // nil for duplicate references
		err     error
	}
	var (
		parts    [][]byte // one per record, nil where a dup awaits payload
		partIDs  []int64
		payloads = map[int64][]byte{}
		firstErr error
	)
	rt.Run(func(f *swan.Frame) {
		outQ := swan.NewQueueWithCapacity[rec](f, segCap)
		f.Spawn(func(mid *swan.Frame) {
			type framed struct {
				id   int64
				data []byte // compressed payload, nil for dup
				bad  bool
			}
			frQ := swan.NewQueueWithCapacity[framed](mid, segCap)
			mid.Spawn(func(c *swan.Frame) { // serial framing
				p := stream
				for len(p) > 0 {
					kind := p[0]
					p = p[1:]
					id, n := binary.Uvarint(p)
					if n <= 0 {
						frQ.Push(c, framed{bad: true})
						return
					}
					p = p[n:]
					switch kind {
					case recUnique:
						sz, n := binary.Uvarint(p)
						if n <= 0 || uint64(len(p)-n) < sz {
							frQ.Push(c, framed{bad: true})
							return
						}
						p = p[n:]
						frQ.Push(c, framed{id: int64(id), data: p[:sz]})
						p = p[sz:]
					case recDup:
						frQ.Push(c, framed{id: int64(id)})
					default:
						frQ.Push(c, framed{bad: true})
						return
					}
				}
			}, swan.Push(frQ))
			mid.Spawn(func(c *swan.Frame) { // parallel inflate
				for !frQ.Empty(c) {
					fr := frQ.Pop(c)
					c.Spawn(func(g *swan.Frame) {
						switch {
						case fr.bad:
							outQ.Push(g, rec{err: errors.New("dedup: malformed stream")})
						case fr.data == nil:
							outQ.Push(g, rec{id: fr.id})
						default:
							r := flate.NewReader(bytes.NewReader(fr.data))
							raw, err := io.ReadAll(r)
							outQ.Push(g, rec{id: fr.id, payload: raw, err: err})
						}
					}, swan.Push(outQ))
				}
			}, swan.Pop(frQ), swan.Push(outQ))
		}, swan.Push(outQ))
		f.Spawn(func(c *swan.Frame) { // serial gather
			for !outQ.Empty(c) {
				r := outQ.Pop(c)
				if r.err != nil && firstErr == nil {
					firstErr = r.err
				}
				if r.payload != nil {
					payloads[r.id] = r.payload
				}
				parts = append(parts, r.payload)
				partIDs = append(partIDs, r.id)
			}
		}, swan.Pop(outQ))
		f.Sync()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	// Stitch: resolve duplicate references (including forward ones).
	var out []byte
	for i, part := range parts {
		if part == nil {
			resolved, ok := payloads[partIDs[i]]
			if !ok {
				return nil, errors.New("dedup: dangling duplicate reference")
			}
			part = resolved
		}
		out = append(out, part...)
	}
	return out, nil
}
