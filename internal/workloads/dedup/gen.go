package dedup

import "repro/internal/rng"

// GenerateInput synthesizes a deterministic data stream of the given size
// with controlled duplication: a pool of base blocks is generated once,
// and the stream repeats pool blocks (with probability dupRatio) or emits
// fresh pseudo-random blocks. The PARSEC inputs deduplicate heavily; a
// dupRatio around 0.5 reproduces that regime.
//
// Block payloads are word-like (drawn from a vocabulary) so the Compress
// stage performs realistic DEFLATE work rather than storing incompressible
// noise.
func GenerateInput(seed uint64, size int, dupRatio float64) []byte {
	r := rng.New(seed)
	vocab := make([][]byte, 256)
	for i := range vocab {
		w := make([]byte, 2+r.Intn(10))
		for j := range w {
			w[j] = byte('A' + r.Intn(58))
		}
		vocab[i] = w
	}
	makeBlock := func(g *rng.RNG, n int) []byte {
		b := make([]byte, 0, n+16)
		for len(b) < n {
			b = append(b, vocab[g.Intn(64)*g.Intn(4)]...)
			b = append(b, ' ')
		}
		return b[:n]
	}
	const blockSize = 8 * 1024
	pool := make([][]byte, 32)
	for i := range pool {
		pool[i] = makeBlock(r.Split(), blockSize)
	}
	out := make([]byte, 0, size+blockSize)
	for len(out) < size {
		if r.Float64() < dupRatio {
			out = append(out, pool[r.Intn(len(pool))]...)
		} else {
			out = append(out, makeBlock(r.Split(), blockSize)...)
		}
	}
	return out[:size]
}
