// Package dedup reproduces the PARSEC dedup kernel the paper evaluates in
// §6.2: a 5-stage pipeline — Fragment (coarse chunking), FragmentRefine
// (fine chunking), Deduplicate (content hashing against a global store),
// Compress (unique chunks only) and Output (serial, in stream order) —
// implemented over pthreads-style, TBB-style, task-dataflow and
// hyperqueue models.
//
// The content pipeline is real: rolling-hash content-defined chunking,
// SHA-256 identity, DEFLATE compression, and a self-describing output
// stream that Reassemble inverts back to the input bytes.
package dedup

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// Options fixes the chunking geometry and the per-stage cost model.
type Options struct {
	CoarseAvg int // average coarse-chunk size (power of two), Fragment stage
	FineAvg   int // average fine-chunk size (power of two), FragmentRefine stage
	MaxFactor int // maximum chunk size = avg * MaxFactor

	// CoarseBatch is how many coarse chunks RunHyperqueue publishes per
	// batched spawn (each contributes a two-task nested pipeline).
	// Zero means the default (4). DefaultOptions also honours the
	// REPRO_COARSE_BATCH environment variable, so ablations can sweep
	// the batch size without recompiling.
	CoarseBatch int

	// DedupRounds and OutputRounds calibrate the Deduplicate and Output
	// stage costs to the paper's Table 2 proportions (7.9% and 8.2%).
	// The paper's Deduplicate maintains an on-disk-backed chunk index
	// and its Output performs real disk writes; our SHA-256+map and
	// buffer append are relatively cheaper than PARSEC's against flate,
	// so the stages repeat their hash/checksum work this many times.
	// Fig. 11's speedup shape (Output is the limiting serial stage)
	// depends on these proportions, not on absolute cost.
	DedupRounds  int
	OutputRounds int
}

// DefaultOptions mirrors the proportions of PARSEC's configuration
// scaled to benchmark-friendly sizes, calibrated against Table 2.
func DefaultOptions() Options {
	o := Options{
		CoarseAvg: 64 * 1024, FineAvg: 4 * 1024, MaxFactor: 4,
		DedupRounds: 7, OutputRounds: 25,
	}
	if s := os.Getenv("REPRO_COARSE_BATCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			o.CoarseBatch = n
		} else {
			fmt.Fprintf(os.Stderr, "dedup: ignoring invalid REPRO_COARSE_BATCH=%q (want integer >= 1)\n", s)
		}
	}
	return o
}

// Chunk is a fine-grained chunk moving through the pipeline.
type Chunk struct {
	Data       []byte
	Hash       [32]byte
	ID         int64
	Dup        bool
	Compressed []byte
}

// rolling is a simple multiplicative rolling hash over a fixed window
// (Rabin–Karp style), used for content-defined chunk boundaries.
const (
	hashWindow = 32
	hashPrime  = 1099511628211 // FNV prime
)

var hashPowTable = func() (t [256]uint64) {
	// pow = hashPrime^(hashWindow-1) mod 2^64, premultiplied per byte value.
	pow := uint64(1)
	for i := 0; i < hashWindow-1; i++ {
		pow *= hashPrime
	}
	for b := range t {
		t[b] = uint64(b+1) * pow
	}
	return t
}()

// split cuts data at content-defined boundaries with the given average
// size (must be a power of two). A boundary is declared where the rolling
// hash has avg-1 trailing zero-masked bits; chunks are capped at
// avg*maxFactor.
func split(data []byte, avg, maxFactor int) [][]byte {
	if avg < hashWindow*2 {
		avg = hashWindow * 2
	}
	mask := uint64(avg - 1)
	maxLen := avg * maxFactor
	var out [][]byte
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		h = h*hashPrime + uint64(data[i]+1)
		if i-start >= hashWindow {
			h -= hashPowTable[data[i-hashWindow]] * hashPrime
		}
		if i-start+1 >= hashWindow && (h&mask) == mask || i-start+1 >= maxLen {
			out = append(out, data[start:i+1])
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// Fragment performs the coarse first-stage chunking.
func Fragment(data []byte, o Options) [][]byte { return split(data, o.CoarseAvg, o.MaxFactor) }

// Refine performs the fine second-stage chunking of one coarse chunk.
func Refine(coarse []byte, o Options) [][]byte { return split(coarse, o.FineAvg, o.MaxFactor) }

// Store is the global deduplication table: content hash to chunk id.
// Lookup is first-writer-wins under striped locking, exactly the shared
// hash table the PARSEC kernel uses.
type Store struct {
	shards [64]struct {
		mu sync.Mutex
		m  map[[32]byte]int64
	}
	next struct {
		sync.Mutex
		id int64
	}
}

// NewStore returns an empty deduplication table.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[[32]byte]int64)
	}
	return s
}

// Intern returns the id for hash, allocating a fresh one (dup=false) on
// first sight.
func (s *Store) Intern(hash [32]byte) (id int64, dup bool) {
	sh := &s.shards[hash[0]&63]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[hash]; ok {
		return id, true
	}
	s.next.Lock()
	id = s.next.id
	s.next.id++
	s.next.Unlock()
	sh.m[hash] = id
	return id, false
}

// HashChunk computes the chunk's content hash. rounds calibrates the
// stage cost (see Options.DedupRounds); every round recomputes the
// hash, the last one is authoritative.
func HashChunk(c *Chunk, rounds int) {
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		c.Hash = sha256.Sum256(c.Data)
	}
}

// Deduplicate hashes the chunk and consults the store — the
// arrival-ordered discipline of the pthreads, TBB and objects baselines.
// The hyperqueue pipeline splits the stage into HashChunk plus a
// deterministic hypermap probe instead (see RunHyperqueue).
func Deduplicate(c *Chunk, s *Store, rounds int) {
	HashChunk(c, rounds)
	c.ID, c.Dup = s.Intern(c.Hash)
}

// Compress DEFLATEs a unique chunk's payload; duplicates are skipped, as
// in the paper's pipeline (§6.2: "the compression stage is skipped for
// duplicate chunks").
func Compress(c *Chunk) {
	if c.Dup {
		return
	}
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	w.Write(c.Data)
	w.Close()
	c.Compressed = buf.Bytes()
}

// Output record kinds.
const (
	recUnique = 1
	recDup    = 2
)

// AppendRecord serializes one chunk into the output stream and returns a
// position-dependent checksum, modelling the Output stage's per-byte
// write work.
func AppendRecord(out []byte, c *Chunk) []byte {
	if c.Dup {
		out = append(out, recDup)
		out = binary.AppendUvarint(out, uint64(c.ID))
		return out
	}
	out = append(out, recUnique)
	out = binary.AppendUvarint(out, uint64(c.ID))
	out = binary.AppendUvarint(out, uint64(len(c.Compressed)))
	return append(out, c.Compressed...)
}

// OutputChecksum burns the Output stage's serial per-byte cost (the
// paper's Output writes every record to disk; rounds passes over the
// record model that write — see Options.OutputRounds).
func OutputChecksum(sum uint64, rec []byte, rounds int) uint64 {
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		for _, b := range rec {
			sum = sum*31 + uint64(b)
		}
	}
	return sum
}

// Reassemble inverts the output stream back to the original data. Two
// passes: unique payloads may appear after duplicate references when the
// pipeline ran in parallel (the dedup decision is arrival-ordered), so
// ids are resolved first.
func Reassemble(stream []byte) ([]byte, error) {
	payload := make(map[int64][]byte)
	type ref struct {
		id int64
	}
	var order []ref
	p := stream
	for len(p) > 0 {
		kind := p[0]
		p = p[1:]
		idU, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errors.New("dedup: bad id varint")
		}
		id := int64(idU)
		p = p[n:]
		switch kind {
		case recUnique:
			sz, n := binary.Uvarint(p)
			if n <= 0 {
				return nil, errors.New("dedup: bad size varint")
			}
			p = p[n:]
			if uint64(len(p)) < sz {
				return nil, errors.New("dedup: truncated payload")
			}
			r := flate.NewReader(bytes.NewReader(p[:sz]))
			raw, err := io.ReadAll(r)
			if err != nil {
				return nil, err
			}
			payload[id] = raw
			p = p[sz:]
			order = append(order, ref{id})
		case recDup:
			order = append(order, ref{id})
		default:
			return nil, errors.New("dedup: unknown record kind")
		}
	}
	var out []byte
	for _, r := range order {
		d, ok := payload[r.id]
		if !ok {
			return nil, errors.New("dedup: dangling duplicate reference")
		}
		out = append(out, d...)
	}
	return out, nil
}
