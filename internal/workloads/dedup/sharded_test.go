package dedup

import (
	"bytes"
	"fmt"
	"testing"

	"repro/swan"
)

// TestShardedMatchesSerial sweeps the sharded dedup pipeline over shard
// counts, worker counts and both scheduler policies: the Result must be
// byte-identical to RunSerial in every configuration — the partition
// function moves work, never output bytes.
func TestShardedMatchesSerial(t *testing.T) {
	data := GenerateInput(7, 256*1024, 0.5)
	opts := smallOpts()
	ref := RunSerial(data, opts)

	for _, policy := range []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine} {
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4, 8} {
				name := fmt.Sprintf("policy=%v/shards=%d/workers=%d", policy, shards, workers)
				t.Run(name, func(t *testing.T) {
					rt := swan.NewWithPolicy(workers, policy)
					res := RunSharded(rt, data, opts, ShardedConfig{Shards: shards, Bound: 32, SegCap: 64})
					if res.Checksum != ref.Checksum {
						t.Fatalf("checksum %#x, serial elision has %#x", res.Checksum, ref.Checksum)
					}
					if !bytes.Equal(res.Stream, ref.Stream) {
						t.Fatalf("output stream differs from the serial elision (len %d vs %d)",
							len(res.Stream), len(ref.Stream))
					}
				})
			}
		}
	}
}

// TestShardedRoundTrip checks the sharded stream reassembles to the
// input, and that duplicates in the input actually produce dup records
// (the shard-local filters and the egress interning agree).
func TestShardedRoundTrip(t *testing.T) {
	data := testData(t)
	opts := smallOpts()
	res := RunSharded(swan.New(4), data, opts, ShardedConfig{Shards: 4})
	got, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatalf("Reassemble: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
	}
}

// TestCoarseBatchInvariant pins the configurable-batch satellite: the
// hyperqueue pipeline's output must not depend on the spawn batch size.
func TestCoarseBatchInvariant(t *testing.T) {
	data := GenerateInput(11, 128*1024, 0.5)
	opts := smallOpts()
	ref := RunSerial(data, opts)
	for _, batch := range []int{1, 3, 16} {
		o := opts
		o.CoarseBatch = batch
		res := RunHyperqueue(swan.New(4), data, o, 64)
		if !bytes.Equal(res.Stream, ref.Stream) || res.Checksum != ref.Checksum {
			t.Fatalf("CoarseBatch=%d: output differs from the serial elision", batch)
		}
	}
}
