package dedup

import (
	"bytes"
	"testing"

	"repro/swan"
)

func testData(t *testing.T) []byte {
	t.Helper()
	size := 512 * 1024
	if testing.Short() {
		size = 128 * 1024
	}
	return GenerateInput(42, size, 0.5)
}

func smallOpts() Options {
	return Options{CoarseAvg: 16 * 1024, FineAvg: 1024, MaxFactor: 4}
}

func TestSplitCoversInput(t *testing.T) {
	data := testData(t)
	chunks := split(data, 4096, 4)
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total != len(data) {
		t.Fatalf("chunks cover %d bytes, input is %d", total, len(data))
	}
	var rejoined []byte
	for _, c := range chunks {
		rejoined = append(rejoined, c...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Fatal("chunk concatenation differs from input")
	}
}

func TestSplitRespectsMax(t *testing.T) {
	data := testData(t)
	const avg, factor = 1024, 4
	for i, c := range split(data, avg, factor) {
		if len(c) > avg*factor {
			t.Fatalf("chunk %d has %d bytes, max is %d", i, len(c), avg*factor)
		}
	}
}

func TestSplitContentDefined(t *testing.T) {
	// Content-defined chunking must resynchronize: inserting a prefix
	// shifts data but most boundaries (and thus chunk hashes) survive.
	data := testData(t)[:128*1024]
	shifted := append([]byte("PREFIXPREFIXPREFIX"), data...)
	a := split(data, 1024, 8)
	b := split(shifted, 1024, 8)
	set := make(map[string]bool, len(a))
	for _, c := range a {
		set[string(c)] = true
	}
	match := 0
	for _, c := range b {
		if set[string(c)] {
			match++
		}
	}
	if match < len(a)/2 {
		t.Fatalf("only %d/%d chunks survived a prefix shift; chunking is not content-defined", match, len(a))
	}
}

func TestSplitDeterministic(t *testing.T) {
	data := testData(t)
	a := split(data, 2048, 4)
	b := split(data, 2048, 4)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
}

func TestStoreInternFirstWins(t *testing.T) {
	s := NewStore()
	h := [32]byte{1, 2, 3}
	id1, dup1 := s.Intern(h)
	id2, dup2 := s.Intern(h)
	if dup1 || !dup2 || id1 != id2 {
		t.Fatalf("Intern: (%d,%v) then (%d,%v)", id1, dup1, id2, dup2)
	}
	h2 := [32]byte{9}
	id3, dup3 := s.Intern(h2)
	if dup3 || id3 == id1 {
		t.Fatalf("distinct hash shares id: %d vs %d", id3, id1)
	}
}

func TestSerialRoundTrip(t *testing.T) {
	data := testData(t)
	res := RunSerial(data, smallOpts())
	got, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("serial round trip failed")
	}
	if len(res.Stream) >= len(data) {
		t.Errorf("output %d >= input %d: dedup+compress achieved nothing", len(res.Stream), len(data))
	}
}

func TestSerialDeterministic(t *testing.T) {
	data := testData(t)
	a := RunSerial(data, smallOpts())
	b := RunSerial(data, smallOpts())
	if !bytes.Equal(a.Stream, b.Stream) || a.Checksum != b.Checksum {
		t.Fatal("serial run not deterministic")
	}
}

func TestDuplicatesDetected(t *testing.T) {
	data := testData(t) // dupRatio 0.5 ⇒ plenty of duplicates
	res := RunSerial(data, smallOpts())
	var uniq, dup int
	p := res.Stream
	for len(p) > 0 {
		kind := p[0]
		rest, err := skipRecord(p)
		if err != nil {
			t.Fatal(err)
		}
		if kind == recUnique {
			uniq++
		} else {
			dup++
		}
		p = rest
	}
	if dup == 0 {
		t.Fatal("no duplicates found in a half-duplicated stream")
	}
	t.Logf("unique=%d dup=%d (%.1f%% dedup)", uniq, dup, 100*float64(dup)/float64(uniq+dup))
}

func skipRecord(p []byte) ([]byte, error) {
	kind := p[0]
	p = p[1:]
	_, n := uvarint(p)
	p = p[n:]
	if kind == recUnique {
		sz, n := uvarint(p)
		p = p[n:]
		p = p[sz:]
	}
	return p, nil
}

func uvarint(p []byte) (uint64, int) {
	var v uint64
	for i := 0; ; i++ {
		b := p[i]
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, i + 1
		}
	}
}

func TestPthreadsRoundTrip(t *testing.T) {
	data := testData(t)
	res := RunPthreads(data, smallOpts(), 4, 16)
	got, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pthreads round trip failed")
	}
}

func TestTBBRoundTrip(t *testing.T) {
	data := testData(t)
	res := RunTBB(data, smallOpts(), 4, 8)
	got, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tbb round trip failed")
	}
}

func TestObjectsRoundTrip(t *testing.T) {
	data := testData(t)
	res := RunObjects(swan.New(8), data, smallOpts())
	got, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("objects round trip failed")
	}
}

func TestHyperqueueRoundTrip(t *testing.T) {
	data := testData(t)
	res := RunHyperqueue(swan.New(8), data, smallOpts(), 64)
	got, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hyperqueue round trip failed")
	}
}

// TestElisionContentEquality: the deterministic part of every model's
// output is the sequence of chunk contents in stream order (the paper's
// queue semantics). For the baselines the unique/dup split depends on
// the shared store's arrival order — nondeterministic under parallelism
// exactly as in PARSEC — so the invariant checkable across all models
// is that runs reassemble to the same byte sequence with the serial
// elision's chunk boundaries. The hyperqueue model is held to the far
// stronger bit-exactness standard by TestHyperqueueBitDeterministic.
func TestElisionContentEquality(t *testing.T) {
	data := testData(t)
	ref := RunSerial(data, smallOpts())
	refChunks := recordCount(t, ref.Stream)
	for name, got := range map[string]Result{
		"hyperqueue-1w": RunHyperqueue(swan.New(1), data, smallOpts(), 64),
		"hyperqueue-8w": RunHyperqueue(swan.New(8), data, smallOpts(), 64),
		"objects-1w":    RunObjects(swan.New(1), data, smallOpts()),
	} {
		out, err := Reassemble(got.Stream)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%s: reassembly differs from input", name)
		}
		if n := recordCount(t, got.Stream); n != refChunks {
			t.Fatalf("%s: %d records, serial elision has %d (chunking must not depend on schedule)", name, n, refChunks)
		}
	}
}

func recordCount(t *testing.T, stream []byte) int {
	t.Helper()
	n := 0
	for len(stream) > 0 {
		rest, err := skipRecord(stream)
		if err != nil {
			t.Fatal(err)
		}
		stream = rest
		n++
	}
	return n
}

// TestChunkOrderPreserved: even in parallel, the sequence of chunk ids in
// the output stream must reference the input's fine chunks in stream
// order (dup/unique flags may swap, but the reassembly proves order).
func TestChunkOrderPreservedUnderParallelism(t *testing.T) {
	data := testData(t)
	for _, run := range []func() Result{
		func() Result { return RunHyperqueue(swan.New(16), data, smallOpts(), 16) },
		func() Result { return RunPthreads(data, smallOpts(), 8, 8) },
		func() Result { return RunTBB(data, smallOpts(), 8, 16) },
		func() Result { return RunObjects(swan.New(16), data, smallOpts()) },
	} {
		got, err := Reassemble(run().Stream)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("parallel run scrambled chunk order")
		}
	}
}

func TestGenerateInputProperties(t *testing.T) {
	a := GenerateInput(1, 100000, 0.5)
	b := GenerateInput(1, 100000, 0.5)
	if !bytes.Equal(a, b) {
		t.Fatal("input not deterministic")
	}
	if len(a) != 100000 {
		t.Fatalf("size %d, want 100000", len(a))
	}
	noDup := GenerateInput(2, 100000, 0)
	resA := RunSerial(a, smallOpts())
	resB := RunSerial(noDup, smallOpts())
	if len(resA.Stream) >= len(resB.Stream) {
		t.Errorf("50%%-dup stream (%d) not smaller than 0%%-dup stream (%d)",
			len(resA.Stream), len(resB.Stream))
	}
}

func TestRestoreHyperqueue(t *testing.T) {
	data := testData(t)
	rt := swan.New(8)
	for name, res := range map[string]Result{
		"serial-stream":     RunSerial(data, smallOpts()),
		"hyperqueue-stream": RunHyperqueue(rt, data, smallOpts(), 32),
		"pthreads-stream":   RunPthreads(data, smallOpts(), 4, 16),
	} {
		got, err := RestoreHyperqueue(rt, res.Stream, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: restore differs from input", name)
		}
	}
}

func TestRestoreHyperqueueMatchesReassemble(t *testing.T) {
	data := testData(t)
	res := RunSerial(data, smallOpts())
	serialOut, err := Reassemble(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	parOut, err := RestoreHyperqueue(swan.New(8), res.Stream, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut, parOut) {
		t.Fatal("parallel restore differs from serial reassembly")
	}
}

func TestRestoreHyperqueueCorrupt(t *testing.T) {
	rt := swan.New(4)
	if _, err := RestoreHyperqueue(rt, []byte{9, 9, 9}, 4); err == nil {
		t.Fatal("malformed stream accepted")
	}
	data := testData(t)[:64*1024]
	res := RunSerial(data, smallOpts())
	res.Stream[len(res.Stream)/3] ^= 0xff
	if got, err := RestoreHyperqueue(rt, res.Stream, 4); err == nil && bytes.Equal(got, data) {
		t.Fatal("silently restored corrupted stream")
	}
}
