package dedup

import (
	"bytes"
	"fmt"
	"testing"

	"repro/swan"
)

// TestHyperqueueBitDeterministic pins the payoff of moving dedup's hash
// index onto hypermaps: the entire Result — output stream bytes,
// unique/dup records, chunk ids, checksum — is bit-identical to the
// serial elision under every scheduling policy, worker count and
// repetition. The baselines cannot pass this (their Store is
// arrival-ordered); the hyperqueue model must.
func TestHyperqueueBitDeterministic(t *testing.T) {
	data := GenerateInput(7, 256*1024, 0.5)
	opts := smallOpts()
	ref := RunSerial(data, opts)

	for _, policy := range []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine} {
		for _, workers := range []int{1, 4, 8} {
			name := fmt.Sprintf("policy=%v/workers=%d", policy, workers)
			t.Run(name, func(t *testing.T) {
				for rep := 0; rep < 3; rep++ {
					res := RunHyperqueue(swan.NewWithPolicy(workers, policy), data, opts, 64)
					if res.Checksum != ref.Checksum {
						t.Fatalf("rep %d: checksum %#x, serial elision has %#x", rep, res.Checksum, ref.Checksum)
					}
					if !bytes.Equal(res.Stream, ref.Stream) {
						t.Fatalf("rep %d: output stream differs from the serial elision (len %d vs %d)",
							rep, len(res.Stream), len(ref.Stream))
					}
				}
			})
		}
	}
}
