package dedup

import (
	"repro/internal/pipeline"
	"repro/swan"
)

// Result bundles an output stream with the Output stage's checksum.
type Result struct {
	Stream   []byte
	Checksum uint64
}

func output(out []byte, sum uint64, c *Chunk, o Options) ([]byte, uint64) {
	before := len(out)
	out = AppendRecord(out, c)
	return out, OutputChecksum(sum, out[before:], o.OutputRounds)
}

// RunSerial is the sequential reference implementation (and the serial
// elision of the dataflow and hyperqueue versions).
func RunSerial(data []byte, o Options) Result {
	store := NewStore()
	var res Result
	for _, coarse := range Fragment(data, o) {
		for _, fine := range Refine(coarse, o) {
			c := &Chunk{Data: fine}
			Deduplicate(c, store, o.DedupRounds)
			Compress(c)
			res.Stream, res.Checksum = output(res.Stream, res.Checksum, c, o)
		}
	}
	return res
}

// RunPthreads is the PARSEC-style pthreads pipeline: a thread pool per
// stage connected by bounded queues, the Output stage reordering to
// stream order. workersPerStage reproduces PARSEC's oversubscription
// (it starts that many threads for each parallel stage regardless of
// core count).
func RunPthreads(data []byte, o Options, workersPerStage, queueCap int) Result {
	store := NewStore()
	var res Result
	pipeline.RunPthreads(
		func(emit func(any)) { // Fragment
			for _, coarse := range Fragment(data, o) {
				emit(coarse)
			}
		},
		[]pipeline.Stage{
			{Name: "refine", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				for _, fine := range Refine(d.([]byte), o) {
					emit(&Chunk{Data: fine})
				}
			}},
			{Name: "dedup", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				c := d.(*Chunk)
				Deduplicate(c, store, o.DedupRounds)
				emit(c)
			}},
			{Name: "compress", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				c := d.(*Chunk)
				Compress(c)
				emit(c)
			}},
			{Name: "output", Ordered: true, Fn: func(d any, emit func(any)) {
				res.Stream, res.Checksum = output(res.Stream, res.Checksum, d.(*Chunk), o)
			}},
		},
		queueCap,
	)
	return res
}

// RunTBB is the structured nested-pipeline restructuring TBB forces
// (Reed et al.; paper Fig. 10(a)): because TBB filters are 1:1, the
// variable-fan-out refine stage must gather each coarse chunk's fine
// chunks into a list, and the output stage waits for whole lists — the
// scalability limitation the paper calls out.
func RunTBB(data []byte, o Options, workers, tokens int) Result {
	store := NewStore()
	var res Result
	coarse := Fragment(data, o)
	i := 0
	pipeline.RunTBB(
		func() any { // serial input filter: next coarse chunk
			if i >= len(coarse) {
				return nil
			}
			i++
			return coarse[i-1]
		},
		[]pipeline.Filter{
			{Name: "inner", Mode: pipeline.Parallel, Fn: func(d any) any {
				// Whole inner pipeline for one coarse chunk: refine,
				// dedup, compress, gathered into a list.
				fines := Refine(d.([]byte), o)
				chunks := make([]*Chunk, len(fines))
				for j, fine := range fines {
					c := &Chunk{Data: fine}
					Deduplicate(c, store, o.DedupRounds)
					Compress(c)
					chunks[j] = c
				}
				return chunks
			}},
			{Name: "output", Mode: pipeline.SerialInOrder, Fn: func(d any) any {
				for _, c := range d.([]*Chunk) {
					res.Stream, res.Checksum = output(res.Stream, res.Checksum, c, o)
				}
				return d
			}},
		},
		workers, tokens,
	)
	return res
}

// RunObjects is the task-dataflow version without hyperqueues: one
// processing task per coarse chunk producing a gathered list (outdep),
// and a serialized output task per list (inoutdep on the sink). Like the
// TBB version it cannot stream fine chunks — the paper's motivation for
// hyperqueues in §6.2.
func RunObjects(rt *swan.Runtime, data []byte, o Options) Result {
	store := NewStore()
	var res Result
	rt.Run(func(f *swan.Frame) {
		sink := swan.NewVersioned(Result{})
		for _, coarse := range Fragment(data, o) {
			coarse := coarse
			list := swan.NewVersioned[[]*Chunk](nil)
			f.Spawn(func(c *swan.Frame) {
				fines := Refine(coarse, o)
				chunks := make([]*Chunk, len(fines))
				for j, fine := range fines {
					ch := &Chunk{Data: fine}
					Deduplicate(ch, store, o.DedupRounds)
					Compress(ch)
					chunks[j] = ch
				}
				list.Set(c, chunks)
			}, swan.Out(list))
			f.Spawn(func(c *swan.Frame) {
				r := sink.Get(c)
				for _, ch := range list.Get(c) {
					r.Stream, r.Checksum = output(r.Stream, r.Checksum, ch, o)
				}
				sink.Set(c, r)
			}, swan.In(list), swan.InOut(sink))
		}
		f.Sync()
		res = sink.Get(f)
	})
	return res
}

// RunHyperqueue is the paper's dedup (Fig. 10(b,c)): Fragment spawns, per
// coarse chunk, a nested pipeline of FragmentRefine and a merged
// DeduplicateAndCompress task connected by a chunk-local hyperqueue; all
// nested pipelines push completed chunks onto one global write queue that
// the Output task drains concurrently — no waiting for whole coarse
// chunks.
//
// The chunk-local queues are recycled: a pipeline whose producer and
// consumer have both completed leaves its (fully drained) queue
// quiescent, and the next coarse chunk reuses it via Queue.Recycle
// instead of constructing a fresh one. The working set of queues is
// therefore bounded by the number of in-flight pipelines rather than
// growing with the input, and — together with the runtime-wide segment
// pool — a long input stream reaches a steady state in which per-chunk
// queue setup allocates nothing.
//
// Unlike the baselines, this version holds no arrival-ordered shared
// Store: deduplication runs on two hypermaps, making the whole Result
// bit-identical to RunSerial for every policy, schedule and worker
// count. The "seen" hypermap lets the parallel dedup tasks skip
// compressing chunks that are provable duplicates (Put's sound dup
// report: a serially-earlier occurrence exists, so Output will emit a
// duplicate record and never needs the payload; an unprovable duplicate
// is merely compressed redundantly). The "index" hypermap belongs to
// the serial Output task, which assigns chunk ids by interning content
// hashes in stream order — exactly the serial elision's id assignment.
func RunHyperqueue(rt *swan.Runtime, data []byte, o Options, segCap int) Result {
	var res Result
	rt.Run(func(f *swan.Frame) {
		writeQ := swan.NewQueueWithCapacity[*Chunk](f, segCap)
		seen := swan.NewHypermap[[32]byte, struct{}](f)
		index := swan.NewHypermap[[32]byte, int64](f)
		f.Spawn(func(frag *swan.Frame) { // Fragment
			// Each coarse chunk gets a nested two-stage pipeline (Fig.
			// 10(c)); coarseBatch pipelines are published per batched
			// spawn — one deque store and one wake sweep for 2×coarseBatch
			// tasks. Prepare still runs per child in program order, so
			// writeQ's push-privilege order (and thus the output stream)
			// is identical to the unbatched loop — for any batch size.
			coarseBatch := o.CoarseBatch
			if coarseBatch < 1 {
				coarseBatch = 4
			}
			// localQs holds every chunk-local queue ever created, all owned
			// by frag; scan points one past the last reuse so the rotating
			// probe visits the oldest (most likely quiescent) queues first.
			var localQs []*swan.Queue[*Chunk]
			scan := 0
			acquireLocalQ := func() *swan.Queue[*Chunk] {
				for i := 0; i < len(localQs); i++ {
					q := localQs[(scan+i)%len(localQs)]
					if q.CanRecycle(frag) {
						scan = (scan + i + 1) % len(localQs)
						q.Recycle(frag)
						return q
					}
				}
				q := swan.NewQueueWithCapacity[*Chunk](frag, segCap)
				localQs = append(localQs, q)
				return q
			}
			coarses := Fragment(data, o)
			for len(coarses) > 0 {
				n := coarseBatch
				if n > len(coarses) {
					n = len(coarses)
				}
				children := make([]swan.BatchChild, 0, 2*n)
				for _, coarse := range coarses[:n] {
					coarse := coarse
					// Nested pipeline with a recycled local queue (Fig. 10(c)).
					q := acquireLocalQ()
					children = append(children, swan.BatchChild{
						Body: func(c *swan.Frame) { // FragmentRefine
							pw := q.BindPush(c)
							for _, fine := range Refine(coarse, o) {
								pw.Push(&Chunk{Data: fine})
							}
						},
						Deps: []swan.Dep{swan.Push(q)},
					}, swan.BatchChild{
						Body: func(c *swan.Frame) { // DeduplicateAndCompress (merged, §6.2)
							pp := q.BindPop(c)
							ww := writeQ.BindPush(c)
							sm := seen.BindMap(c)
							for !pp.Empty() {
								ch := pp.Pop()
								HashChunk(ch, o.DedupRounds)
								// A true dup report is sound: a serially
								// earlier occurrence of this hash exists, so
								// Output will mark the chunk duplicate and
								// the payload is never needed. Dup here only
								// skips Compress — Output reassigns it.
								if sm.Put(ch.Hash, struct{}{}) {
									ch.Dup = true
								}
								Compress(ch)
								ww.Push(ch)
							}
						},
						Deps: []swan.Dep{swan.Pop(q), swan.Push(writeQ), swan.MapWrite(seen)},
					})
				}
				coarses = coarses[n:]
				frag.SpawnBatch(children)
			}
		}, swan.Push(writeQ), swan.MapWrite(seen))
		f.Spawn(func(c *swan.Frame) { // Output
			pp := writeQ.BindPop(c)
			im := index.BindMap(c)
			// Intern content hashes in stream (pop) order: the first
			// occurrence of a hash gets the next id, later ones resolve
			// to it. PutIfAbsent reads only this task's private view, so
			// the assignment is the serial elision's, bit for bit.
			var nextID int64
			for !pp.Empty() {
				ch := pp.Pop()
				id, loaded := im.PutIfAbsent(ch.Hash, nextID)
				if !loaded {
					nextID++
					if ch.Compressed == nil {
						panic("dedup: first-occurrence chunk arrived without a payload (unsound dup skip)")
					}
				}
				ch.ID, ch.Dup = id, loaded
				res.Stream, res.Checksum = output(res.Stream, res.Checksum, ch, o)
			}
		}, swan.Pop(writeQ), swan.MapWrite(index))
		f.Sync()
		if writeQ.CanRecycle(f) {
			writeQ.Recycle(f) // drained: segments back to the runtime pool
		}
	})
	return res
}
