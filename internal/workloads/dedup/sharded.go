package dedup

import "repro/swan"

// Coarse is one coarse chunk entering the sharded pipeline. Stamp
// carries the open-loop harness's ingress timestamp (nanoseconds from
// the run start); it is zero when the run is unpaced.
type Coarse struct {
	Data  []byte
	Stamp int64
}

// shardOut is one coarse chunk's processed bundle leaving a shard
// worker: the refined, hashed, (conditionally) compressed fine chunks,
// still in refine order, plus the ingress stamp for latency accounting.
type shardOut struct {
	chunks []*Chunk
	stamp  int64
}

// ShardedConfig shapes a RunSharded: the fan-out geometry plus the
// optional open-loop pacing hooks (internal/bench wires them to its
// arrival generator and latency histogram; both nil means run flat
// out).
type ShardedConfig struct {
	Shards int // partitions (default 1)
	Bound  int // per-shard queue bound (default swan.DefaultShardBound)
	SegCap int // queue segment capacity (default runtime's)

	// Arrive, when set, is called in the producer before coarse chunk i
	// is pushed; it waits until the chunk's arrival time and returns
	// the ingress stamp carried through the pipeline. It receives the
	// producer's frame so a pacing sleep can run inside a Frame.Block
	// region (not holding a worker slot) while the common no-wait case
	// stays a plain call.
	Arrive func(c *swan.Frame, i int) int64
	// Complete, when set, is called on the egress consumer after a
	// coarse chunk's records are written, with its ingress stamp.
	Complete func(stamp int64)
}

// fnv1a is the 64-bit FNV-1a content hash used as the shard partition
// key. Inlined (rather than hash/fnv) so routing allocates nothing.
func fnv1a(data []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// RunSharded executes the dedup kernel through a swan.Sharded fan-out:
// coarse chunks are partitioned by their FNV-1a content hash, each
// shard worker refines, hashes and compresses its chunks with a
// shard-local duplicate filter, and the egress consumer writes records
// in arrival order, interning content hashes exactly as the serial
// elision does. The Result is byte-identical to RunSerial for every
// shard count, worker count and scheduler policy.
//
// The shard-local "seen" sets are sound for the same reason the
// hypermap's Put is in RunHyperqueue: a shard's arrival order is a
// subsequence of the global arrival order, so a locally-seen hash has
// an earlier global occurrence — Output will resolve the duplicate and
// never needs the skipped payload. A hash first seen on this shard but
// earlier on another is merely compressed redundantly; the egress
// interning, which replays the global order, still classifies it
// correctly.
func RunSharded(rt *swan.Runtime, data []byte, o Options, cfg ShardedConfig) Result {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	var res Result
	rt.Run(func(f *swan.Frame) {
		s := swan.NewSharded(f,
			swan.ShardConfig{Shards: cfg.Shards, Bound: cfg.Bound, SegCap: cfg.SegCap, Name: "dedup.sharded"},
			func(c Coarse) uint64 { return fnv1a(c.Data) },
			func(c *swan.Frame, shard int) func(Coarse) shardOut {
				seen := make(map[[32]byte]struct{})
				return func(in Coarse) shardOut {
					fines := Refine(in.Data, o)
					chunks := make([]*Chunk, len(fines))
					for j, fine := range fines {
						ch := &Chunk{Data: fine}
						HashChunk(ch, o.DedupRounds)
						if _, dup := seen[ch.Hash]; dup {
							// Sound dup: an earlier chunk on this shard —
							// hence earlier in global order — carries the
							// payload. Skipping Compress is the only effect;
							// the egress reassigns Dup from its own view.
							ch.Dup = true
						} else {
							seen[ch.Hash] = struct{}{}
						}
						Compress(ch)
						chunks[j] = ch
					}
					return shardOut{chunks: chunks, stamp: in.Stamp}
				}
			})
		f.Spawn(func(c *swan.Frame) {
			p := s.In().BindPush(c)
			var stamp int64
			for i, coarse := range Fragment(data, o) {
				if cfg.Arrive != nil {
					stamp = cfg.Arrive(c, i)
				}
				p.Push(Coarse{Data: coarse, Stamp: stamp})
			}
		}, swan.Push(s.In()))
		s.Launch(f)
		f.Spawn(func(c *swan.Frame) { // Output: serial, arrival order
			p := s.Out().BindPop(c)
			// Intern content hashes in pop order — the serial elision's id
			// assignment, bit for bit (compare RunHyperqueue's Output).
			index := make(map[[32]byte]int64)
			var nextID int64
			for !p.Empty() {
				bundle := p.Pop()
				for _, ch := range bundle.chunks {
					id, loaded := index[ch.Hash]
					if !loaded {
						id = nextID
						index[ch.Hash] = id
						nextID++
						if ch.Compressed == nil {
							panic("dedup: first-occurrence chunk arrived without a payload (unsound dup skip)")
						}
					}
					ch.ID, ch.Dup = id, loaded
					res.Stream, res.Checksum = output(res.Stream, res.Checksum, ch, o)
				}
				if cfg.Complete != nil {
					cfg.Complete(bundle.stamp)
				}
			}
		}, swan.Pop(s.Out()))
		f.Sync()
	})
	return res
}
