package ferret

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/rng"
)

// Segmented is an image with per-pixel cluster labels.
type Segmented struct {
	Img    *Image
	Labels []uint8
	K      int
}

// SegFeatures is the raw per-segment statistics from the extraction
// stage.
type SegFeatures struct {
	Img  *Image
	Segs []SegStat
}

// SegStat summarizes one segment.
type SegStat struct {
	Count  int
	Mean   float64
	Hist   [16]float64
	Moment [4]float64
}

// Signature is the vectorized form used for ranking: a weighted set of
// points, one per segment (an Earth-Mover's-Distance-style signature).
type Signature struct {
	Img     *Image
	Weights []float64
	Points  [][]float64 // len == len(Weights), dim = 20 (16 hist + 4 moments)
}

// Match is one ranked database hit.
type Match struct {
	DBIndex int
	Dist    float64
}

// Result is a ranked query.
type Result struct {
	ImgID int
	Name  string
	Top   []Match
}

// Segment clusters pixel intensities with k-means (Lloyd's algorithm,
// fixed iteration count) — the Segmentation stage.
func Segment(img *Image, k int) *Segmented {
	n := len(img.Pix)
	labels := make([]uint8, n)
	cent := make([]float64, k)
	for i := range cent {
		cent[i] = float64(255*i) / float64(k-1)
	}
	sum := make([]float64, k)
	cnt := make([]int, k)
	for iter := 0; iter < 4; iter++ {
		for i := range sum {
			sum[i], cnt[i] = 0, 0
		}
		for i, p := range img.Pix {
			v := float64(p)
			best, bd := 0, math.Abs(v-cent[0])
			for j := 1; j < k; j++ {
				if d := math.Abs(v - cent[j]); d < bd {
					best, bd = j, d
				}
			}
			labels[i] = uint8(best)
			sum[best] += v
			cnt[best]++
		}
		for j := 0; j < k; j++ {
			if cnt[j] > 0 {
				cent[j] = sum[j] / float64(cnt[j])
			}
		}
	}
	return &Segmented{Img: img, Labels: labels, K: k}
}

// Extract computes per-segment statistics — the (cheap) feature
// extraction stage.
func Extract(s *Segmented) *SegFeatures {
	segs := make([]SegStat, s.K)
	for i, p := range s.Img.Pix {
		st := &segs[s.Labels[i]]
		st.Count++
		st.Mean += float64(p)
		st.Hist[p>>4]++
	}
	for i := range segs {
		if segs[i].Count > 0 {
			segs[i].Mean /= float64(segs[i].Count)
		}
	}
	return &SegFeatures{Img: s.Img, Segs: segs}
}

// Vectorize turns segment statistics into a normalized EMD signature —
// the Vectorizing stage. The iterative refinement (power-iteration style
// re-weighting over the histogram) reproduces the stage's 16% share of
// serial time in Table 1.
func Vectorize(f *SegFeatures, iters int) *Signature {
	sig := &Signature{Img: f.Img}
	for si := range f.Segs {
		st := &f.Segs[si]
		if st.Count == 0 {
			continue
		}
		point := make([]float64, 20)
		// Normalized histogram.
		for i, h := range st.Hist {
			point[i] = h / float64(st.Count)
		}
		// Central moments 1..4 of pixel intensity within the segment,
		// iteratively refined (the knob that sets this stage's cost).
		m := st.Mean / 255
		for it := 0; it < iters; it++ {
			var acc [4]float64
			for i := 0; i < 16; i++ {
				d := float64(i)/15 - m
				w := point[i]
				acc[0] += w * d
				acc[1] += w * d * d
				acc[2] += w * d * d * d
				acc[3] += w * d * d * d * d
			}
			// Re-weight the histogram toward high-information bins.
			var norm float64
			for i := 0; i < 16; i++ {
				d := float64(i)/15 - m
				point[i] = point[i] * (1 + 0.01*d*d)
				norm += point[i]
			}
			for i := 0; i < 16; i++ {
				point[i] /= norm
			}
			copy(point[16:], acc[:])
		}
		sig.Points = append(sig.Points, point)
		sig.Weights = append(sig.Weights, float64(st.Count)/float64(len(f.Img.Pix)))
	}
	return sig
}

// DB is the ranking database: a set of reference signatures.
type DB struct {
	Weights [][]float64
	Points  [][][]float64
}

func newDB(p Params) *DB {
	r := rng.New(p.Seed ^ 0xdb)
	db := &DB{}
	for e := 0; e < p.DBSize; e++ {
		k := 3 + r.Intn(4)
		ws := make([]float64, k)
		pts := make([][]float64, k)
		var norm float64
		for i := 0; i < k; i++ {
			ws[i] = 0.1 + r.Float64()
			norm += ws[i]
			pt := make([]float64, 20)
			for j := range pt {
				pt[j] = r.Float64()
			}
			pts[i] = pt
		}
		for i := range ws {
			ws[i] /= norm
		}
		db.Weights = append(db.Weights, ws)
		db.Points = append(db.Points, pts)
	}
	return db
}

// flowEdge is one candidate flow assignment in the greedy EMD.
type flowEdge struct {
	i, j int
	d    float64
}

// emdScratch holds per-task reusable buffers: Rank calls emdGreedy once
// per database entry, and per-call allocation would dominate the run with
// garbage-collector work at high core counts.
type emdScratch struct {
	edges  []flowEdge
	r1, r2 []float64
}

// emdGreedy approximates the Earth Mover's Distance between two weighted
// point sets with greedy flow assignment — the per-candidate cost of the
// Ranking stage.
func emdGreedy(s *emdScratch, w1 []float64, p1 [][]float64, w2 []float64, p2 [][]float64) float64 {
	edges := s.edges[:0]
	for i := range p1 {
		for j := range p2 {
			var d float64
			a, b := p1[i], p2[j]
			for k := range a {
				diff := a[k] - b[k]
				d += diff * diff
			}
			edges = append(edges, flowEdge{i, j, math.Sqrt(d)})
		}
	}
	s.edges = edges
	// Insertion sort: edge sets are tiny (≤ ~50) and a concrete sort
	// avoids sort.Slice's reflection overhead in the hottest loop.
	for i := 1; i < len(edges); i++ {
		e := edges[i]
		j := i - 1
		for j >= 0 && edges[j].d > e.d {
			edges[j+1] = edges[j]
			j--
		}
		edges[j+1] = e
	}
	s.r1 = append(s.r1[:0], w1...)
	s.r2 = append(s.r2[:0], w2...)
	r1, r2 := s.r1, s.r2
	var cost, flow float64
	for _, e := range edges {
		f := math.Min(r1[e.i], r2[e.j])
		if f <= 0 {
			continue
		}
		cost += f * e.d
		flow += f
		r1[e.i] -= f
		r2[e.j] -= f
	}
	if flow == 0 {
		return math.Inf(1)
	}
	return cost / flow
}

// Rank scores the query signature against every database entry and keeps
// the best TopK — the dominant Ranking stage.
func Rank(sig *Signature, db *DB, topK int) *Result {
	res := &Result{ImgID: sig.Img.ID, Name: sig.Img.Name}
	var scratch emdScratch
	for e := range db.Weights {
		d := emdGreedy(&scratch, sig.Weights, sig.Points, db.Weights[e], db.Points[e])
		if len(res.Top) < topK {
			res.Top = append(res.Top, Match{e, d})
			if len(res.Top) == topK {
				sort.Slice(res.Top, func(a, b int) bool { return res.Top[a].Dist < res.Top[b].Dist })
			}
			continue
		}
		if d < res.Top[topK-1].Dist {
			res.Top[topK-1] = Match{e, d}
			for i := topK - 1; i > 0 && res.Top[i].Dist < res.Top[i-1].Dist; i-- {
				res.Top[i], res.Top[i-1] = res.Top[i-1], res.Top[i]
			}
		}
	}
	if len(res.Top) < topK {
		sort.Slice(res.Top, func(a, b int) bool { return res.Top[a].Dist < res.Top[b].Dist })
	}
	return res
}

// FormatResult renders one query's output line — the (tiny) Output stage.
func FormatResult(r *Result) string {
	b := make([]byte, 0, 16+12*len(r.Top))
	b = append(b, r.Name...)
	b = append(b, ':')
	for _, m := range r.Top {
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(m.DBIndex), 10)
		b = append(b, '(')
		b = strconv.AppendFloat(b, m.Dist, 'f', 4, 64)
		b = append(b, ')')
	}
	b = append(b, '\n')
	return string(b)
}

// Process runs the four middle stages on one image.
func Process(img *Image, p Params, db *DB) *Result {
	return Rank(Vectorize(Extract(Segment(img, p.Clusters)), p.VectIters), db, p.TopK)
}
