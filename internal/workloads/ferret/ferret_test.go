package ferret

import (
	"bytes"
	"testing"

	"repro/swan"
)

func tinyParams() Params {
	p := DefaultParams()
	p.NumImages = 40
	p.DBSize = 60
	p.VectIters = 4
	return p
}

func TestCorpusDeterministic(t *testing.T) {
	p := tinyParams()
	a, b := NewCorpus(p), NewCorpus(p)
	ia, ib := a.LoadImage(7), b.LoadImage(7)
	if !bytes.Equal(ia.Pix, ib.Pix) {
		t.Fatal("image generation not deterministic")
	}
	if len(a.DB.Weights) != p.DBSize {
		t.Fatalf("db has %d entries, want %d", len(a.DB.Weights), p.DBSize)
	}
}

func TestWalkVisitsAllOnce(t *testing.T) {
	p := tinyParams()
	c := NewCorpus(p)
	seen := map[int]int{}
	c.Root.Walk(func(id int) { seen[id]++ })
	if len(seen) != p.NumImages {
		t.Fatalf("walk visited %d images, want %d", len(seen), p.NumImages)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("image %d visited %d times", id, n)
		}
	}
}

func TestIteratorMatchesWalk(t *testing.T) {
	c := NewCorpus(tinyParams())
	var walked []int
	c.Root.Walk(func(id int) { walked = append(walked, id) })
	next := c.Root.Iterator()
	for i := 0; ; i++ {
		id, ok := next()
		if !ok {
			if i != len(walked) {
				t.Fatalf("iterator yielded %d, walk yielded %d", i, len(walked))
			}
			break
		}
		if i >= len(walked) || id != walked[i] {
			t.Fatalf("iterator[%d] = %d, walk[%d] = %d", i, id, i, walked[i])
		}
	}
}

func TestSegmentLabelsValid(t *testing.T) {
	c := NewCorpus(tinyParams())
	img := c.LoadImage(0)
	s := Segment(img, 5)
	if len(s.Labels) != len(img.Pix) {
		t.Fatal("label count mismatch")
	}
	for _, l := range s.Labels {
		if int(l) >= 5 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestSegmentSeparatesIntensities(t *testing.T) {
	// A half-dark, half-bright image must land in different clusters.
	img := &Image{W: 16, H: 16, Pix: make([]byte, 256)}
	for i := 128; i < 256; i++ {
		img.Pix[i] = 250
	}
	s := Segment(img, 2)
	if s.Labels[0] == s.Labels[255] {
		t.Fatal("k-means merged dark and bright pixels")
	}
}

func TestExtractStatistics(t *testing.T) {
	img := &Image{W: 4, H: 4, Pix: []byte{0, 0, 0, 0, 255, 255, 255, 255, 0, 0, 0, 0, 255, 255, 255, 255}}
	s := Segment(img, 2)
	f := Extract(s)
	var total int
	for _, st := range f.Segs {
		total += st.Count
	}
	if total != 16 {
		t.Fatalf("segment counts sum to %d, want 16", total)
	}
}

func TestVectorizeNormalized(t *testing.T) {
	c := NewCorpus(tinyParams())
	sig := Vectorize(Extract(Segment(c.LoadImage(1), 5)), 8)
	var wsum float64
	for _, w := range sig.Weights {
		wsum += w
	}
	if wsum < 0.99 || wsum > 1.01 {
		t.Fatalf("signature weights sum to %v, want 1", wsum)
	}
	for _, pt := range sig.Points {
		if len(pt) != 20 {
			t.Fatalf("point dim %d, want 20", len(pt))
		}
	}
}

func TestEMDProperties(t *testing.T) {
	w := []float64{0.5, 0.5}
	p1 := [][]float64{{0, 0}, {1, 1}}
	if d := emdGreedy(&emdScratch{}, w, p1, w, p1); d != 0 {
		t.Fatalf("EMD to self = %v, want 0", d)
	}
	p2 := [][]float64{{2, 2}, {3, 3}}
	if d := emdGreedy(&emdScratch{}, w, p1, w, p2); d <= 0 {
		t.Fatalf("EMD to distinct set = %v, want > 0", d)
	}
	// Symmetry of the greedy approximation on equal-size sets.
	d12 := emdGreedy(&emdScratch{}, w, p1, w, p2)
	d21 := emdGreedy(&emdScratch{}, w, p2, w, p1)
	if d12 != d21 {
		t.Fatalf("EMD asymmetric: %v vs %v", d12, d21)
	}
}

func TestRankTopKSortedAndSelfFound(t *testing.T) {
	p := tinyParams()
	c := NewCorpus(p)
	sig := Vectorize(Extract(Segment(c.LoadImage(3), p.Clusters)), p.VectIters)
	r := Rank(sig, c.DB, p.TopK)
	if len(r.Top) != p.TopK {
		t.Fatalf("got %d matches, want %d", len(r.Top), p.TopK)
	}
	for i := 1; i < len(r.Top); i++ {
		if r.Top[i].Dist < r.Top[i-1].Dist {
			t.Fatal("top-K not sorted by distance")
		}
	}
}

func TestRankBestIsGlobalMin(t *testing.T) {
	p := tinyParams()
	c := NewCorpus(p)
	sig := Vectorize(Extract(Segment(c.LoadImage(5), p.Clusters)), p.VectIters)
	r := Rank(sig, c.DB, 1)
	best := r.Top[0].Dist
	for e := range c.DB.Weights {
		d := emdGreedy(&emdScratch{}, sig.Weights, sig.Points, c.DB.Weights[e], c.DB.Points[e])
		if d < best {
			t.Fatalf("entry %d has dist %v < reported best %v", e, d, best)
		}
	}
}

func TestSerialDeterministic(t *testing.T) {
	p := tinyParams()
	c := NewCorpus(p)
	a := RunSerial(c, p)
	b := RunSerial(c, p)
	if !bytes.Equal(a.Text, b.Text) || a.Checksum != b.Checksum {
		t.Fatal("serial run not deterministic")
	}
	if a.Queries != p.NumImages {
		t.Fatalf("processed %d queries, want %d", a.Queries, p.NumImages)
	}
}

func TestAllModelsMatchSerial(t *testing.T) {
	p := tinyParams()
	c := NewCorpus(p)
	ref := RunSerial(c, p)
	check := func(name string, got *Output) {
		t.Helper()
		if got.Queries != ref.Queries {
			t.Fatalf("%s: %d queries, want %d", name, got.Queries, ref.Queries)
		}
		if !bytes.Equal(got.Text, ref.Text) {
			t.Fatalf("%s: output text differs from serial", name)
		}
		if got.Checksum != ref.Checksum {
			t.Fatalf("%s: checksum differs", name)
		}
	}
	check("pthreads", RunPthreads(c, p, 6, 16))
	check("tbb", RunTBB(c, p, 6, 12))
	check("objects", RunObjects(swan.New(8), c, p))
	check("hyperqueue", RunHyperqueue(swan.New(8), c, p, 16))
	check("hyperqueue-1w", RunHyperqueue(swan.New(1), c, p, 16))
}

func TestCharacterizeStages(t *testing.T) {
	// Uses the calibrated default stage costs (smaller image count) so the
	// Table 1 shape — ranking dominant — is actually observable.
	p := DefaultParams()
	p.NumImages = 32
	c := NewCorpus(p)
	rows := CharacterizeStages(c, p)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	var pct float64
	for _, r := range rows {
		if r.Seconds < 0 {
			t.Fatalf("stage %s has negative time", r.Name)
		}
		pct += r.Percent
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("percentages sum to %v", pct)
	}
	// Ranking must dominate, as in Table 1.
	if rows[4].Percent < 40 {
		t.Errorf("Ranking is %.1f%% of serial time; expected the dominant stage", rows[4].Percent)
	}
}
