package ferret

import (
	"time"

	"repro/internal/pipeline"
	"repro/swan"
)

// Output is the final serial stage's product.
type Output struct {
	Text     []byte
	Queries  int
	Checksum uint64
}

func (o *Output) add(r *Result) {
	line := FormatResult(r)
	o.Text = append(o.Text, line...)
	o.Queries++
	for i := 0; i < len(line); i++ {
		o.Checksum = o.Checksum*31 + uint64(line[i])
	}
}

// RunSerial is the reference implementation and serial elision.
func RunSerial(c *Corpus, p Params) *Output {
	out := &Output{}
	c.Root.Walk(func(id int) {
		out.add(Process(c.LoadImage(id), p, c.DB))
	})
	return out
}

// StageTime is one row of the Table 1 characterization.
type StageTime struct {
	Name       string
	Iterations int
	Seconds    float64
	Percent    float64
}

// CharacterizeStages measures the serial per-stage breakdown — the
// harness that regenerates Table 1.
func CharacterizeStages(c *Corpus, p Params) []StageTime {
	rows := []StageTime{
		{Name: "Input", Iterations: 1},
		{Name: "Segmentation"},
		{Name: "Extraction"},
		{Name: "Vectorizing"},
		{Name: "Ranking"},
		{Name: "Output"},
	}
	out := &Output{}
	c.Root.Walk(func(id int) {
		t0 := time.Now()
		img := c.LoadImage(id)
		t1 := time.Now()
		s := Segment(img, p.Clusters)
		t2 := time.Now()
		f := Extract(s)
		t3 := time.Now()
		sig := Vectorize(f, p.VectIters)
		t4 := time.Now()
		r := Rank(sig, c.DB, p.TopK)
		t5 := time.Now()
		out.add(r)
		t6 := time.Now()
		rows[0].Seconds += t1.Sub(t0).Seconds()
		rows[1].Seconds += t2.Sub(t1).Seconds()
		rows[2].Seconds += t3.Sub(t2).Seconds()
		rows[3].Seconds += t4.Sub(t3).Seconds()
		rows[4].Seconds += t5.Sub(t4).Seconds()
		rows[5].Seconds += t6.Sub(t5).Seconds()
		for i := 1; i < 6; i++ {
			rows[i].Iterations++
		}
	})
	var total float64
	for _, r := range rows {
		total += r.Seconds
	}
	for i := range rows {
		rows[i].Percent = 100 * rows[i].Seconds / total
	}
	return rows
}

// RunPthreads is the PARSEC pthreads shape: the traversal feeds a queue
// as files are discovered; each middle stage has its own (oversubscribed)
// thread pool; Output restores order.
func RunPthreads(c *Corpus, p Params, workersPerStage, queueCap int) *Output {
	out := &Output{}
	pipeline.RunPthreads(
		func(emit func(any)) { // Input: natural recursive traversal
			c.Root.Walk(func(id int) { emit(c.LoadImage(id)) })
		},
		[]pipeline.Stage{
			{Name: "seg", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				emit(Segment(d.(*Image), p.Clusters))
			}},
			{Name: "extract", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				emit(Extract(d.(*Segmented)))
			}},
			{Name: "vect", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				emit(Vectorize(d.(*SegFeatures), p.VectIters))
			}},
			{Name: "rank", Workers: workersPerStage, Fn: func(d any, emit func(any)) {
				emit(Rank(d.(*Signature), c.DB, p.TopK))
			}},
			{Name: "out", Ordered: true, Fn: func(d any, emit func(any)) {
				out.add(d.(*Result))
			}},
		},
		queueCap,
	)
	return out
}

// RunTBB is the structured TBB shape: the input filter needs the
// explicit-state iterator (the restructuring the paper calls tedious),
// and each stage is a 1:1 filter.
func RunTBB(c *Corpus, p Params, workers, tokens int) *Output {
	out := &Output{}
	next := c.Root.Iterator()
	pipeline.RunTBB(
		func() any {
			id, ok := next()
			if !ok {
				return nil
			}
			return c.LoadImage(id)
		},
		[]pipeline.Filter{
			{Name: "seg", Mode: pipeline.Parallel, Fn: func(d any) any {
				return Segment(d.(*Image), p.Clusters)
			}},
			{Name: "extract", Mode: pipeline.Parallel, Fn: func(d any) any {
				return Extract(d.(*Segmented))
			}},
			{Name: "vect", Mode: pipeline.Parallel, Fn: func(d any) any {
				return Vectorize(d.(*SegFeatures), p.VectIters)
			}},
			{Name: "rank", Mode: pipeline.Parallel, Fn: func(d any) any {
				return Rank(d.(*Signature), c.DB, p.TopK)
			}},
			{Name: "out", Mode: pipeline.SerialInOrder, Fn: func(d any) any {
				out.add(d.(*Result))
				return d
			}},
		},
		workers, tokens,
	)
	return out
}

// RunObjects is the plain task-dataflow version. As in the paper's
// "objects" experiment the input stage is *not* restructured: the
// traversal runs to completion before processing tasks are spawned, so
// input time is not overlapped — the scalability handicap Figure 8
// shows.
func RunObjects(rt *swan.Runtime, c *Corpus, p Params) *Output {
	out := &Output{}
	rt.Run(func(f *swan.Frame) {
		var images []*Image
		c.Root.Walk(func(id int) { images = append(images, c.LoadImage(id)) }) // serial input
		sink := swan.NewVersioned(&Output{})
		for _, img := range images {
			img := img
			res := swan.NewVersioned[*Result](nil)
			f.Spawn(func(g *swan.Frame) {
				res.Set(g, Process(img, p, c.DB))
			}, swan.Out(res))
			f.Spawn(func(g *swan.Frame) {
				sink.Get(g).add(res.Get(g))
			}, swan.In(res), swan.InOut(sink))
		}
		f.Sync()
		out = sink.Get(f)
	})
	return out
}

// RunHyperqueue is the paper's version: a hyperqueue between Input and
// Segmentation lets the unrestructured recursive traversal overlap the
// rest of the pipeline, and a second hyperqueue between Ranking and
// Output feeds one coarse output task that iterates over all queue
// elements (§6.1). Every stage loop runs on a bound handle, and both
// queues are recycled once drained, so a reused runtime (paperbench
// repetitions) starts its next run on warm segments.
func RunHyperqueue(rt *swan.Runtime, c *Corpus, p Params, segCap int) *Output {
	out := &Output{}
	rt.Run(func(f *swan.Frame) {
		outQ := swan.NewQueueWithCapacity[*Result](f, segCap)
		f.Spawn(func(mid *swan.Frame) {
			imgQ := swan.NewQueueWithCapacity[*Image](mid, segCap)
			mid.Spawn(func(g *swan.Frame) { // Input: natural recursion
				pw := imgQ.BindPush(g)
				c.Root.Walk(func(id int) { pw.Push(c.LoadImage(id)) })
			}, swan.Push(imgQ))
			mid.Spawn(func(g *swan.Frame) { // dispatch middle stages
				// Batched fan-out: take the head image (blocking — Empty
				// has settled that one exists), opportunistically gather
				// up to dispatchBatch-1 more that are already queued, and
				// publish the whole wave of Process tasks with one
				// batched spawn. Result order is unchanged: SpawnN
				// prepares the outQ push privileges in index order.
				dispatchBatch := p.DispatchBatch
				if dispatchBatch < 1 {
					dispatchBatch = 8
				}
				pp := imgQ.BindPop(g)
				for !pp.Empty() {
					batch := make([]*Image, 1, dispatchBatch)
					batch[0] = pp.Pop()
					for len(batch) < dispatchBatch {
						img, ok := pp.TryPop()
						if !ok {
							break
						}
						batch = append(batch, img)
					}
					g.SpawnN(len(batch), func(h *swan.Frame, i int) {
						outQ.Push(h, Process(batch[i], p, c.DB))
					}, swan.Push(outQ))
				}
			}, swan.Pop(imgQ), swan.Push(outQ))
			mid.Sync()
			if imgQ.CanRecycle(mid) {
				imgQ.Recycle(mid) // drained: return its segments to the pool
			}
		}, swan.Push(outQ))
		f.Spawn(func(g *swan.Frame) { // Output: one task iterating the queue
			pp := outQ.BindPop(g)
			for !pp.Empty() {
				out.add(pp.Pop())
			}
		}, swan.Pop(outQ))
		f.Sync()
		if outQ.CanRecycle(f) {
			outQ.Recycle(f)
		}
	})
	return out
}
