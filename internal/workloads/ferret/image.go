// Package ferret reproduces the PARSEC ferret kernel the paper evaluates
// in §6.1: content-based similarity search over an image corpus through a
// 6-stage pipeline — Input (recursive directory traversal), Segmentation,
// Feature extraction, Vectorizing, Ranking and Output. The first and last
// stages are serial; the middle four are stateless and parallel.
//
// The paper's corpus (PARSEC "native": 3,500 images plus an image
// database) is proprietary-to-the-suite bulk data; here both the query
// corpus and the ranking database are synthesized deterministically. What
// the evaluation depends on — the stage time proportions of Table 1 and
// the serial-stage structure — is preserved by construction and verified
// by the Table 1 harness.
package ferret

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/rng"
)

// Image is one grayscale query image.
type Image struct {
	ID   int
	Name string
	W, H int
	Pix  []byte
}

// Dir is a node of the synthetic directory tree the Input stage
// traverses. Leaves carry image ids; images are materialized during
// traversal, modelling the disk read.
type Dir struct {
	Name    string
	Subdirs []*Dir
	Images  []int
}

// Corpus is the full synthetic dataset: a directory tree of query images
// and the ranking database.
type Corpus struct {
	Root   *Dir
	NumImg int
	Seed   uint64
	W, H   int
	DB     *DB
}

// Params sizes the workload. The defaults are calibrated so that the
// serial stage-time split approximates Table 1 of the paper
// (input 4.5%, segment 3.6%, extract 0.35%, vectorize 16.2%,
// rank 75.3%, output 0.1%).
type Params struct {
	NumImages int
	ImageDim  int // square images, ImageDim×ImageDim pixels
	DBSize    int // entries in the ranking database
	TopK      int // matches reported per query
	Clusters  int // segmentation clusters
	VectIters int // vectorizing refinement passes
	Seed      uint64

	// DispatchBatch is how many queued images RunHyperqueue's dispatch
	// stage gathers per batched spawn wave. Zero means the default (8).
	// DefaultParams also honours the REPRO_DISPATCH_BATCH environment
	// variable, so ablations can sweep it without recompiling. Result
	// order is batch-size independent.
	DispatchBatch int
}

// DefaultParams returns the calibrated workload size (about a second of
// serial work; scale NumImages for longer runs).
func DefaultParams() Params {
	p := Params{
		NumImages: 256,
		ImageDim:  48,
		DBSize:    2000,
		TopK:      10,
		Clusters:  5,
		VectIters: 1200,
		Seed:      12345,
	}
	if s := os.Getenv("REPRO_DISPATCH_BATCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			p.DispatchBatch = n
		} else {
			fmt.Fprintf(os.Stderr, "ferret: ignoring invalid REPRO_DISPATCH_BATCH=%q (want integer >= 1)\n", s)
		}
	}
	return p
}

// NewCorpus builds the directory tree and ranking database.
func NewCorpus(p Params) *Corpus {
	r := rng.New(p.Seed)
	c := &Corpus{NumImg: p.NumImages, Seed: p.Seed, W: p.ImageDim, H: p.ImageDim}
	next := 0
	// A three-level tree with images spread over the leaves, so the
	// recursive traversal is non-trivial.
	c.Root = &Dir{Name: "corpus"}
	for next < p.NumImages {
		l1 := &Dir{Name: fmt.Sprintf("d%02d", len(c.Root.Subdirs))}
		c.Root.Subdirs = append(c.Root.Subdirs, l1)
		for b := 0; b < 4 && next < p.NumImages; b++ {
			l2 := &Dir{Name: fmt.Sprintf("%s/s%d", l1.Name, b)}
			l1.Subdirs = append(l1.Subdirs, l2)
			n := 4 + r.Intn(8)
			for k := 0; k < n && next < p.NumImages; k++ {
				l2.Images = append(l2.Images, next)
				next++
			}
		}
	}
	c.DB = newDB(p)
	return c
}

// LoadImage materializes image id — the Input stage's per-file work
// (decode + two smoothing passes stand in for JPEG decode).
func (c *Corpus) LoadImage(id int) *Image {
	r := rng.New(c.Seed*1_000_003 + uint64(id))
	img := &Image{ID: id, Name: fmt.Sprintf("img%05d.ppm", id), W: c.W, H: c.H}
	img.Pix = make([]byte, c.W*c.H)
	// Piecewise-constant patches plus noise give the segmentation stage
	// real cluster structure.
	levels := [5]byte{20, 70, 128, 180, 235}
	patch := 8 + r.Intn(8)
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			base := levels[((x/patch)+2*(y/patch)+id)%5]
			img.Pix[y*c.W+x] = base + byte(r.Intn(25))
		}
	}
	// Two box-blur passes (the "decode" cost of the input stage).
	for pass := 0; pass < 2; pass++ {
		blur(img.Pix, c.W, c.H)
	}
	return img
}

func blur(pix []byte, w, h int) {
	out := make([]byte, len(pix))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum, n int
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx >= 0 && nx < w && ny >= 0 && ny < h {
						sum += int(pix[ny*w+nx])
						n++
					}
				}
			}
			out[y*w+x] = byte(sum / n)
		}
	}
	copy(pix, out)
}

// Walk traverses the directory tree depth-first, invoking visit for every
// image id in traversal order. This is the paper's "recursive directory
// traversal that collects image files" — the natural recursive form that
// pthreads and hyperqueue versions can use directly.
func (d *Dir) Walk(visit func(id int)) {
	for _, s := range d.Subdirs {
		s.Walk(visit)
	}
	for _, id := range d.Images {
		visit(id)
	}
}

// Iterator returns a restartable, explicit-state traversal of the tree —
// the restructuring TBB and plain task-dataflow versions require (§6.1:
// "its internal state must be made explicit... tedious and error-prone").
func (d *Dir) Iterator() func() (int, bool) {
	type frame struct {
		dir *Dir
		sub int
		img int
	}
	stack := []frame{{dir: d}}
	return func() (int, bool) {
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.sub < len(f.dir.Subdirs) {
				f.sub++
				stack = append(stack, frame{dir: f.dir.Subdirs[f.sub-1]})
				continue
			}
			if f.img < len(f.dir.Images) {
				f.img++
				return f.dir.Images[f.img-1], true
			}
			stack = stack[:len(stack)-1]
		}
		return 0, false
	}
}
