// Package streamstats is the sensor-stream statistics workload behind
// examples/streamstats: per-sensor producers bulk-write samples through
// a hyperqueue (the §5.2 slice API) while folding per-sensor running
// moments into a swan.Reducer, and a serial consumer computes the
// order-dependent exponentially weighted moving average from the
// queue's deterministic stream order.
//
// The reducer fold is exactly deterministic despite floating point:
// every sensor owns one slot of the Partials array, so each slot has a
// single writer and every merge the runtime performs is a disjoint
// union — no floating-point addition ever reassociates. The EWMA is not
// associative at all, which is why it lives on the serial consumer: the
// hyperqueue fixes its input order to the serial elision's. Together
// the whole Result is bit-identical across schedules, policies and
// worker counts, which Digest makes checkable.
package streamstats

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/swan"
)

// MaxSensors bounds the sensor count so Partials can be a fixed-size
// value type (a requirement for a cheap, allocation-free monoid).
const MaxSensors = 64

// Moments holds running statistics of one sensor's stream: count, mean
// and second central moment (Welford), plus the observed range.
type Moments struct {
	N        int64
	Mean, M2 float64
	Min, Max float64
}

// Add folds one observation into the moments (Welford's update).
func (m *Moments) Add(v float64) {
	if m.N == 0 {
		m.Min, m.Max = v, v
	} else if v < m.Min {
		m.Min = v
	} else if v > m.Max {
		m.Max = v
	}
	m.N++
	d := v - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (v - m.Mean)
}

// Merge folds another moments value in (the parallel Welford merge of
// Chan et al.). Exact when either side is empty — the only case the
// streamstats reducer produces, since each slot has one writer.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	n1, n2 := float64(m.N), float64(o.N)
	d := o.Mean - m.Mean
	m.N += o.N
	m.Mean += d * n2 / (n1 + n2)
	m.M2 += o.M2 + d*d*n1*n2/(n1+n2)
}

// Stddev reports the sample standard deviation.
func (m Moments) Stddev() float64 {
	if m.N < 2 {
		return 0
	}
	return math.Sqrt(m.M2 / float64(m.N-1))
}

// Partials is the reducer's view value: one moments slot per sensor.
type Partials struct {
	S [MaxSensors]Moments
}

// PartialsMonoid is the slot-wise merge monoid. It is exactly
// associative for the disjoint-slot write pattern Run uses (each merge
// meets at most one non-empty side per slot).
func PartialsMonoid() swan.Monoid[Partials] {
	return swan.Monoid[Partials]{
		Identity: func() Partials { return Partials{} },
		Combine: func(into *Partials, from Partials) {
			for i := range into.S {
				into.S[i].Merge(from.S[i])
			}
		},
	}
}

// Config sizes one run.
type Config struct {
	Samples int // total samples across all sensors
	Sensors int // parallel producers (≤ MaxSensors)
	SegCap  int // queue segment capacity (0 = 4096)
	Batch   int // consumer read-slice batch (0 = 1024)
}

func (c *Config) defaults() {
	if c.SegCap == 0 {
		c.SegCap = 4096
	}
	if c.Batch == 0 {
		c.Batch = 1024
	}
}

// Result is one run's complete output: the serial-order EWMA from the
// queue consumer and the per-sensor moments from the reducer.
type Result struct {
	Count   int64
	EWMA    float64
	Sensors []Moments
}

// Total merges every sensor's moments into one (exact merges are not
// guaranteed here — this is a display aggregate, not part of Digest).
func (r Result) Total() Moments {
	var t Moments
	for _, m := range r.Sensors {
		t.Merge(m)
	}
	return t
}

// Digest is a bit-exact fingerprint of the result: every float is
// folded in by its IEEE-754 bit pattern, so two digests agree iff the
// results are identical to the last bit.
func (r Result) Digest() string {
	h := sha256.New()
	var buf [8]byte
	w := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	w(uint64(r.Count))
	w(math.Float64bits(r.EWMA))
	for _, m := range r.Sensors {
		w(uint64(m.N))
		w(math.Float64bits(m.Mean))
		w(math.Float64bits(m.M2))
		w(math.Float64bits(m.Min))
		w(math.Float64bits(m.Max))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// sample reproduces sensor s's deterministic stream.
func sample(s int, r *rng.RNG) float64 { return float64(s) + r.NormFloat64() }

const ewmaAlpha = 0.001

// Run executes the pipeline on rt: cfg.Sensors producer tasks each
// bulk-push their stream through the queue and fold their moments into
// their reducer slot; the consumer computes the EWMA in serial stream
// order. The Result is deterministic — identical Digest for any
// schedule, policy or worker count (see RunSerial for the elision).
func Run(rt *swan.Runtime, cfg Config) Result {
	cfg.defaults()
	if cfg.Sensors < 1 || cfg.Sensors > MaxSensors {
		panic(fmt.Sprintf("streamstats: sensors must be 1..%d", MaxSensors))
	}
	var res Result
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[float64](f, cfg.SegCap, swan.Named("sensor.samples"))
		stats := swan.NewReducer(f, PartialsMonoid(), swan.HyperNamed("sensor.moments"))

		perSensor := cfg.Samples / cfg.Sensors
		for s := 0; s < cfg.Sensors; s++ {
			s := s
			f.Spawn(func(c *swan.Frame) {
				h := stats.BindReduce(c)
				r := rng.New(uint64(s) + 1)
				remaining := perSensor
				for remaining > 0 {
					n := 512
					if n > remaining {
						n = remaining
					}
					w := q.WriteSlice(c, n)
					for i := range w {
						w[i] = sample(s, r)
					}
					// Fold the batch into this sensor's slot before the
					// commit invalidates the write slice.
					h.Update(func(p *Partials) {
						for _, v := range w {
							p.S[s].Add(v)
						}
					})
					q.CommitWrite(c, len(w))
					remaining -= n
				}
			}, swan.Push(q), swan.Reduce(stats))
		}

		swan.DrainSlices(f, q, cfg.Batch, func(batch []float64) {
			for _, v := range batch {
				res.Count++
				res.EWMA = (1-ewmaAlpha)*res.EWMA + ewmaAlpha*v
			}
		})
		f.Sync()
		p := stats.Value(f)
		res.Sensors = append([]Moments(nil), p.S[:cfg.Sensors]...)
	})
	return res
}

// RunSerial is the sequential reference: sensor streams in spawn order,
// exactly the serial elision of Run.
func RunSerial(cfg Config) Result {
	cfg.defaults()
	if cfg.Sensors < 1 || cfg.Sensors > MaxSensors {
		panic(fmt.Sprintf("streamstats: sensors must be 1..%d", MaxSensors))
	}
	var res Result
	var p Partials
	perSensor := cfg.Samples / cfg.Sensors
	for s := 0; s < cfg.Sensors; s++ {
		r := rng.New(uint64(s) + 1)
		for i := 0; i < perSensor; i++ {
			v := sample(s, r)
			p.S[s].Add(v)
			res.Count++
			res.EWMA = (1-ewmaAlpha)*res.EWMA + ewmaAlpha*v
		}
	}
	res.Sensors = append([]Moments(nil), p.S[:cfg.Sensors]...)
	return res
}
