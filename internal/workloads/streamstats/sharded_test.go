package streamstats

import (
	"fmt"
	"testing"

	"repro/swan"
)

// TestShardedDigestDeterministic sweeps the sharded multi-sensor
// pipeline over shard counts, worker counts and both scheduler
// policies: the full Result — per-sensor moments and the
// order-dependent EWMA — must be bit-identical to the serial elision
// (RunShardedSerial, the same interleaved stream folded in arrival
// order) in every configuration.
func TestShardedDigestDeterministic(t *testing.T) {
	samples := 100_000
	if testing.Short() {
		samples = 20_000
	}
	cfg := ShardedConfig{Config: Config{Samples: samples, Sensors: 16, SegCap: 512}}
	want := RunShardedSerial(cfg).Digest()
	for _, policy := range []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine} {
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4, 8} {
				t.Run(fmt.Sprintf("policy=%v/shards=%d/workers=%d", policy, shards, workers), func(t *testing.T) {
					c := cfg
					c.Shards, c.Bound = shards, 128
					got := RunSharded(swan.NewWithPolicy(workers, policy), c).Digest()
					if got != want {
						t.Fatalf("digest %s, serial elision has %s", got, want)
					}
				})
			}
		}
	}
}

// TestShardedPacingHooks drives the Arrive/Complete hooks the latency
// harness uses: every sample's stamp must round-trip to Complete, in
// arrival order.
func TestShardedPacingHooks(t *testing.T) {
	const n = 5_000
	var next int64
	var seen []int64
	cfg := ShardedConfig{
		Config:   Config{Samples: n, Sensors: 5, SegCap: 256},
		Shards:   2,
		Arrive:   func(c *swan.Frame, i int) int64 { return int64(i) },
		Complete: func(stamp int64) { seen = append(seen, stamp) },
	}
	res := RunSharded(swan.New(4), cfg)
	if int(res.Count) != n || len(seen) != n {
		t.Fatalf("count %d, %d completions, want %d", res.Count, len(seen), n)
	}
	for _, s := range seen {
		if s != next {
			t.Fatalf("completion stamp %d, want %d (arrival order broken)", s, next)
		}
		next++
	}
}
