package streamstats

import (
	"fmt"

	"repro/internal/rng"
	"repro/swan"
)

// Sample is one sensor observation flowing through the sharded pipeline:
// the multi-sensor stream arrives interleaved (round-robin across
// sensors, as a real ingestion front-end would see it) and is fanned out
// by sensor id. Stamp carries the open-loop harness's ingress timestamp
// (nanoseconds relative to the run start); it is zero when unpaced.
type Sample struct {
	Sensor int32
	Value  float64
	Stamp  int64
}

// ShardedConfig sizes a RunSharded: the base Config plus the shard
// fan-out shape and the optional open-loop pacing hooks
// (internal/bench wires them to its arrival generator and latency
// histogram; both nil means run flat out).
type ShardedConfig struct {
	Config
	Shards int // partitions (default 1)
	Bound  int // per-shard queue bound (default swan.DefaultShardBound)

	// Arrive, when set, is called in the producer before sample i is
	// pushed; it waits until the sample's arrival time and returns the
	// ingress stamp carried through the pipeline. It receives the
	// producer's frame so a pacing sleep can run inside a Frame.Block
	// region (not holding a worker slot) while the common no-wait case
	// stays a plain call.
	Arrive func(c *swan.Frame, i int) int64
	// Complete, when set, is called on the egress consumer after sample
	// processing (the EWMA fold) with the sample's ingress stamp.
	Complete func(stamp int64)
}

// RunSharded executes the multi-sensor pipeline through a swan.Sharded
// fan-out: one producer emits the interleaved sensor stream, samples are
// partitioned by sensor id (so each sensor's sequence stays in arrival
// order on one shard), shard workers fold the per-sensor moments into
// the reducer — each sensor owns one slot, so every runtime merge stays
// a disjoint union — and the egress consumer computes the
// order-dependent EWMA in arrival order. The Result digest is identical
// for any shard count, worker count, and scheduler policy
// (RunShardedSerial is the elision).
func RunSharded(rt *swan.Runtime, cfg ShardedConfig) Result {
	cfg.defaults()
	if cfg.Sensors < 1 || cfg.Sensors > MaxSensors {
		panic(fmt.Sprintf("streamstats: sensors must be 1..%d", MaxSensors))
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	var res Result
	rt.Run(func(f *swan.Frame) {
		stats := swan.NewReducer(f, PartialsMonoid(), swan.HyperNamed("sensor.moments"))
		s := swan.NewSharded(f,
			swan.ShardConfig{Shards: cfg.Shards, Bound: cfg.Bound, SegCap: cfg.SegCap, Name: "sensor.sharded"},
			func(v Sample) uint64 { return uint64(v.Sensor) },
			func(c *swan.Frame, shard int) func(Sample) Sample {
				h := stats.BindReduce(c)
				// One closure per task, not per element: cur carries the
				// in-flight sample so the steady state stays alloc-free.
				var cur Sample
				upd := func(p *Partials) { p.S[cur.Sensor].Add(cur.Value) }
				return func(v Sample) Sample {
					cur = v
					h.Update(upd)
					return v
				}
			},
			swan.Reduce(stats))

		total := (cfg.Samples / cfg.Sensors) * cfg.Sensors
		f.Spawn(func(c *swan.Frame) {
			p := s.In().BindPush(c)
			rngs := make([]*rng.RNG, cfg.Sensors)
			for i := range rngs {
				rngs[i] = rng.New(uint64(i) + 1)
			}
			var stamp int64
			for i := 0; i < total; i++ {
				if cfg.Arrive != nil {
					stamp = cfg.Arrive(c, i)
				}
				sensor := i % cfg.Sensors
				p.Push(Sample{Sensor: int32(sensor), Value: sample(sensor, rngs[sensor]), Stamp: stamp})
			}
		}, swan.Push(s.In()))
		s.Launch(f)
		f.Spawn(func(c *swan.Frame) {
			p := s.Out().BindPop(c)
			for !p.Empty() {
				v := p.Pop()
				res.Count++
				res.EWMA = (1-ewmaAlpha)*res.EWMA + ewmaAlpha*v.Value
				if cfg.Complete != nil {
					cfg.Complete(v.Stamp)
				}
			}
		}, swan.Pop(s.Out()))
		f.Sync()
		p := stats.Value(f)
		res.Sensors = append([]Moments(nil), p.S[:cfg.Sensors]...)
	})
	return res
}

// RunShardedSerial is the sequential reference for RunSharded: the same
// round-robin interleaved stream folded in arrival order. (It differs
// from RunSerial only in the EWMA, which is order-dependent: Run's
// producers are sensor-sequential, the sharded ingress is interleaved.)
func RunShardedSerial(cfg ShardedConfig) Result {
	cfg.defaults()
	if cfg.Sensors < 1 || cfg.Sensors > MaxSensors {
		panic(fmt.Sprintf("streamstats: sensors must be 1..%d", MaxSensors))
	}
	var res Result
	var p Partials
	rngs := make([]*rng.RNG, cfg.Sensors)
	for i := range rngs {
		rngs[i] = rng.New(uint64(i) + 1)
	}
	total := (cfg.Samples / cfg.Sensors) * cfg.Sensors
	for i := 0; i < total; i++ {
		sensor := i % cfg.Sensors
		v := sample(sensor, rngs[sensor])
		p.S[sensor].Add(v)
		res.Count++
		res.EWMA = (1-ewmaAlpha)*res.EWMA + ewmaAlpha*v
	}
	res.Sensors = append([]Moments(nil), p.S[:cfg.Sensors]...)
	return res
}
