package streamstats

import (
	"fmt"
	"math"
	"testing"

	"repro/swan"
)

func testConfig() Config {
	return Config{Samples: 200_000, Sensors: 16, SegCap: 1024, Batch: 256}
}

// TestDigestDeterministic: the full result — per-sensor Welford moments
// from the reducer plus the order-dependent EWMA from the queue — must
// be bit-identical to the serial elision under every policy, worker
// count and repetition.
func TestDigestDeterministic(t *testing.T) {
	cfg := testConfig()
	want := RunSerial(cfg).Digest()
	for _, policy := range []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("policy=%v/workers=%d", policy, workers), func(t *testing.T) {
				for rep := 0; rep < 3; rep++ {
					got := Run(swan.NewWithPolicy(workers, policy), cfg).Digest()
					if got != want {
						t.Fatalf("rep %d: digest %s, serial elision has %s", rep, got, want)
					}
				}
			})
		}
	}
}

func TestMomentsMatchDirectComputation(t *testing.T) {
	cfg := Config{Samples: 10_000, Sensors: 4, SegCap: 256, Batch: 128}
	res := Run(swan.New(4), cfg)
	for s, m := range res.Sensors {
		if m.N != int64(cfg.Samples/cfg.Sensors) {
			t.Fatalf("sensor %d: N = %d, want %d", s, m.N, cfg.Samples/cfg.Sensors)
		}
		// Sensor s's stream is float64(s) + standard normal noise.
		if math.Abs(m.Mean-float64(s)) > 0.1 {
			t.Errorf("sensor %d: mean = %g, want ≈ %d", s, m.Mean, s)
		}
		if sd := m.Stddev(); math.Abs(sd-1) > 0.1 {
			t.Errorf("sensor %d: stddev = %g, want ≈ 1", s, sd)
		}
	}
}

func TestMomentsMergeAgreesWithSequentialAdd(t *testing.T) {
	var whole, a, b Moments
	for i := 0; i < 100; i++ {
		v := float64(i%7) - 3
		whole.Add(v)
		if i < 40 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N != whole.N || math.Abs(a.Mean-whole.Mean) > 1e-9 || math.Abs(a.M2-whole.M2) > 1e-6 {
		t.Fatalf("merged moments %+v differ from sequential %+v", a, whole)
	}
	if a.Min != whole.Min || a.Max != whole.Max {
		t.Fatalf("merged range [%g,%g], sequential [%g,%g]", a.Min, a.Max, whole.Min, whole.Max)
	}
}

func TestDigestSensitiveToBits(t *testing.T) {
	r := RunSerial(Config{Samples: 1000, Sensors: 2})
	d1 := r.Digest()
	r.Sensors[1].M2 = math.Nextafter(r.Sensors[1].M2, math.Inf(1))
	if r.Digest() == d1 {
		t.Fatal("digest unchanged by a one-ulp perturbation")
	}
}
