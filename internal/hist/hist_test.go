package hist

import (
	"math"
	"sort"
	"testing"
)

func TestSmallValuesExact(t *testing.T) {
	var h H
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Count() != 64 || h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Every value below 64 has its own bucket, so quantiles are exact.
	for v := int64(0); v < 64; v++ {
		q := (float64(v) + 0.5) / 64
		if got := h.Quantile(q); got != v {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, v)
		}
	}
}

func TestBucketBoundariesContinuous(t *testing.T) {
	// Every value must land in a bucket whose midpoint is within 1/32 of
	// it, and bucket indices must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d (not monotone)", v, b, prev)
		}
		prev = b
		if v >= 64 {
			mid := bucketMid(b)
			if rel := math.Abs(float64(mid-v)) / float64(v); rel > 1.0/32 {
				t.Fatalf("bucketMid(bucketOf(%d)) = %d, rel err %.4f > 1/32", v, mid, rel)
			}
		}
	}
	if b := bucketOf(math.MaxInt64); b >= numBuckets {
		t.Fatalf("bucketOf(MaxInt64) = %d out of range %d", b, numBuckets)
	}
}

func TestQuantileRelativeError(t *testing.T) {
	// Deterministic pseudo-random values across several octaves; compare
	// histogram quantiles against exact order statistics.
	var h H
	vals := make([]int64, 0, 10000)
	x := uint64(1)
	for i := 0; i < 10000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := int64(x % 50_000_000) // 0..50ms in ns
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		if rel := math.Abs(float64(got-exact)) / float64(exact); rel > 0.04 {
			t.Fatalf("Quantile(%v) = %d, exact %d, rel err %.4f > 4%%", q, got, exact, rel)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatalf("extreme quantiles not clamped to min/max: q0=%d min=%d q1=%d max=%d",
			h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

func TestMergeEqualsCombined(t *testing.T) {
	var a, b, both H
	for i := int64(0); i < 5000; i++ {
		v := i * 37 % 100000
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge mismatch: count %d/%d min %d/%d max %d/%d",
			a.Count(), both.Count(), a.Min(), both.Min(), a.Max(), both.Max())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != both.Quantile(q) {
			t.Fatalf("merge Quantile(%v) = %d, want %d", q, a.Quantile(q), both.Quantile(q))
		}
	}
}

func TestEmptyAndReset(t *testing.T) {
	var h H
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRecordNoAlloc(t *testing.T) {
	var h H
	n := testing.AllocsPerRun(1000, func() { h.Record(123456) })
	if n != 0 {
		t.Fatalf("Record allocates %v per call, want 0", n)
	}
}
