// Package hist implements an HDR-style log-linear histogram for latency
// recording: fixed memory, no per-record allocation, bounded relative
// error. It is the measurement substrate of the open-loop latency
// harness (internal/bench): ingress-to-completion latencies in
// nanoseconds are recorded on the pipeline's egress path, so Record must
// be cheap (one branch, one shift pair, one counter increment) and must
// never allocate.
//
// Bucketing: values below 64 get exact unit buckets; larger values are
// split into octaves of 32 linear sub-buckets each (value2bucket keeps
// the top 6 significant bits), giving a worst-case relative quantization
// error of 1/64 ≈ 1.6% across the full int64 range in 1920 buckets.
package hist

import "math/bits"

const (
	unitBuckets = 64                               // exact buckets for values 0..63
	subBuckets  = 32                               // linear sub-buckets per octave
	octaves     = 64 - 6                           // bits.Len64 values 7..64 → 58 octaves
	numBuckets  = unitBuckets + octaves*subBuckets // 1920
)

// H is a log-linear histogram of non-negative int64 values (latencies in
// nanoseconds, typically). The zero value is ready to use. H is not
// synchronized: the harness records from the single egress consumer
// task, matching the hyperqueue's single-consumer discipline; merge
// per-consumer histograms with Merge if there are several.
type H struct {
	counts [numBuckets]uint64
	n      uint64
	max    int64
	min    int64
	sum    int64
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < unitBuckets {
		return int(u)
	}
	e := bits.Len64(u)  // 7..64
	m := u >> uint(e-6) // 32..63: top 6 significant bits
	return unitBuckets + (e-7)*subBuckets + int(m) - subBuckets
}

// bucketMid returns the midpoint of bucket i's value range, the
// representative value quantiles report.
func bucketMid(i int) int64 {
	if i < unitBuckets {
		return int64(i)
	}
	o := (i - unitBuckets) / subBuckets // octave index, 0-based
	r := (i - unitBuckets) % subBuckets
	width := int64(1) << uint(o+1)
	lo := int64(subBuckets+r) << uint(o+1)
	return lo + width/2
}

// Record adds one value.
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count reports how many values were recorded.
func (h *H) Count() uint64 { return h.n }

// Max reports the exact largest recorded value (0 when empty).
func (h *H) Max() int64 { return h.max }

// Min reports the exact smallest recorded value (0 when empty).
func (h *H) Min() int64 { return h.min }

// Mean reports the exact arithmetic mean (0 when empty).
func (h *H) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the value at quantile q in [0, 1] — Quantile(0.99) is
// the p99 — as the midpoint of the bucket holding that rank, clamped to
// the exact observed min/max. It returns 0 when the histogram is empty.
func (h *H) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i]
		if cum > rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *H) Merge(other *H) {
	if other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *H) Reset() { *h = H{} }
