package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 100; i++ {
		d.Push(i)
	}
	for i := 99; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque returned ok")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New[int](4)
	for i := 0; i < 100; i++ {
		d.Push(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("Steal = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque returned ok")
	}
}

func TestPushBatchOrder(t *testing.T) {
	d := New[int](8)
	d.Push(-1)
	batch := make([]int, 100)
	for i := range batch {
		batch[i] = i
	}
	d.PushBatch(batch) // forces grows mid-batch
	d.PushBatch(nil)   // empty batch is a no-op
	if d.Len() != 101 {
		t.Fatalf("Len = %d, want 101", d.Len())
	}
	// FIFO steal sees the pre-batch value, then the batch in order.
	if v, ok := d.Steal(); !ok || v != -1 {
		t.Fatalf("Steal = %d,%v; want -1,true", v, ok)
	}
	for i := 0; i < 50; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("Steal = %d,%v; want %d,true", v, ok, i)
		}
	}
	// LIFO pop sees the batch tail first.
	for i := 99; i >= 50; i-- {
		if v, ok := d.Pop(); !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on drained deque returned ok")
	}
}

// TestPushBatchConcurrentSteals has thieves hammer the deque while the
// owner publishes batches: every value must be seen exactly once.
func TestPushBatchConcurrentSteals(t *testing.T) {
	d := New[int](8)
	const batches, per = 200, 16
	var seen [batches * per]atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					seen[v].Add(1)
					continue
				}
				select {
				case <-stop:
					if v, ok := d.Steal(); ok {
						seen[v].Add(1)
						continue
					}
					return
				default:
				}
			}
		}()
	}
	batch := make([]int, per)
	for b := 0; b < batches; b++ {
		for i := range batch {
			batch[i] = b*per + i
		}
		d.PushBatch(batch)
	}
	for d.Len() > 0 {
		if v, ok := d.Pop(); ok {
			seen[v].Add(1)
		}
	}
	close(stop)
	wg.Wait()
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d seen %d times, want exactly once", i, n)
		}
	}
}

func TestGrowPreservesOrder(t *testing.T) {
	d := New[int](8)
	const n = 10000 // forces many grows
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n/2; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("Steal = %d,%v; want %d", v, ok, i)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if v, ok := d.Pop(); !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d", v, ok, i)
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	d := New[int](4)
	for round := 0; round < 50; round++ {
		for i := 0; i < round; i++ {
			d.Push(i)
		}
		for i := round - 1; i >= 0; i-- {
			if v, ok := d.Pop(); !ok || v != i {
				t.Fatalf("round %d: Pop = %d,%v; want %d", round, v, ok, i)
			}
		}
	}
}

// TestConcurrentStealersNoLossNoDup is the core linearizability check:
// one owner pushes N distinct values and pops some; thieves steal the
// rest. Every value must be consumed exactly once.
func TestConcurrentStealersNoLossNoDup(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New[int](8)
	var seen [n]atomic.Int32
	var consumed atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					seen[v].Add(1)
					consumed.Add(1)
				} else {
					select {
					case <-stop:
						// Drain whatever is left after the owner quit.
						for {
							v, ok := d.Steal()
							if !ok {
								return
							}
							seen[v].Add(1)
							consumed.Add(1)
						}
					default:
					}
				}
			}
		}()
	}

	// Owner: push all values, popping a few interleaved.
	for i := 0; i < n; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				seen[v].Add(1)
				consumed.Add(1)
			}
		}
	}
	// Owner drains its side too.
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		seen[v].Add(1)
		consumed.Add(1)
	}
	close(stop)
	wg.Wait()

	// Final drain from this goroutine (now the only accessor).
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		seen[v].Add(1)
		consumed.Add(1)
	}

	if got := consumed.Load(); got != n {
		t.Fatalf("consumed %d values, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("value %d consumed %d times", i, c)
		}
	}
}

func TestLenEstimate(t *testing.T) {
	d := New[string](4)
	if d.Len() != 0 {
		t.Fatalf("empty Len = %d", d.Len())
	}
	d.Push("a")
	d.Push("b")
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	d.Steal()
	if d.Len() != 1 {
		t.Fatalf("Len after steal = %d, want 1", d.Len())
	}
}

func TestPopStealSingleElementRace(t *testing.T) {
	// Repeatedly race one owner Pop against one thief Steal over a
	// single element; exactly one must win each round.
	for round := 0; round < 2000; round++ {
		d := New[int](4)
		d.Push(round)
		var wins atomic.Int32
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, ok := d.Pop(); ok {
				wins.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			if _, ok := d.Steal(); ok {
				wins.Add(1)
			}
		}()
		wg.Wait()
		if wins.Load() != 1 {
			t.Fatalf("round %d: %d winners for 1 element", round, wins.Load())
		}
	}
}

func TestStealBatchTakesHalfOldestFirst(t *testing.T) {
	d := New[int](8)
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	buf := make([]int, 16)
	// Half of 10 rounded up is 5, oldest first.
	if got := d.StealBatch(buf); got != 5 {
		t.Fatalf("StealBatch = %d, want 5", got)
	}
	for i := 0; i < 5; i++ {
		if buf[i] != i {
			t.Fatalf("buf[%d] = %d, want %d", i, buf[i], i)
		}
	}
	// The remainder keeps its order for the owner.
	for i := 9; i >= 5; i-- {
		if v, ok := d.Pop(); !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	// A short buffer caps the batch; an empty deque yields zero.
	d.Push(1)
	d.Push(2)
	d.Push(3)
	if got := d.StealBatch(buf[:1]); got != 1 || buf[0] != 1 {
		t.Fatalf("StealBatch(short buf) = %d (buf[0]=%d), want 1 (1)", got, buf[0])
	}
	d.Pop()
	d.Pop()
	if got := d.StealBatch(buf); got != 0 {
		t.Fatalf("StealBatch on empty = %d, want 0", got)
	}
	// A single element is still taken ((1+1)/2 = 1).
	d.Push(7)
	if got := d.StealBatch(buf); got != 1 || buf[0] != 7 {
		t.Fatalf("StealBatch(single) = %d (buf[0]=%d), want 1 (7)", got, buf[0])
	}
}

// TestStealBatchConcurrentNoLossNoDup races an owner (pushing and
// popping) against batch-stealing thieves: every value must be consumed
// exactly once. This is the double-take hazard StealBatch's per-element
// CAS exists to prevent.
func TestStealBatchConcurrentNoLossNoDup(t *testing.T) {
	const n = 100000
	const thieves = 4
	d := New[int](8)
	var seen [n]atomic.Int32
	var consumed atomic.Int64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int, 8)
			drain := func() bool {
				k := d.StealBatch(buf)
				for j := 0; j < k; j++ {
					seen[buf[j]].Add(1)
					consumed.Add(1)
				}
				return k > 0
			}
			for {
				if drain() {
					continue
				}
				select {
				case <-stop:
					for drain() {
					}
					return
				default:
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				seen[v].Add(1)
				consumed.Add(1)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		seen[v].Add(1)
		consumed.Add(1)
	}
	close(stop)
	wg.Wait()
	for {
		v, ok := d.Steal()
		if !ok {
			break
		}
		seen[v].Add(1)
		consumed.Add(1)
	}

	if got := consumed.Load(); got != n {
		t.Fatalf("consumed %d values, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("value %d consumed %d times", i, c)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int](1024)
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkStealThroughput(b *testing.B) {
	d := New[int](1024)
	done := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				if d.Len() < 512 {
					d.Push(i)
				}
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
	close(done)
}

// TestQuickModelConformance drives random operation sequences against a
// slice model (single-threaded: Pop takes the back, Steal the front).
func TestQuickModelConformance(t *testing.T) {
	f := func(ops []byte) bool {
		d := New[int](4)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // bias toward pushes so the deque fills
				d.Push(next)
				model = append(model, next)
				next++
			case 2:
				v, ok := d.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if v != want {
						return false
					}
				}
			case 3:
				v, ok := d.Steal()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[0]
					model = model[1:]
					if v != want {
						return false
					}
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
