// Package deque implements a Chase–Lev work-stealing deque (Chase & Lev,
// "Dynamic circular work-stealing deque", SPAA 2005) with the memory-model
// fixes of Lê et al. (PPoPP 2013), adapted to Go's atomics.
//
// The deque has a single owner that pushes and pops at the bottom (LIFO)
// and any number of thieves that steal from the top (FIFO). FIFO stealing
// is what gives Cilk-style schedulers their locality and their bounded
// space guarantee: thieves take the oldest, typically largest, task.
//
// The Swan-like scheduler in internal/sched (PolicySteal, the default)
// uses one deque per worker as its dispatch substrate: spawns push at the
// bottom of the spawning worker's deque, sync points pop from it
// help-first, and idle workers steal from randomized victims.
// BenchmarkAblationSchedulerSubstrate in bench_test.go runs the ablation:
// this stealing runtime against the goroutine-per-task slot-semaphore
// baseline (PolicyGoroutine), and BenchmarkAblationDequeVsChannelDispatch
// compares the raw deque against a channel as a dispatch primitive.
package deque

import "sync/atomic"

// D is a work-stealing deque of values of type T. Values are stored as
// pointers internally to keep the circular-array swap safe under
// concurrent steals. The zero value is not usable; call New.
type D[T any] struct {
	top    atomic.Int64 // next slot to steal from
	bottom atomic.Int64 // next slot to push to
	array  atomic.Pointer[ring[T]]
}

// ring is an immutable-size circular array. Grow replaces the whole ring;
// old rings are left to the garbage collector (thieves may still be
// reading them, which is safe because entries are only read, never
// recycled, between top and bottom).
type ring[T any] struct {
	size int64 // always a power of two
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](size int64) *ring[T] {
	return &ring[T]{size: size, mask: size - 1, buf: make([]atomic.Pointer[T], size)}
}

func (r *ring[T]) get(i int64) *T    { return r.buf[i&r.mask].Load() }
func (r *ring[T]) put(i int64, v *T) { r.buf[i&r.mask].Store(v) }

func (r *ring[T]) grow(top, bottom int64) *ring[T] {
	nr := newRing[T](r.size * 2)
	for i := top; i < bottom; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// New returns an empty deque with the given initial capacity, rounded up
// to a power of two (minimum 8).
func New[T any](capacity int) *D[T] {
	size := int64(8)
	for size < int64(capacity) {
		size *= 2
	}
	d := &D[T]{}
	d.array.Store(newRing[T](size))
	return d
}

// Push adds v at the bottom of the deque. Only the owner may call Push.
func (d *D[T]) Push(v T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t >= a.size {
		a = a.grow(t, b)
		d.array.Store(a)
	}
	a.put(b, &v)
	d.bottom.Store(b + 1)
}

// PushBatch adds all of vs at the bottom of the deque, publishing them
// with a single bottom store: thieves either see none of the batch or a
// prefix-complete view of it, and the owner pays one release-store for k
// tasks instead of k. Only the owner may call PushBatch. The scheduler
// uses it for loop-split spawning (Frame.SpawnN), where a stage publishes
// a whole wave of tasks at once.
func (d *D[T]) PushBatch(vs []T) {
	n := int64(len(vs))
	if n == 0 {
		return
	}
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b+n-t > a.size {
		for b+n-t > a.size {
			a = a.grow(t, b)
		}
		d.array.Store(a)
	}
	for i := int64(0); i < n; i++ {
		v := vs[i]
		a.put(b+i, &v)
	}
	d.bottom.Store(b + n)
}

// Pop removes and returns the most recently pushed value (LIFO). Only the
// owner may call Pop. ok is false if the deque was empty.
func (d *D[T]) Pop() (v T, ok bool) {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore bottom.
		d.bottom.Store(b + 1)
		return v, false
	}
	p := a.get(b)
	if t == b {
		// Single element left: race with thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			// A thief got it first.
			d.bottom.Store(b + 1)
			return v, false
		}
		d.bottom.Store(b + 1)
		return *p, true
	}
	return *p, true
}

// Steal removes and returns the oldest value (FIFO). Any goroutine may
// call Steal. ok is false if the deque was empty or the steal lost a race
// (callers typically retry elsewhere).
func (d *D[T]) Steal() (v T, ok bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return v, false
	}
	a := d.array.Load()
	p := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return v, false
	}
	return *p, true
}

// StealBatch steals up to half of the victim's visible run (and at most
// len(buf) values) from the top, oldest first, returning how many values
// were written into buf. Any goroutine may call StealBatch. A return of 0
// means the deque looked empty or the first claim lost a race.
//
// The batch is claimed one CAS per element, not one CAS for the whole
// range: the owner's Pop takes elements at the bottom *without* touching
// top whenever more than one element remains, so a thief that read
// [t, t+k) and then advanced top by k in a single CAS could claim slots
// the owner concurrently popped, double-executing them. Per-element CAS
// keeps every claim identical to the proven single Steal linearization;
// the batch win is fewer victim scans and park/wake cycles per stolen
// task, plus a run of local work for the thief — not fewer CASes.
func (d *D[T]) StealBatch(buf []T) int {
	t := d.top.Load()
	b := d.bottom.Load()
	n := b - t
	if n <= 0 {
		return 0
	}
	want := (n + 1) / 2
	if want > int64(len(buf)) {
		want = int64(len(buf))
	}
	got := 0
	for int64(got) < want {
		t = d.top.Load()
		if t >= d.bottom.Load() {
			break
		}
		a := d.array.Load()
		p := a.get(t)
		if !d.top.CompareAndSwap(t, t+1) {
			break // lost a race; keep what we have
		}
		buf[got] = *p
		got++
	}
	return got
}

// Len reports an instantaneous size estimate. It is exact when called by
// the owner with no concurrent steals, and approximate otherwise.
func (d *D[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
