package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds collided %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split child mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(11)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d hits, expected ~%d", i, c, n/10)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestBytesDeterministic(t *testing.T) {
	a := make([]byte, 37) // deliberately not a multiple of 8
	b := make([]byte, 37)
	New(5).Bytes(a)
	New(5).Bytes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestBytesCoversTail(t *testing.T) {
	b := make([]byte, 15)
	New(6).Bytes(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero == len(b) {
		t.Fatal("Bytes left buffer all-zero")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		v := New(seed).Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
