// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used to synthesize workloads (images, data streams)
// reproducibly across runs and across degrees of parallelism.
//
// The generator is SplitMix64 (Steele et al., "Fast splittable
// pseudorandom number generators", OOPSLA 2014). It is not
// cryptographically secure; it is chosen because a deterministic,
// seed-splittable stream is exactly what scale-free benchmarking needs:
// the input corpus must be identical no matter how many workers generate
// it.
package rng

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent
// of the parent's. The parent advances by one step.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately normally distributed float64 with
// mean 0 and standard deviation 1, using the sum-of-uniforms method
// (Irwin–Hall with 12 summands). Accurate enough for synthetic feature
// vectors; avoids math.Log in hot generation loops.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6.0
}

// Bytes fills b with pseudo-random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
