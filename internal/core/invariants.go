package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core/hyper"
	"repro/internal/sched"
)

// This file implements a checker for the hyperqueue invariants of §4.4.
// It is not used on any hot path; tests call CheckInvariants at quiescent
// points (under q.mu) to validate the view algebra's global state. In
// addition, with SetDebugChecks enabled, every permanent-emptiness
// decision asserts that no valid view ordered before the consumer still
// holds data (assertNoHiddenDataLocked) — the serializability property
// that quickcheck seed 139 showed can silently break when deposits are
// not folded into the queue view.

// debugChecks gates the runtime self-checking assertions (currently the
// no-hidden-data-on-Empty check). Off by default: the checks walk the
// live view tree on every permanent-emptiness decision, which is cheap
// but not free. The core test suite, the regression tests and
// cmd/quickcheck enable it.
var debugChecks atomic.Bool

// SetDebugChecks enables or disables the hyperqueue's runtime
// self-checking assertions for all queues in the process. A violated
// assertion panics, which the runtime surfaces through Run.
func SetDebugChecks(on bool) { debugChecks.Store(on) }

// checkNoHiddenDataLocked validates the contract of a true Empty
// answer: at the moment permanent emptiness is declared for consumer qv,
// no valid view ordered before the consumer's position may hold data.
// After linkFrontier the children views along the consumer's spawn path
// and the consumer's own user view must be empty, and no live
// view-holding task may precede the consumer at all (pop tasks have
// completed by consumer serialization; push tasks would have made
// visibleProducerLive true). Caller holds q.consMu and q.regMu; the
// violation (empty string if none) is returned rather than panicked so
// the caller can raise it after releasing the locks — a panic under a
// queue lock would deadlock the rest of the task tree instead of
// surfacing the report.
func (q *Queue[T]) checkNoHiddenDataLocked(qv *qviews[T]) string {
	cf := qv.vs.Frame
	target := &qv.vs
	var walk func(n *hyper.ViewSet[view[T]]) string
	walk = func(n *hyper.ViewSet[view[T]]) string {
		switch {
		case n == target:
			if viewHasData(&n.Children) || viewHasData(&n.User) {
				return "hyperqueue: Empty returned true while the consumer's own views hold data (frontier fold incomplete)"
			}
		case n.Frame.IsAncestorOf(cf):
			if viewHasData(&n.Children) {
				return "hyperqueue: Empty returned true while an ancestor's children view holds data (frontier fold incomplete)"
			}
		case cf.IsAncestorOf(n.Frame):
			return "hyperqueue: live descendant holds queue views while the consumer declared permanent emptiness"
		case n.Frame.Before(cf):
			if viewHasData(&n.Children) || viewHasData(&n.User) || viewHasData(&n.Right) {
				return "hyperqueue: task ordered before the consumer is live with data at a permanent-emptiness decision"
			}
		}
		for c := n.ChildHead; c != nil; c = c.Next {
			if v := walk(c); v != "" {
				return v
			}
		}
		return ""
	}
	return walk(&q.ownerQV.vs)
}

// InvariantViolation describes one violated invariant.
type InvariantViolation struct {
	Invariant int
	Detail    string
}

func (v InvariantViolation) String() string {
	return fmt.Sprintf("invariant %d violated: %s", v.Invariant, v.Detail)
}

// CheckInvariants validates the §4.4 invariants that are checkable from
// the queue's structural state, returning all violations found. It must
// be called from the owner frame's goroutine with no concurrently
// running tasks on the queue (a quiescent point such as after Sync).
func (q *Queue[T]) CheckInvariants(f *sched.Frame) []InvariantViolation {
	q.lockCons()
	defer q.consMu.Unlock()
	q.lockRegNested()
	defer q.unlockRegNested()
	var out []InvariantViolation
	report := func(inv int, format string, args ...any) {
		out = append(out, InvariantViolation{inv, fmt.Sprintf(format, args...)})
	}

	// Invariant 1: every hyperqueue holds at least one segment; the
	// queue view's head pointer is local (invariant 2 gives uniqueness).
	if !q.headView.Valid || q.headView.Head == nil {
		report(1, "queue view has no local head segment: %s", q.headView.String())
		return out
	}

	// Invariant 3: the tail pointer of the queue view is non-local.
	if q.headView.Tail != nil {
		report(3, "queue view has a local tail: %s", q.headView.String())
	}

	// Collect all views reachable from the owner at quiescence: with no
	// live tasks, only the owner's views exist.
	qv := q.ownerQV
	views := map[string]*view[T]{
		"owner.children": &qv.vs.Children,
		"owner.user":     &qv.vs.User,
		"owner.right":    &qv.vs.Right,
	}

	// Invariant 3 (second half): the user view's head is non-local
	// unless the view is empty.
	if qv.vs.User.Valid && qv.vs.User.Head != nil {
		report(3, "owner user view has a local head: %s", qv.vs.User.String())
	}

	// Walk the segment chain from the queue head; every segment must be
	// reachable exactly once (invariant 4: one next pointer or one view
	// head pointer per segment).
	seen := map[*segment[T]]string{}
	for s, i := q.headView.Head, 0; s != nil; s = s.next.Load() {
		if prev, dup := seen[s]; dup {
			report(4, "segment reached twice (%s and chain position %d)", prev, i)
			break
		}
		seen[s] = fmt.Sprintf("chain[%d]", i)
		i++
	}

	// Invariant 5: a view's tail pointer, when local, must point to a
	// segment whose next pointer is nil (the open tail).
	for name, v := range views {
		if v.Valid && v.Tail != nil && v.Tail.next.Load() != nil {
			report(5, "%s tail points to a segment with a next link", name)
		}
	}

	// Pair discipline: at quiescence, the queue view's non-local tail
	// must pair with the owner user view's non-local head (they were
	// created by the same split at construction or restored by
	// reductions). An ε user view means all data has been folded and the
	// pair is closed by children — which must then also be ε or paired.
	if qv.vs.User.Valid && qv.vs.User.Head == nil {
		if qv.vs.Children.Valid {
			// children precedes user: children.tail pairs with user.head.
			if qv.vs.Children.Tail == nil && qv.vs.Children.TailNL != qv.vs.User.HeadNL {
				report(7, "children/user non-local pair mismatch: %d vs %d",
					qv.vs.Children.TailNL, qv.vs.User.HeadNL)
			}
		} else if q.headView.TailNL != qv.vs.User.HeadNL {
			report(7, "queue/user non-local pair mismatch: %d vs %d",
				q.headView.TailNL, qv.vs.User.HeadNL)
		}
	}

	// All data linked: at quiescence every produced segment must be
	// reachable from the head chain (invariant 4's consequence). The
	// owner views' local pointers must land inside the chain.
	for name, v := range views {
		if !v.Valid {
			continue
		}
		if v.Head != nil {
			if _, ok := seen[v.Head]; !ok {
				report(4, "%s head segment not reachable from queue head", name)
			}
		}
		if v.Tail != nil {
			if _, ok := seen[v.Tail]; !ok {
				report(4, "%s tail segment not reachable from queue head", name)
			}
		}
	}
	return out
}

// MustCheckInvariants panics on the first violation; a convenience for
// tests.
func (q *Queue[T]) MustCheckInvariants(f *sched.Frame) {
	if v := q.CheckInvariants(f); len(v) > 0 {
		panic("hyperqueue: " + v[0].String())
	}
}

// DebugChainSegments folds the serial frontier and reports how many
// segments the queue currently holds in its head chain. It is the live
// term of the pool-audit balance (see the PoolProvider.SegmentAllocs
// comment): at a quiescent point every segment a queue owns is reachable
// from the head chain once the frontier views are folded in, so
//
//	SegmentAllocs == PooledSegments + DroppedSegments
//	                 + Σ DebugChainSegments(live queues)
//	                 + segments abandoned with dead queues
//
// holds exactly. Like Recycle, it may only be called by the owning frame
// at a quiescent point — every task ever granted privileges on the queue
// has completed (CanRecycle's condition, except the queue need not be
// drained) — and panics otherwise. The frontier fold mutates view
// bookkeeping the same way the consumer's own emptiness decision would;
// it never drops or reorders data.
func (q *Queue[T]) DebugChainSegments(f *sched.Frame) uint64 {
	qv := q.mustViews(f, ModePushPop)
	if qv.parentQV != nil {
		panic("hyperqueue: only the owning task may count chain segments")
	}
	q.lockCons()
	q.lockRegNested()
	defer func() {
		q.unlockRegNested()
		q.consMu.Unlock()
	}()
	if len(q.producers) > 0 || qv.vs.ChildHead != nil ||
		qv.popServed.Load() != qv.popTickets.Load() {
		panic("hyperqueue: DebugChainSegments on a non-quiescent queue")
	}
	q.linkFrontier(qv)
	var n uint64
	for s := q.headView.Head; s != nil; s = s.next.Load() {
		n++
	}
	return n
}
