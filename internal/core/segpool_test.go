package core

import (
	"testing"

	"repro/internal/sched"
)

// TestSegPoolGetPut exercises the pool directly: shard hit, overflow
// spill, cross-shard scan, and the oversized-segment drop.
func TestSegPoolGetPut(t *testing.T) {
	var p segPool[int]
	p.init(4, 8)
	if len(p.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(p.shards))
	}

	s := newSegment[int](8)
	s.push(1)
	s.pop()
	p.put(0, s)
	if got := p.get(0); got != s {
		t.Fatal("shard-local get did not return the recycled segment")
	}
	if got := s.head.Load(); got != 0 {
		t.Fatalf("recycled segment head = %d, want 0 (not reset)", got)
	}

	// A segment put on one shard is found by a get on another (via the
	// cross-shard scan once its own shard and the overflow are empty).
	p.put(3, s)
	if got := p.get(1); got != s {
		t.Fatal("cross-shard get did not find the recycled segment")
	}

	// Overflow spill: fill shard 0 beyond its slots, drain through the
	// overflow list.
	segs := map[*segment[int]]bool{}
	for i := 0; i < segShardSlots+4; i++ {
		n := newSegment[int](8)
		segs[n] = true
		p.put(0, n)
	}
	for i := 0; i < segShardSlots+4; i++ {
		g := p.get(0)
		if !segs[g] {
			t.Fatalf("get %d returned a segment that was never put", i)
		}
		delete(segs, g)
	}

	// Oversized segments (WriteSlice, §5.2) are dropped, not pooled.
	p.put(0, newSegment[int](32))
	if g := p.get(0); len(g.buf) != 8 {
		t.Fatalf("pool returned a segment of capacity %d, want the configured 8", len(g.buf))
	}
}

// TestSegmentRecyclingThroughQueue drives a queue through several
// segment laps on one worker and checks that the consumer's drain
// recycles segments back to the producer: after the first lap, overflow
// pushes reuse pooled segments instead of allocating.
func TestSegmentRecyclingThroughQueue(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		// Lap 1: fill three segments, drain them — two are drained past
		// and recycled (the open tail stays live).
		for i := 0; i < 6; i++ {
			q.Push(f, i)
		}
		for i := 0; i < 6; i++ {
			if got := q.Pop(f); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
		pooled := map[*segment[int]]bool{}
		for si := range q.pool.shards {
			sh := &q.pool.shards[si]
			for i := 0; i < sh.n; i++ {
				pooled[sh.free[i]] = true
			}
		}
		if len(pooled) == 0 {
			t.Fatal("no segments recycled after draining past two segments")
		}
		// Lap 2: the next overflow must come from the pool.
		for i := 0; i < 6; i++ {
			q.Push(f, i)
		}
		if tail := q.viewsOf(f).vs.User.Tail; !pooled[tail] {
			t.Fatal("overflow push allocated a fresh segment while recycled ones were pooled")
		}
		for i := 0; i < 6; i++ {
			q.Pop(f)
		}
	})
}

// TestSteadyStateZeroAllocs is the paper's §3.2 claim as a hard
// assertion: a warmed producer/consumer lap over pooled segments
// performs zero heap allocations — push fast path, overflow via the
// pool, pop, and the drain-past recycle all run allocation-free.
func TestSteadyStateZeroAllocs(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 8)
		lap := func() {
			for i := 0; i < 64; i++ {
				q.Push(f, i)
			}
			for i := 0; i < 64; i++ {
				q.Pop(f)
			}
		}
		lap() // warm the pool
		if allocs := testing.AllocsPerRun(50, lap); allocs != 0 {
			t.Errorf("steady-state lap allocates %v times per run, want 0", allocs)
		}
	})
}
