package core

import (
	"testing"

	"repro/internal/sched"
)

// These tests pin the lock-free TryPop/ReadSlice miss path: while no
// producer was ever registered on a queue, a miss must be decided from
// the chain walk alone, without acquiring the consumer lock. The debug
// counter (consMuAcquires, maintained because TestMain enables debug
// checks for this binary) turns "without acquiring" into an assertion.

// TestTryPopMissLockFree asserts that hits and misses of TryPop and
// ReadSlice on a never-had-a-producer queue acquire consMu zero times.
func TestTryPopMissLockFree(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		for i := 0; i < 6; i++ {
			q.Push(f, i)
		}
		base := q.DebugConsLockAcquires()
		for i := 0; i < 6; i++ {
			if v, ok := q.TryPop(f); !ok || v != i {
				t.Fatalf("TryPop = %d,%v, want %d,true", v, ok, i)
			}
		}
		for i := 0; i < 32; i++ {
			if _, ok := q.TryPop(f); ok {
				t.Fatal("TryPop on a drained queue returned a value")
			}
			if s := q.ReadSlice(f, 8); len(s) != 0 {
				t.Fatalf("ReadSlice on a drained queue returned %d values", len(s))
			}
		}
		if got := q.DebugConsLockAcquires() - base; got != 0 {
			t.Errorf("TryPop/ReadSlice on a producer-less queue acquired consMu %d times, want 0", got)
		}
	})
}

// TestTryPopMissLockFreeAfterPopChildren is the distilled regression for
// the fast path's correctness argument: the owner pushes while pop
// children are live, so its values travel through right-view deposits —
// the shape whose physical links materialize only at the children's
// completion deposits. A later consumer must still see every value with
// the miss path never taking consMu (no producer was ever registered:
// the owner is not in the registry).
func TestTryPopMissLockFreeAfterPopChildren(t *testing.T) {
	for _, drain := range []bool{true, false} {
		name := map[bool]string{true: "child-drains", false: "child-idle"}[drain]
		t.Run(name, func(t *testing.T) {
			rt := sched.New(2)
			rt.Run(func(f *sched.Frame) {
				q := NewWithCapacity[int](f, 1)
				f.Spawn(func(c *sched.Frame) {
					if drain {
						// Sees nothing: every push below is ordered after it.
						for !q.Empty(c) {
							t.Error("pop child observed a value ordered after it")
							q.Pop(c)
						}
					}
				}, Pop(q))
				// The child took the owner's user view, so these pushes open
				// a fresh segment chain deposited toward the child's right
				// view — physically dangling until the child completes.
				q.Push(f, 10)
				q.Push(f, 11)
				q.SyncPop(f) // wait for the pop child (§5.5 selective sync)
				base := q.DebugConsLockAcquires()
				var got []int
				for {
					v, ok := q.TryPop(f)
					if !ok {
						break
					}
					got = append(got, v)
				}
				if s := q.ReadSlice(f, 4); len(s) != 0 {
					t.Errorf("ReadSlice after the drain returned %d values", len(s))
				}
				if got := q.DebugConsLockAcquires() - base; got != 0 {
					t.Errorf("drain acquired consMu %d times, want 0", got)
				}
				if len(got) != 2 || got[0] != 10 || got[1] != 11 {
					t.Fatalf("owner drained %v, want [10 11] (deposited values invisible to the lock-free miss path)", got)
				}
				f.Sync()
			})
		})
	}
}

// TestTryPopRegisteredProducerStillFolds is the guard rail around the
// fast path: the moment a producer registers, misses must go back
// through the locked frontier fold — a TryPop miss here would otherwise
// wrongly report emptiness while the completed producer's values sit in
// un-folded deposited views (the seed-139 bug class).
func TestTryPopRegisteredProducerStillFolds(t *testing.T) {
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 1)
		// X takes the owner's user view to its grave, so A's pushes below
		// land in a dangling chain that only the fold can surface.
		f.Spawn(func(c *sched.Frame) {}, Push(q))
		f.Spawn(func(a *sched.Frame) {
			a.Spawn(func(b *sched.Frame) {}, Pop(q))
			q.Push(a, 10)
			var got []int
			for len(got) < 1 {
				if v, ok := q.TryPop(a); ok {
					got = append(got, v)
				}
			}
			if got[0] != 10 {
				t.Errorf("TryPop surfaced %v, want [10]", got)
			}
		}, PushPop(q))
		f.Sync()
	})
}

// TestTryPopConcurrentOwnerPushes races a sequence of pop children
// against the owner's pushes on a producer-less queue (run under -race
// in CI). Each child drains every value ordered before it through
// Empty-guarded TryPops (Empty returning false guarantees the next
// TryPop hits), then issues extra lock-free misses that race the owner's
// pushes of later-ordered values. Consumer serialization makes the drain
// positions deterministic across all interleavings.
func TestTryPopConcurrentOwnerPushes(t *testing.T) {
	rt := sched.New(4)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		pushed := 0
		next := 0 // touched only by the serialized consumers, in order
		for round := 0; round < 8; round++ {
			f.Spawn(func(c *sched.Frame) {
				for !q.Empty(c) {
					v, ok := q.TryPop(c)
					if !ok {
						t.Error("TryPop missed immediately after Empty reported false")
						break
					}
					if v != next {
						t.Errorf("consumed %d at position %d", v, next)
					}
					next++
				}
				// Post-drain misses: decided lock-free while the owner may
				// concurrently push values ordered after this child.
				for i := 0; i < 16; i++ {
					if _, ok := q.TryPop(c); ok {
						t.Error("TryPop observed a value ordered after the child")
					}
					if s := q.ReadSlice(c, 4); len(s) != 0 {
						t.Error("ReadSlice observed a value ordered after the child")
					}
				}
			}, Pop(q))
			for i := 0; i < 3; i++ {
				q.Push(f, pushed)
				pushed++
			}
		}
		f.Sync()
		for !q.Empty(f) {
			if v := q.Pop(f); v != next {
				t.Fatalf("owner popped %d at position %d", v, next)
			}
			next++
		}
		if next != pushed {
			t.Fatalf("consumers drained %d values, want %d", next, pushed)
		}
	})
}
