// Package core implements hyperqueues, the paper's primary contribution
// (SC 2013, "Deterministic Scale-Free Pipeline Parallelism with
// Hyperqueues"): a deterministic queue abstraction whose values are
// exposed to the (single) consumer in serial program order, while many
// producer tasks push concurrently and the consumer pops concurrently
// with them.
//
// The implementation follows §3–§4 of the paper:
//
//   - the underlying storage is a linked chain of fixed-size SPSC ring
//     segments (segment.go), recycled through a runtime-wide sharded
//     free-list pool (segpool.go, one PoolProvider per sched.Runtime,
//     one pool per element type and segment capacity) so the steady
//     state allocates nothing and short-lived queues start on warm
//     segments; a fully-drained quiescent queue can itself be reset and
//     reused via Recycle;
//   - partial chains are tracked by views with local/non-local ends and
//     combined with split and reduce; the pairing discipline and the
//     per-task view bookkeeping live in the generic hyperobject
//     substrate (internal/core/hyper), which this package instantiates
//     for segment-chain views (view.go) and drives through the queue's
//     engine (Queue.eng, called under regMu);
//   - every task holding privileges on a queue carries the view set
//     {children, user, right} (plus the conceptual queue view for
//     consumers), updated at push, spawn, completion and sync per
//     §4.1–4.2 by the substrate's structural folds (HandOff, Retire,
//     SyncFold, ShareToPredecessor, FoldFrontier);
//   - the queue view is stored once in the queue itself with ticket-based
//     ownership arbitration, the variant the paper sketches in §4.5
//     ("Special Optimization") for the queue hypermap;
//   - the per-segment producing flag of §3.2 is realized as a registry of
//     live producer tasks plus program-order labels: Empty blocks while
//     any producer that precedes the consumer in the serial elision is
//     still live, which is the same observable condition.
//
// Beyond the queue, the same substrate backs two more hyperobjects in
// this package: a deterministic monoid reducer (reducer.go) and a
// first-writer-wins keyed hypermap (hypermap.go); their determinism
// contracts are documented on their types.
//
// # The Empty contract
//
// Empty is the consumer's end-of-stream test and is allowed to block: it
// returns false as soon as a value is available to pop, and it returns
// true only when the emptiness is permanent — no value ordered before
// the consumer's current position in the serial elision exists now or
// can ever be produced. While the answer is undecided (the queue looks
// empty but a producer ordered before the consumer is still live), Empty
// waits, releasing the task's execution capacity so it never starves
// runnable tasks. Pop relies on the same decision procedure: popping a
// permanently empty queue panics, and a pop on a temporarily empty queue
// blocks until the head value arrives.
//
// Deciding permanent emptiness takes more than scanning the head chain:
// values pushed by an already-completed producer can sit in a view that
// is not yet physically linked into the queue's segment chain (a
// completed task's user view deposited into a sibling's right view, a
// child's views folded into its parent's children view, ...). The
// consumer therefore finishes the deferred reductions itself: once no
// live producer precedes it, every view ordered before its position is
// held by one of its ancestors' children views or by its own children
// and user views, and linkFrontier folds exactly those into the queue
// view (the §4.5 "double reduction", applied consistently at the
// consumer rather than only at push time). Only if the queue view still
// exposes no value after that fold is the emptiness permanent. The same
// fold also runs opportunistically from the producer side: when a
// retiring producer's Complete observes a consumer parked in Empty/Pop
// with no visible producer left, it links the frontier itself so the
// consumer wakes to already-linked data (deps.go).
//
// # Ownership and locking map
//
// The hot paths (Push, Pop, Empty's reachability probe) take no locks at
// all — and through the bound handles of handle.go (BindPush/BindPop,
// with bulk PushSlice/PopInto) they also stop re-resolving privileges
// per element; everything else is split between two independent mutexes
// so that sibling producers preparing and completing never serialize
// against a popping consumer. The rules, field by field:
//
//   - Queue.consMu (the consumer-side lock) guards: Queue.parked,
//     Queue.sleepers (the all-classes count of cond.Wait loops that lets
//     wakeLocked Signal instead of Broadcast when exactly one waiter
//     exists), and the condition variable Queue.cond (which signals
//     "data linked", "producer retired" and "consumer ticket served").
//     Every blocking consumer wait — Empty/Pop's emptyWait,
//     acquireConsumer, a pop dep's Wait — runs under consMu.
//   - Queue.regMu (the producer-registry lock) guards: Queue.producers,
//     Queue.nlctr, every qviews' children and right views, and the
//     live-sibling chain fields (prev, next, childHead, childTail).
//     Prepare, Complete, syncHook and every engine fold (Retire,
//     ShareToPredecessor, SyncFold, FoldFrontier) operate under regMu.
//   - Lock order: consMu before regMu, always. Code holding regMu must
//     release it before touching consMu (Complete does exactly that);
//     consumer decision paths nest regMu inside consMu. In the legacy
//     single-mutex mode (NewLegacyLocked, kept for the lock-sharding
//     ablation benchmark) both roles collapse onto consMu and the nested
//     acquisition is a no-op.
//   - Single-writer fields need no lock: Queue.headView is written only
//     by the task currently holding the consumer role (ticket
//     arbitration makes that exclusive; a Complete-side frontier fold
//     writes it only while the consumer is parked under consMu, which
//     the fold also holds). Each qviews' user view is private to its
//     frame's goroutine. segment.tail is written only by the one
//     producer holding a local tail pointer to it, segment.head only by
//     the consumer-role holder (invariants 5 and 2 below).
//   - Atomics: Queue.waiters (producers read it lock-free to skip the
//     wake-up lock), Queue.everProducer (set under regMu when the first
//     push-privileged task registers, read lock-free by the
//     TryPop/ReadSlice miss path to skip the locked frontier fold,
//     cleared only by Recycle), Queue.consMuAcquires (a debug-mode
//     counter of consMu acquisitions, read by the lock-free fast-path
//     tests), qviews.popServed (advanced by completing pop children,
//     read by ticket gates), qviews.popTickets (written only by the
//     owning frame's goroutine during Prepare, atomic for the benefit of
//     readers), segment.head/tail/next (SPSC ring and chain
//     publication), and the debugChecks flag.
//   - Queue.consShard is a plain int written and read only by the
//     consumer-role holder; role handoff happens-before through the
//     popServed atomics.
//
// # Invariant numbering
//
// Comments throughout the package cite the §4.4 invariants by number:
//
//  1. Every hyperqueue holds at least one segment; the queue view's head
//     pointer is local.
//  2. There is exactly one queue view, and its head pointer is
//     manipulated only by the consumer-role holder.
//  3. The queue view's tail pointer is non-local, and a user view's head
//     pointer is non-local unless the view is empty — the queue view and
//     the serial frontier's user view share one split.
//  4. Every segment is reachable exactly once: through one next pointer
//     or one view head pointer.
//  5. At most one view holds a local tail pointer to a given segment,
//     and a local tail always points to a segment whose next link is nil
//     (the open tail).
//  6. (unnumbered in checks) Non-local pointers occur in matching pairs
//     between program-order-adjacent views; asserted by reduce.
//  7. Pair discipline at quiescence: the queue view's non-local tail
//     pairs with the owner's user (or children) view's non-local head.
//
// invariants.go checks 1–5 and 7 at quiescent points, and — with
// SetDebugChecks on — asserts at every permanent-emptiness decision that
// no view ordered before the consumer still hides data.
package core
