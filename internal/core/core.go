package core
