package core

import "repro/internal/sched"

// Bound queue handles: the per-task-body amortization of the privilege
// machinery. Queue.Push and Queue.Pop re-resolve the task's view set
// (Frame.Attachment), re-check the privilege mask, and — for consumers —
// re-arbitrate the consumer role and re-derive the segment-pool shard on
// every element. None of that state can change more often than once per
// spawn/sync boundary, so a task body that moves many values through a
// queue pays a per-element tax for a per-body decision. BindPush/BindPop
// perform those resolutions once and return a handle whose steady-state
// Push/Pop is a straight-line segment-ring operation, plus bulk
// PushSlice/PopInto transfers that cross segment boundaries in one call
// and touch the consumer wake-up probe once per call instead of once per
// element.
//
// Handles cache only bindings that are immutable for the frame's
// lifetime (the qviews pointer, the pool shard — stable for one task
// body, see Frame.WorkerID); every mutable structure they touch
// (the user view, the queue view, the pop tickets) is read through those
// pointers at access time. The view algebra's invalidation points —
// Prepare stealing the user view at spawn, syncHook folding children at
// sync, linkFrontier re-splitting the frontier, Recycle re-arming the
// queue — therefore need no handle bookkeeping at all: the handle
// observes the post-invalidation state on its next access, exactly as
// the unbound methods do. The one revalidation a handle performs itself
// is the consumer-role ticket check (two atomic loads) before each pop,
// because pop children spawned after BindPop must still serialize before
// the binder's later pops (§2.3 rule 3).
//
// Like the unbound methods with an explicit frame argument, a handle may
// only be used by the goroutine currently running the task body of the
// frame it was bound to, and must not outlive that body.

// Pusher is a push-privileged handle on a queue, bound to one task body
// by Queue.BindPush.
type Pusher[T any] struct {
	q     *Queue[T]
	qv    *qviews[T]
	shard int
}

// BindPush resolves frame f's push privilege on q once and returns the
// bound handle. It panics, like Push, if f holds no push privilege.
func (q *Queue[T]) BindPush(f *sched.Frame) Pusher[T] {
	qv := q.mustViews(f, ModePush)
	return Pusher[T]{q: q, qv: qv, shard: q.pool.shard(f.WorkerID())}
}

// Push appends v in the pushing task's position of serial program order —
// Queue.Push without the per-element privilege resolution.
//
// The consumer wake-up probe (one atomic load of waiters) is kept per
// element rather than batched per segment: a deferred wake would let a
// consumer parked mid-segment sleep until the segment fills, and a
// producer that then blocks on another queue of the same pipeline would
// deadlock it. Bulk transfers amortize the probe safely — see PushSlice.
func (p *Pusher[T]) Push(v T) {
	p.q.checkFailed()
	if fl := p.q.flow; fl != nil {
		fl.acquire(p.qv.vs.Frame, 1) // blocks on an exhausted bound (flow.go)
	}
	p.append1(v)
}

// append1 is the credit-free tail of a scalar push: segment attach/link
// plus the consumer wake probe. Callers have already settled the flow
// decision (blocking acquire, non-blocking TryPush, or a deadline), and
// nothing below can block, so a push is never torn by an unwind.
func (p *Pusher[T]) append1(v T) {
	qv := p.qv
	if !qv.vs.User.Valid {
		p.q.attachFreshSegment(qv)
	}
	seg := qv.vs.User.Tail
	if seg == nil {
		panic("hyperqueue: user view has non-local tail at push (internal invariant broken)")
	}
	if seg.full() {
		snew := p.q.pool.get(p.shard)
		seg.next.Store(snew) // tail ownership: only this task may link here
		qv.vs.User.Tail = snew
		seg = snew
	}
	seg.push(v)
	p.q.wakeConsumer()
}

// PushSlice appends every value of vs in order, crossing segment
// boundaries as needed: values are copied into the tail segment's
// contiguous free spans (contiguousWritable, §5.2) and published with
// one tail store per span, and the consumer wake-up probe runs once for
// the whole call instead of once per element. Pooled segments are
// linked when the tail fills, exactly as scalar pushes would.
//
// On a bounded queue the slice moves in credit-sized chunks: a call
// larger than the remaining budget — or than the whole bound — publishes
// what the budget allows, wakes the consumer so the chunk can drain, and
// blocks for more credits, so bulk producers make progress through any
// bound ≥ 1 instead of deadlocking on an all-or-nothing reservation.
func (p *Pusher[T]) PushSlice(vs []T) {
	if len(vs) == 0 {
		return
	}
	q, qv := p.q, p.qv
	q.checkFailed()
	for len(vs) > 0 {
		chunk := vs
		if fl := q.flow; fl != nil {
			n := fl.acquire(qv.vs.Frame, int64(len(vs)))
			chunk = vs[:n]
		}
		vs = vs[len(chunk):]
		for len(chunk) > 0 {
			if !qv.vs.User.Valid {
				q.attachFreshSegment(qv)
			}
			seg := qv.vs.User.Tail
			if seg == nil {
				panic("hyperqueue: user view has non-local tail at push (internal invariant broken)")
			}
			start, free := seg.contiguousWritable()
			if free == 0 { // zero contiguous free ⟺ segment full
				snew := q.pool.get(p.shard)
				seg.next.Store(snew)
				qv.vs.User.Tail = snew
				continue
			}
			take := min(int64(len(chunk)), free)
			copy(seg.buf[start:start+take], chunk[:take])
			seg.tail.Add(take) // release: publishes the whole span at once
			chunk = chunk[take:]
		}
		q.wakeConsumer()
	}
}

// Popper is a pop-privileged handle on a queue, bound to one task body
// by Queue.BindPop.
type Popper[T any] struct {
	q  *Queue[T]
	qv *qviews[T]
}

// BindPop resolves frame f's pop privilege on q once, acquires the
// consumer role (blocking, like a first Pop would, until every pop task
// f spawned so far on q has completed), and returns the bound handle.
// It panics, like Pop, if f holds no pop privilege.
func (q *Queue[T]) BindPop(f *sched.Frame) Popper[T] {
	qv := q.mustViews(f, ModePop)
	q.acquireConsumer(f, qv)
	return Popper[T]{q: q, qv: qv}
}

// ensure revalidates the consumer role: pop children spawned after the
// bind must complete before the binder's later pops (§2.3 rule 3). The
// steady-state cost is two atomic loads.
func (p *Popper[T]) ensure() {
	if p.qv.popServed.Load() != p.qv.popTickets.Load() {
		p.q.acquireConsumer(p.qv.vs.Frame, p.qv)
	}
}

// Empty is Queue.Empty through the binding: false as soon as a value is
// available, true only on permanent emptiness, blocking while undecided.
func (p *Popper[T]) Empty() bool {
	p.q.checkFailed()
	p.ensure()
	if p.q.reachableData() {
		return false
	}
	return p.q.emptyWait(p.qv.vs.Frame, p.qv)
}

// Pop is Queue.Pop through the binding: it removes and returns the head
// value, blocking while the head value has not yet been produced, and
// panics on a permanently empty queue. On a canceled scope a permanently
// empty answer (producers unwound early) raises the cancellation unwind
// instead of the programming-error panic.
func (p *Popper[T]) Pop() T {
	p.q.checkFailed()
	p.ensure()
	if !p.q.reachableData() && p.q.emptyWait(p.qv.vs.Frame, p.qv) {
		if sc := p.qv.vs.Frame.CancelScope(); sc.Canceled() {
			panic(sched.CancelUnwind{Err: sc.Err()})
		}
		panic("hyperqueue: pop on permanently empty queue")
	}
	v := p.q.headView.Head.pop()
	if fl := p.q.flow; fl != nil {
		fl.release(1) // credit the budget back; wakes blocked producers
	}
	return v
}

// TryPop is Queue.TryPop through the binding: the head value if one is
// immediately reachable (after folding any completed producers'
// deposited views), without blocking.
func (p *Popper[T]) TryPop() (T, bool) {
	p.ensure()
	if !p.q.tryReachable(p.qv.vs.Frame, p.qv) {
		var zero T
		return zero, false
	}
	v := p.q.headView.Head.pop()
	if fl := p.q.flow; fl != nil {
		fl.release(1)
	}
	return v, true
}

// PopInto fills dst with as many immediately-reachable values as fit,
// in serial program order, and reports how many were transferred. It is
// the bulk counterpart of TryPop: values are copied out of each segment's
// contiguous readable spans with one head advance per segment visited,
// crossing drained segments (and recycling them) exactly as repeated
// pops would, but paying the reachability probe once per segment instead
// of once per element. A zero return means no value is immediately
// available — use Empty to distinguish end-of-stream from a transient
// gap.
func (p *Popper[T]) PopInto(dst []T) int {
	p.ensure()
	n := 0
	for n < len(dst) {
		if !p.q.tryReachable(p.qv.vs.Frame, p.qv) {
			break
		}
		s := p.q.headView.Head
		start, avail := s.contiguousReadable()
		take := int64(len(dst) - n)
		if take > avail {
			take = avail
		}
		copy(dst[n:], s.buf[start:start+take])
		clear(s.buf[start : start+take]) // drop references for the garbage collector
		s.head.Add(take)                 // release: frees the slots to the producer
		n += int(take)
	}
	if n > 0 {
		if fl := p.q.flow; fl != nil {
			fl.release(int64(n)) // one batched credit return per call
		}
	}
	return n
}

// ReadSlice is Queue.ReadSlice through the binding: up to max
// already-produced values at the head, without copying, to be released
// with ConsumeRead.
func (p *Popper[T]) ReadSlice(max int) []T {
	p.ensure()
	if max < 1 || !p.q.tryReachable(p.qv.vs.Frame, p.qv) {
		return nil
	}
	s := p.q.headView.Head
	start, n := s.contiguousReadable()
	if n > int64(max) {
		n = int64(max)
	}
	return s.buf[start : start+n]
}

// ConsumeRead removes the first n values after a ReadSlice. The
// consumed span is contiguous by construction (ReadSlice returns a
// contiguousReadable prefix and the head cannot move in between), so
// the GC-clearing and the head advance are single span operations.
func (p *Popper[T]) ConsumeRead(n int) {
	p.ensure()
	s := p.q.headView.Head
	if int64(n) > s.size() {
		panic("hyperqueue: ConsumeRead past the end of the read slice")
	}
	start, _ := s.contiguousReadable()
	clear(s.buf[start : start+int64(n)]) // drop references for the garbage collector
	s.head.Add(int64(n))
	if n > 0 {
		if fl := p.q.flow; fl != nil {
			fl.release(int64(n))
		}
	}
}
