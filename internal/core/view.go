package core

import "repro/internal/core/hyper"

// view is the queue's instantiation of the substrate's paired chain
// view (§3.3): hyper.View over *segment[T]. The pairing/reduction
// discipline itself — split, reduce, the non-local pair ids and their
// assertions — lives in internal/core/hyper (pair.go), shared with
// every other hyperobject; this file keeps the queue-specific glue and
// diagnostics.
type view[T any] = hyper.View[*segment[T]]

// qviewOps is the queue's Ops instantiation, used by the queue's
// engine and the free reduce below.
type qviewOps[T any] = hyper.PairOps[*segment[T]]

// emptyView returns ε.
func emptyView[T any]() view[T] { return view[T]{} }

// localView returns the local view (s, s).
func localView[T any](s *segment[T]) view[T] { return hyper.Local(s) }

// split implements split((s,s)) = ((s, pNL), (pNL, s)) (§3.3); see
// hyper.Split.
func split[T any](s *segment[T], pairID uint64) (headOnly, tailOnly view[T]) {
	return hyper.Split(s, pairID)
}

// reduce implements reduce((h1,t1),(h2,t2)) = ((h1,t2), ε) (§3.3); see
// hyper.PairOps.Reduce. The queue's structural folds go through its
// engine (so effective merges are counted); this free function exists
// for the view unit tests.
func reduce[T any](v1, v2 *view[T]) {
	var ops qviewOps[T]
	ops.Reduce(v1, v2)
}

// viewHasData reports whether any segment of the view's chain holds a
// value. It is a diagnostic helper for the invariant checker, not a
// hot-path primitive: a view with a non-local head cannot be walked
// from its start, so only its tail segment is inspected in that case.
func viewHasData[T any](v *view[T]) bool {
	if !v.Valid {
		return false
	}
	if v.Head == nil {
		return v.Tail != nil && v.Tail.size() > 0
	}
	for s := v.Head; s != nil; s = s.next.Load() {
		if s.size() > 0 {
			return true
		}
		if s == v.Tail {
			break
		}
	}
	return false
}
