package core

import "fmt"

// view is a (head, tail) pair over a chain of queue segments (§3.3).
//
// Each of head and tail is either local — a real segment pointer — or
// non-local: a marker that the corresponding end of the chain is shared
// with an adjacent view in program order. The paper represents non-local
// pointers by null; here each non-local pointer additionally carries a
// unique id so that the pairing discipline ("non-local pointers always
// occur in pairs and must match between successive views in program
// order") can be asserted at every reduction.
//
// The empty view ε is the zero value (valid == false). A shared view with
// two non-local ends is distinct from ε, exactly as in the paper.
type view[T any] struct {
	head   *segment[T]
	tail   *segment[T]
	headNL uint64 // pair id when head is non-local (head == nil)
	tailNL uint64 // pair id when tail is non-local (tail == nil)
	valid  bool
}

// emptyView returns ε.
func emptyView[T any]() view[T] { return view[T]{} }

// localView returns the local view (s, s).
func localView[T any](s *segment[T]) view[T] {
	return view[T]{head: s, tail: s, valid: true}
}

// hasLocalTail reports whether the view can accept pushes at its tail.
func (v *view[T]) hasLocalTail() bool { return v.valid && v.tail != nil }

// hasLocalHead reports whether the view exposes a poppable head.
func (v *view[T]) hasLocalHead() bool { return v.valid && v.head != nil }

// hasData reports whether any segment of the view's chain holds a value.
// It is a diagnostic helper for the invariant checker, not a hot-path
// primitive: a view with a non-local head cannot be walked from its
// start, so only its tail segment is inspected in that case.
func (v *view[T]) hasData() bool {
	if !v.valid {
		return false
	}
	if v.head == nil {
		return v.tail != nil && v.tail.size() > 0
	}
	for s := v.head; s != nil; s = s.next.Load() {
		if s.size() > 0 {
			return true
		}
		if s == v.tail {
			break
		}
	}
	return false
}

func (v *view[T]) String() string {
	if !v.valid {
		return "ε"
	}
	h, t := "h", "t"
	if v.head == nil {
		h = fmt.Sprintf("NL%d", v.headNL)
	}
	if v.tail == nil {
		t = fmt.Sprintf("NL%d", v.tailNL)
	}
	return fmt.Sprintf("(%s,%s)", h, t)
}

// split implements split((s,s)) = ((s, pNL), (pNL, s)) (§3.3): it turns
// the local view on segment s into a head-only view and a tail-only view
// sharing a fresh non-local pair id. The head-only view is returned
// first.
func split[T any](s *segment[T], pairID uint64) (headOnly, tailOnly view[T]) {
	headOnly = view[T]{head: s, tailNL: pairID, valid: true}
	tailOnly = view[T]{headNL: pairID, tail: s, valid: true}
	return headOnly, tailOnly
}

// reduce implements reduce((h1,t1),(h2,t2)) = ((h1,t2), ε) (§3.3). The
// result replaces *v1 and *v2 becomes ε.
//
// Cases:
//  1. t1 and h2 local: the chains are concatenated by linking t1.next to
//     h2's segment.
//  2. t1 and h2 non-local: they must be a matching pair (the inverse of a
//     split); the segments are already linked.
//  3. Either argument ε: the other is the result.
//
// Any other combination indicates a broken program-order discipline and
// panics; the property tests exercise that these cases never arise.
func reduce[T any](v1, v2 *view[T]) {
	if !v2.valid {
		return
	}
	if !v1.valid {
		*v1 = *v2
		*v2 = emptyView[T]()
		return
	}
	switch {
	case v1.tail != nil && v2.head != nil:
		if v1.tail.next.Load() != nil {
			panic("hyperqueue: reduce would overwrite a next link (invariant 5 violated)")
		}
		v1.tail.next.Store(v2.head)
	case v1.tail == nil && v2.head == nil:
		if v1.tailNL != v2.headNL {
			panic(fmt.Sprintf("hyperqueue: mismatched non-local pair in reduce: %d vs %d", v1.tailNL, v2.headNL))
		}
	default:
		panic(fmt.Sprintf("hyperqueue: invalid reduction %s + %s", v1.String(), v2.String()))
	}
	v1.tail, v1.tailNL = v2.tail, v2.tailNL
	*v2 = emptyView[T]()
}
