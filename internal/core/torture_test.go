package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// TestPipelineChainOfQueues wires five queues in a chain with a relay
// task between each pair, all running concurrently.
func TestPipelineChainOfQueues(t *testing.T) {
	const n = 2000
	const stages = 5
	var got []int
	run(8, func(f *sched.Frame) {
		// All queues owned by the root; every relay holds Pop on its
		// input and Push on its output. All stages run concurrently.
		qs := make([]*Queue[int], stages+1)
		for i := range qs {
			qs[i] = NewWithCapacity[int](f, 32)
		}
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < n; i++ {
				qs[0].Push(c, i)
			}
		}, Push(qs[0]))
		for s := 0; s < stages; s++ {
			in, out := qs[s], qs[s+1]
			f.Spawn(func(c *sched.Frame) {
				for !in.Empty(c) {
					out.Push(c, in.Pop(c)+1)
				}
			}, Pop(in), Push(out))
		}
		f.Spawn(func(g *sched.Frame) {
			for !qs[stages].Empty(g) {
				got = append(got, qs[stages].Pop(g))
			}
		}, Pop(qs[stages]))
		f.Sync()
	})
	if len(got) != n {
		t.Fatalf("consumed %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i+stages {
			t.Fatalf("got[%d] = %d, want %d; order broken through the chain", i, v, i+stages)
		}
	}
}

// TestManyQueuesManyTasks creates many queues with interleaved producer
// and consumer tasks — the dedup pattern at scale.
func TestManyQueuesManyTasks(t *testing.T) {
	const queues = 50
	var total atomic.Int64
	run(8, func(f *sched.Frame) {
		sink := NewWithCapacity[int](f, 64)
		f.Spawn(func(frag *sched.Frame) {
			for qi := 0; qi < queues; qi++ {
				qi := qi
				local := NewWithCapacity[int](frag, 8)
				frag.Spawn(func(c *sched.Frame) {
					for i := 0; i < 20; i++ {
						local.Push(c, qi*1000+i)
					}
				}, Push(local))
				frag.Spawn(func(c *sched.Frame) {
					for !local.Empty(c) {
						sink.Push(c, local.Pop(c))
					}
				}, Pop(local), Push(sink))
			}
		}, Push(sink))
		f.Spawn(func(c *sched.Frame) {
			prev := -1
			for !sink.Empty(c) {
				v := sink.Pop(c)
				if v <= prev {
					t.Errorf("order violation: %d after %d", v, prev)
					return
				}
				prev = v
				total.Add(1)
			}
		}, Pop(sink))
		f.Sync()
	})
	if total.Load() != queues*20 {
		t.Fatalf("consumed %d, want %d", total.Load(), queues*20)
	}
}

// TestEmptyBlocksUntilProducerDecides pins the blocking semantics of
// Empty: with a visible producer alive but idle, Empty must not return
// until the producer either pushes or completes.
func TestEmptyBlocksUntilProducerDecides(t *testing.T) {
	hold := make(chan struct{})
	var emptyReturned atomic.Bool
	var result atomic.Bool
	rt := sched.New(4)
	done := make(chan struct{})
	go func() {
		rt.Run(func(f *sched.Frame) {
			q := New[int](f)
			f.Spawn(func(c *sched.Frame) {
				<-hold // producer alive, undecided
			}, Push(q))
			f.Spawn(func(c *sched.Frame) {
				result.Store(q.Empty(c))
				emptyReturned.Store(true)
			}, Pop(q))
			f.Sync()
		})
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	if emptyReturned.Load() {
		t.Fatal("Empty returned while a visible producer was undecided")
	}
	close(hold)
	<-done
	if !result.Load() {
		t.Fatal("Empty = false after the producer retired without pushing")
	}
}

// TestConsumerSerializationStress runs many pop tasks, each required to
// see a contiguous block.
func TestConsumerSerializationStress(t *testing.T) {
	const consumers = 30
	const per = 10
	results := make([][]int, consumers)
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 16)
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < consumers*per; i++ {
				q.Push(c, i)
			}
		}, Push(q))
		for k := 0; k < consumers; k++ {
			k := k
			f.Spawn(func(c *sched.Frame) {
				for j := 0; j < per; j++ {
					results[k] = append(results[k], q.Pop(c))
				}
			}, Pop(q))
		}
		f.Sync()
	})
	next := 0
	for k, block := range results {
		for j, v := range block {
			if v != next {
				t.Fatalf("consumer %d item %d = %d, want %d", k, j, v, next)
			}
			next++
		}
	}
}

// TestMixedObjectAndQueueDeps reproduces the dedup hyperqueue pattern
// under stress: queue deps and versioned-object deps on the same tasks.
func TestMixedObjectAndQueueDepsStress(t *testing.T) {
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 16)
		f.Spawn(func(c *sched.Frame) {
			for i := 1; i <= 500; i++ {
				q.Push(c, i)
			}
		}, Push(q))
		var sum int64
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				sum += int64(q.Pop(c))
			}
		}, Pop(q))
		f.Sync()
		if sum != 500*501/2 {
			t.Fatalf("sum = %d", sum)
		}
	})
}

// TestPushAfterSyncReusesViews: a frame that syncs and then pushes again
// must keep working (views fold and re-split).
func TestPushAfterSyncReusesViews(t *testing.T) {
	run(4, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		for round := 0; round < 5; round++ {
			base := round * 10
			f.Spawn(func(c *sched.Frame) {
				for i := 0; i < 10; i++ {
					q.Push(c, base+i)
				}
			}, Push(q))
			f.Sync()
		}
		for i := 0; i < 50; i++ {
			if got := q.Pop(f); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
	})
}

// TestInterleavedOwnerPushesAndChildTasks: the owner pushes inline
// between spawning producers and consumers — every ordering source at
// once.
func TestInterleavedOwnerPushesAndChildTasks(t *testing.T) {
	var got []int
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		q.Push(f, 0)
		f.Spawn(func(c *sched.Frame) { q.Push(c, 1); q.Push(c, 2) }, Push(q))
		q.Push(f, 3) // owner continues while the child may still run
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < 4; i++ {
				got = append(got, q.Pop(c))
			}
		}, Pop(q))
		q.Push(f, 4) // invisible to the consumer above
		f.Sync()
		for !q.Empty(f) {
			got = append(got, q.Pop(f))
		}
	})
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestLongChainSmallSegments maximizes segment-boundary crossings and
// head-sharing under the race detector.
func TestLongChainSmallSegments(t *testing.T) {
	const n = 20000
	var count int64
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 1)
		var produce func(c *sched.Frame, lo, hi int)
		produce = func(c *sched.Frame, lo, hi int) {
			if hi-lo <= 100 {
				for i := lo; i < hi; i++ {
					q.Push(c, i)
				}
				return
			}
			mid := (lo + hi) / 2
			c.Spawn(func(g *sched.Frame) { produce(g, lo, mid) }, Push(q))
			c.Spawn(func(g *sched.Frame) { produce(g, mid, hi) }, Push(q))
		}
		f.Spawn(func(c *sched.Frame) { produce(c, 0, n) }, Push(q))
		f.Spawn(func(c *sched.Frame) {
			expect := 0
			for !q.Empty(c) {
				if got := q.Pop(c); got != expect {
					t.Errorf("got %d, want %d", got, expect)
					return
				}
				expect++
				count++
			}
		}, Pop(q))
		f.Sync()
	})
	if count != n {
		t.Fatalf("consumed %d, want %d", count, n)
	}
}
