package core_test

// Backpressure tests for bounded queues (swan.Bounded): the credit
// accounting, the chunked bulk paths, the interaction of a blocked
// producer with queue lifecycle (Recycle, consumer completion), and the
// memory ceiling a bound buys. Everything runs under both scheduler
// policies — a blocked Push routes through Frame.Block, whose capacity
// compensation differs per substrate, and these tests are the pin on
// that coupling. Like the regression tests they drive the queue through
// the public swan API from an external test package.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/swan"
)

// TestBoundedRoundTrip pins the basic contract: a 1P/1C pipeline over a
// tight bound delivers every value in serial order, and the meter's
// totals and high-water respect the bound.
func TestBoundedRoundTrip(t *testing.T) {
	const total = 1000
	for _, policy := range policies {
		for _, bound := range []int{1, 3, 64} {
			t.Run(fmt.Sprintf("%v/bound=%d", policy, bound), func(t *testing.T) {
				var got []int
				var qs swan.QueueStats
				swan.NewWithPolicy(2, policy).Run(func(f *swan.Frame) {
					q := swan.NewQueueWithCapacity[int](f, 8, swan.Bounded(bound))
					swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
						for i := 0; i < total; i++ {
							push(i)
						}
					})
					swan.Drain(f, q, func(v int) { got = append(got, v) })
					f.Sync()
					qs, _ = q.Metrics()
				})
				if len(got) != total {
					t.Fatalf("drained %d values, want %d", len(got), total)
				}
				for i, v := range got {
					if v != i {
						t.Fatalf("got[%d] = %d; serial order broken", i, v)
					}
				}
				if qs.Pushed != total || qs.Popped != total {
					t.Errorf("meter pushed/popped = %d/%d, want %d/%d", qs.Pushed, qs.Popped, total, total)
				}
				if qs.HighWater < 1 || qs.HighWater > int64(bound) {
					t.Errorf("high-water = %d, want in [1, %d]", qs.HighWater, bound)
				}
				if qs.Occupancy != 0 {
					t.Errorf("occupancy after drain = %d, want 0", qs.Occupancy)
				}
			})
		}
	}
}

// TestBoundedPushSliceLargerThanBound pins the chunked bulk path: one
// PushSlice (and one WriteSlice/CommitWrite) far larger than the whole
// bound must make progress in credit-sized chunks against a concurrent
// consumer rather than deadlocking on an all-or-nothing reservation.
func TestBoundedPushSliceLargerThanBound(t *testing.T) {
	const total = 500
	for _, policy := range policies {
		for _, bound := range []int{1, 7} {
			t.Run(fmt.Sprintf("%v/bound=%d/pushslice", policy, bound), func(t *testing.T) {
				vals := make([]int, total)
				for i := range vals {
					vals[i] = i
				}
				var got []int
				swan.NewWithPolicy(2, policy).Run(func(f *swan.Frame) {
					q := swan.NewQueueWithCapacity[int](f, 16, swan.Bounded(bound))
					f.Spawn(func(c *swan.Frame) {
						pw := q.BindPush(c)
						pw.PushSlice(vals)
					}, swan.Push(q))
					swan.Drain(f, q, func(v int) { got = append(got, v) })
					f.Sync()
				})
				if len(got) != total {
					t.Fatalf("drained %d values, want %d", len(got), total)
				}
				for i, v := range got {
					if v != i {
						t.Fatalf("got[%d] = %d; serial order broken", i, v)
					}
				}
			})
			t.Run(fmt.Sprintf("%v/bound=%d/commitwrite", policy, bound), func(t *testing.T) {
				// CommitWrite accounts credits at publish time, chunked the
				// same way; the write slice itself must fit one segment, so
				// the commit (48) exceeds the bound but not segCap.
				const n = 48
				var got []int
				swan.NewWithPolicy(2, policy).Run(func(f *swan.Frame) {
					q := swan.NewQueueWithCapacity[int](f, 64, swan.Bounded(bound))
					f.Spawn(func(c *swan.Frame) {
						w := q.WriteSlice(c, n)
						for i := range w {
							w[i] = i
						}
						q.CommitWrite(c, n)
					}, swan.Push(q))
					swan.Drain(f, q, func(v int) { got = append(got, v) })
					f.Sync()
				})
				if len(got) != n {
					t.Fatalf("drained %d values, want %d", len(got), n)
				}
				for i, v := range got {
					if v != i {
						t.Fatalf("got[%d] = %d; serial order broken", i, v)
					}
				}
			})
		}
	}
}

// TestBoundedBlockedProducerVsRecycle pins the lifecycle interaction:
// while a producer is blocked on credits, CanRecycle must answer false
// (the producer is live); after the pipeline drains and the queue is
// recycled, the credit budget is rearmed and a second pipeline instance
// runs through the same queue.
func TestBoundedBlockedProducerVsRecycle(t *testing.T) {
	const bound, total = 2, 200
	for _, policy := range policies {
		t.Run(fmt.Sprintf("%v", policy), func(t *testing.T) {
			var rounds [2][]int
			swan.NewWithPolicy(2, policy).Run(func(f *swan.Frame) {
				q := swan.NewQueueWithCapacity[int](f, 4, swan.Bounded(bound))
				for round := 0; round < 2; round++ {
					round := round
					f.Spawn(func(c *swan.Frame) {
						pw := q.BindPush(c)
						for i := 0; i < total; i++ {
							pw.Push(i) // blocks regularly: bound 2, slow consumer
						}
					}, swan.Push(q))
					// The producer outruns the consumer immediately, so it is
					// live (likely parked on credits) here; the owner's probe
					// must see a non-quiescent queue.
					if q.CanRecycle(f) {
						t.Error("CanRecycle = true while a producer is live")
					}
					swan.Drain(f, q, func(v int) { rounds[round] = append(rounds[round], v) })
					f.Sync()
					if !q.CanRecycle(f) {
						t.Fatal("CanRecycle = false after Sync")
					}
					q.Recycle(f) // rearms the credit budget for the next round
				}
			})
			for round, got := range rounds {
				if len(got) != total {
					t.Fatalf("round %d drained %d values, want %d", round, len(got), total)
				}
				for i, v := range got {
					if v != i {
						t.Fatalf("round %d: got[%d] = %d; serial order broken", round, i, v)
					}
				}
			}
		})
	}
}

// TestBoundedConsumerCompletesWithoutDraining pins the case where the
// consumer task stops popping and completes while the producer may be
// parked on credits: the producer must not deadlock, because the
// consumer role falls back to the owner, whose drain keeps crediting
// the budget (consumer serialization hands the role over; the paper's
// rule 3). Every value still arrives, in serial order, split across the
// two consumers.
func TestBoundedConsumerCompletesWithoutDraining(t *testing.T) {
	const bound, total, firstN = 3, 120, 7
	for _, policy := range policies {
		t.Run(fmt.Sprintf("%v", policy), func(t *testing.T) {
			var first, rest []int
			swan.NewWithPolicy(2, policy).Run(func(f *swan.Frame) {
				q := swan.NewQueueWithCapacity[int](f, 4, swan.Bounded(bound))
				f.Spawn(func(c *swan.Frame) {
					pw := q.BindPush(c)
					for i := 0; i < total; i++ {
						pw.Push(i)
					}
				}, swan.Push(q))
				f.Spawn(func(c *swan.Frame) {
					pp := q.BindPop(c)
					for j := 0; j < firstN; j++ {
						first = append(first, pp.Pop())
					}
					// Completes with the producer still pushing (and, with
					// bound 3 << total, almost certainly parked on credits).
				}, swan.Pop(q))
				// Owner inherits the consumer role and drains the rest.
				pp := q.BindPop(f)
				for !pp.Empty() {
					rest = append(rest, pp.Pop())
				}
				f.Sync()
			})
			got := append(append([]int{}, first...), rest...)
			if len(got) != total {
				t.Fatalf("drained %d values, want %d", len(got), total)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("got[%d] = %d; serial order broken", i, v)
				}
			}
		})
	}
}

// TestBoundedTwoStagePipeline runs a two-queue pipeline where both
// stages are bounded tightly enough that every stage blocks: producer →
// q1 → transform → q2 → drain. Exercised under -race in CI, this is the
// pin on the credit machinery's memory ordering (concurrent acquire /
// release / park / wake on two queues at once).
func TestBoundedTwoStagePipeline(t *testing.T) {
	total := 2000
	if testing.Short() {
		total = 400
	}
	for _, policy := range policies {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/workers=%d", policy, workers), func(t *testing.T) {
				var got []int
				var q1s, q2s swan.QueueStats
				swan.NewWithPolicy(workers, policy).Run(func(f *swan.Frame) {
					q1 := swan.NewQueueWithCapacity[int](f, 4, swan.Bounded(2))
					q2 := swan.NewQueueWithCapacity[int](f, 4, swan.Bounded(3))
					swan.Produce(f, q1, func(c *swan.Frame, push func(int)) {
						for i := 0; i < total; i++ {
							push(i)
						}
					})
					swan.TransformSerial(f, q1, q2, func(v int, emit func(int)) { emit(v * 2) })
					swan.Drain(f, q2, func(v int) { got = append(got, v) })
					f.Sync()
					q1s, _ = q1.Metrics()
					q2s, _ = q2.Metrics()
				})
				if len(got) != total {
					t.Fatalf("drained %d values, want %d", len(got), total)
				}
				for i, v := range got {
					if v != 2*i {
						t.Fatalf("got[%d] = %d, want %d; serial order broken", i, v, 2*i)
					}
				}
				if q1s.HighWater > 2 || q2s.HighWater > 3 {
					t.Errorf("high-water (%d, %d) exceeds bounds (2, 3)", q1s.HighWater, q2s.HighWater)
				}
			})
		}
	}
}

// TestBoundedMemoryCeiling is the PR acceptance pin: a 1P/1C pipeline
// with swan.Bounded(64) and a deliberately slow consumer holds the peak
// segment footprint at the bound-derived ceiling. The faithful reading
// is the provider's fresh-allocation counter — the pool's cached count
// is capped by design — which may not exceed the live-chain ceiling
// ceil(bound/segCap)+2 (the +2: the producer's open tail split and the
// consumer's trailing drained segment not yet recycled) plus the one
// construction segment, however fast the producer would like to run.
func TestBoundedMemoryCeiling(t *testing.T) {
	const bound, segCap = 64, 16
	total := 200_000
	if testing.Short() {
		total = 50_000
	}
	for _, policy := range policies {
		t.Run(fmt.Sprintf("%v", policy), func(t *testing.T) {
			rt := swan.NewWithPolicy(2, policy)
			prov := core.ProviderOf(rt)
			var qs swan.QueueStats
			var drained int
			rt.Run(func(f *swan.Frame) {
				q := swan.NewQueueWithCapacity[int](f, segCap, swan.Bounded(bound))
				swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
					for i := 0; i < total; i++ {
						push(i)
					}
				})
				f.Spawn(func(c *swan.Frame) {
					pp := q.BindPop(c)
					for !pp.Empty() {
						pp.Pop()
						drained++
						if drained%bound == 0 {
							c.Sync() // an empty sync: just slows the consumer down
						}
					}
				}, swan.Pop(q))
				f.Sync()
				qs, _ = q.Metrics()
			})
			if drained != total {
				t.Fatalf("drained %d values, want %d", drained, total)
			}
			if qs.HighWater > bound {
				t.Errorf("high-water = %d exceeds bound %d", qs.HighWater, bound)
			}
			ceiling := uint64(bound/segCap + 3)
			if allocs := prov.SegmentAllocs(); allocs > ceiling {
				t.Errorf("segment allocs = %d, want <= %d (bound-derived ceiling)", allocs, ceiling)
			}
		})
	}
}

// TestBoundedSteadyStateZeroAllocs mirrors the unbounded zero-alloc
// guarantee for the bounded path while credits remain: with an ample
// budget the credit accounting is pure atomics and a warmed
// producer/consumer lap allocates nothing.
func TestBoundedSteadyStateZeroAllocs(t *testing.T) {
	swan.New(1).Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, 16, swan.Bounded(1024))
		pw := q.BindPush(f)
		pp := q.BindPop(f)
		buf := make([]int, 24)
		lap := func() {
			for i := 0; i < 40; i++ {
				pw.Push(i)
			}
			for i := 0; i < 40; i++ {
				pp.Pop()
			}
			pw.PushSlice(buf)
			for got := 0; got < len(buf); {
				got += pp.PopInto(buf[got:])
			}
		}
		lap() // warm the pool
		if n := testing.AllocsPerRun(50, lap); n != 0 {
			t.Errorf("bounded steady state allocates %.1f/lap, want 0", n)
		}
	})
}

// TestBoundedBlockCountersMeter pins that real backpressure is visible
// in the meter: with bound 1 and a strictly alternating consumer the
// producer must park at least once on a multi-worker runtime, and every
// park has a matching wake.
func TestBoundedBlockCountersMeter(t *testing.T) {
	const total = 2000
	var qs swan.QueueStats
	swan.NewWithPolicy(2, swan.PolicySteal).Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, 4, swan.Bounded(1))
		swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
			for i := 0; i < total; i++ {
				push(i)
			}
		})
		swan.Drain(f, q, func(int) {})
		f.Sync()
		qs, _ = q.Metrics()
	})
	if qs.Pushed != total || qs.Popped != total {
		t.Fatalf("meter pushed/popped = %d/%d, want %d/%d", qs.Pushed, qs.Popped, total, total)
	}
	if qs.HighWater != 1 {
		t.Errorf("high-water = %d, want 1 (bound 1)", qs.HighWater)
	}
	// Blocks are scheduling-dependent; wakes only happen for parked
	// producers, so wakes > 0 ⇒ blocks > 0. Assert consistency, not
	// exact counts.
	if qs.ProducerWakes > 0 && qs.ProducerBlocks == 0 {
		t.Errorf("producer wakes = %d with zero blocks", qs.ProducerWakes)
	}
}
