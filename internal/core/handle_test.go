package core

import (
	"testing"

	"repro/internal/sched"
)

// TestHandleScalarOrder pins the basic contract: values moved through
// bound handles arrive in serial program order, across producers bound
// in different tasks.
func TestHandleScalarOrder(t *testing.T) {
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		for w := 0; w < 4; w++ {
			base := w * 100
			f.Spawn(func(c *sched.Frame) {
				pw := q.BindPush(c)
				for i := 0; i < 10; i++ {
					pw.Push(base + i)
				}
			}, Push(q))
		}
		f.Spawn(func(c *sched.Frame) {
			pp := q.BindPop(c)
			var got []int
			for !pp.Empty() {
				got = append(got, pp.Pop())
			}
			if len(got) != 40 {
				t.Errorf("consumed %d values, want 40", len(got))
			}
			for i, v := range got {
				if want := (i/10)*100 + i%10; v != want {
					t.Errorf("position %d: got %d, want %d", i, v, want)
				}
			}
		}, Pop(q))
		f.Sync()
	})
}

// TestHandleBulkTransfer drives PushSlice/PopInto across many segment
// boundaries and ring wrap-arounds: slice sizes are deliberately coprime
// with the segment capacity so every span split is exercised.
func TestHandleBulkTransfer(t *testing.T) {
	const segCap, total = 8, 1000
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, segCap)
		f.Spawn(func(c *sched.Frame) {
			pw := q.BindPush(c)
			buf := make([]int, 0, 13)
			next := 0
			for next < total {
				buf = buf[:0]
				for len(buf) < 13 && next < total {
					buf = append(buf, next)
					next++
				}
				pw.PushSlice(buf)
			}
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			pp := q.BindPop(c)
			dst := make([]int, 7)
			next := 0
			for !pp.Empty() {
				n := pp.PopInto(dst)
				if n == 0 {
					t.Fatal("PopInto returned 0 immediately after Empty reported false")
				}
				for _, v := range dst[:n] {
					if v != next {
						t.Fatalf("position %d: got %d", next, v)
					}
					next++
				}
			}
			if next != total {
				t.Errorf("consumed %d values, want %d", next, total)
			}
		}, Pop(q))
		f.Sync()
	})
}

// TestHandleReadSlice exercises the bound ReadSlice/ConsumeRead pair.
func TestHandleReadSlice(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		pw := q.BindPush(f)
		for i := 0; i < 10; i++ {
			pw.Push(i)
		}
		pp := q.BindPop(f)
		next := 0
		for {
			s := pp.ReadSlice(3)
			if len(s) == 0 {
				break
			}
			for _, v := range s {
				if v != next {
					t.Fatalf("position %d: got %d", next, v)
				}
				next++
			}
			pp.ConsumeRead(len(s))
		}
		if next != 10 {
			t.Errorf("read %d values, want 10", next)
		}
	})
}

// TestRegressionHandleInvalidateAtSync is the -race regression for the
// handle lifecycle across the view algebra's invalidation points: a
// bound Pusher survives Prepare stealing the binder's user view (a push
// child spawned mid-stream), a Sync folding the children view back, and
// keeps appending in the binder's serial position; a bound Popper
// revalidates the consumer role when pop children spawned after the bind
// complete. The consumer must observe the exact serial elision. Runs
// under the race detector in CI (-run 'Regression').
func TestRegressionHandleInvalidateAtSync(t *testing.T) {
	rt := sched.New(4)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		var want []int
		f.Spawn(func(c *sched.Frame) {
			pw := q.BindPush(c)
			val := 0
			for round := 0; round < 6; round++ {
				pw.Push(val) // before the spawn: binder's position
				val++
				base := val
				c.Spawn(func(g *sched.Frame) { // steals c's user view
					cw := q.BindPush(g)
					cw.PushSlice([]int{base, base + 1})
				}, Push(q))
				val += 2
				// After the spawn the handle's next push reopens a fresh
				// tail ordered after the child's values (rule 4).
				pw.Push(val)
				val++
				if round%2 == 1 {
					c.Sync() // children view folds into user; handle unaffected
				}
			}
		}, Push(q))
		for i := 0; i < 24; i++ {
			want = append(want, i)
		}
		f.Spawn(func(c *sched.Frame) {
			pp := q.BindPop(c)
			// Pop children spawned after the bind: the handle's later pops
			// must wait for them (ticket revalidation), and their consumed
			// prefixes interleave deterministically with the binder's.
			var mine []int
			for round := 0; round < 3; round++ {
				c.Spawn(func(g *sched.Frame) {
					gp := q.BindPop(g)
					for k := 0; k < 4; k++ {
						mine = append(mine, gp.Pop()) // serialized before c's pops
					}
				}, Pop(q))
				c.Sync()
				mine = append(mine, pp.Pop())
				if v, ok := pp.TryPop(); ok {
					mine = append(mine, v)
				}
			}
			for !pp.Empty() {
				mine = append(mine, pp.Pop())
			}
			if len(mine) != len(want) {
				t.Errorf("consumed %d values, want %d", len(mine), len(want))
				return
			}
			for i := range want {
				if mine[i] != want[i] {
					t.Errorf("position %d: got %d, want %d", i, mine[i], want[i])
				}
			}
		}, Pop(q))
		f.Sync()
	})
}

// TestHandlePrivilegePanics pins that binding checks the privilege mask
// exactly like the unbound operations.
func TestHandlePrivilegePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		f.Spawn(func(c *sched.Frame) {
			expectPanic("BindPop on a push-only task", func() { q.BindPop(c) })
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			expectPanic("BindPush on a pop-only task", func() { q.BindPush(c) })
			for !q.Empty(c) {
				q.Pop(c)
			}
		}, Pop(q))
		f.Sync()
	})
}

// TestHandleSteadyStateZeroAllocs asserts the warmed bound-handle path —
// scalar and bulk — allocates nothing per lap, mirroring the unbound
// steady-state guarantee the segment pool provides.
func TestHandleSteadyStateZeroAllocs(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 16)
		pw := q.BindPush(f)
		pp := q.BindPop(f)
		buf := make([]int, 24)
		lap := func() {
			for i := 0; i < 40; i++ {
				pw.Push(i)
			}
			for i := 0; i < 40; i++ {
				pp.Pop()
			}
			pw.PushSlice(buf)
			for got := 0; got < len(buf); {
				got += pp.PopInto(buf[got:])
			}
		}
		lap() // warm the pool
		if n := testing.AllocsPerRun(50, lap); n != 0 {
			t.Errorf("bound-handle steady state allocates %.1f/lap, want 0", n)
		}
	})
}
