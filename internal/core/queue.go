// Package core implements hyperqueues, the paper's primary contribution
// (SC 2013, "Deterministic Scale-Free Pipeline Parallelism with
// Hyperqueues"): a deterministic queue abstraction whose values are
// exposed to the (single) consumer in serial program order, while many
// producer tasks push concurrently and the consumer pops concurrently
// with them.
//
// The implementation follows §3–§4 of the paper:
//
//   - the underlying storage is a linked chain of fixed-size SPSC ring
//     segments (segment.go);
//   - partial chains are tracked by views with local/non-local ends and
//     combined with split and reduce (view.go);
//   - every task holding privileges on a queue carries the view set
//     {children, user, right} (plus the conceptual queue view for
//     consumers), updated at push, spawn, completion and sync per §4.1–4.2;
//   - the queue view is stored once in the queue itself with ticket-based
//     ownership arbitration, the variant the paper sketches in §4.5
//     ("Special Optimization") for the queue hypermap;
//   - the per-segment producing flag of §3.2 is realized as a registry of
//     live producer tasks plus program-order labels: Empty blocks while
//     any producer that precedes the consumer in the serial elision is
//     still live, which is the same observable condition.
//
// # The Empty contract
//
// Empty is the consumer's end-of-stream test and is allowed to block: it
// returns false as soon as a value is available to pop, and it returns
// true only when the emptiness is permanent — no value ordered before
// the consumer's current position in the serial elision exists now or
// can ever be produced. While the answer is undecided (the queue looks
// empty but a producer ordered before the consumer is still live), Empty
// waits, releasing the task's execution capacity so it never starves
// runnable tasks. Pop relies on the same decision procedure: popping a
// permanently empty queue panics, and a pop on a temporarily empty queue
// blocks until the head value arrives.
//
// Deciding permanent emptiness takes more than scanning the head chain:
// values pushed by an already-completed producer can sit in a view that
// is not yet physically linked into the queue's segment chain (a
// completed task's user view deposited into a sibling's right view, a
// child's views folded into its parent's children view, ...). The
// consumer therefore finishes the deferred reductions itself: once no
// live producer precedes it, every view ordered before its position is
// held by one of its ancestors' children views or by its own children
// and user views, and linkFrontier folds exactly those into the queue
// view (the §4.5 "double reduction", applied consistently at the
// consumer rather than only at push time). Only if the queue view still
// exposes no value after that fold is the emptiness permanent.
package core

import (
	"runtime"
	"sync"

	"repro/internal/sched"
)

// emptySpins bounds the in-slot spin of Empty before it falls back to a
// blocking wait, and emptySpinsQuick is the short lock-free prefix of
// that spin run before the first producer-liveness check (see emptyWait).
const (
	emptySpins      = 128
	emptySpinsQuick = 8
)

// AccessMode is the set of privileges a task holds on a hyperqueue
// (§2.1): push, pop, or both.
type AccessMode uint8

const (
	// ModePush corresponds to pushdep: the task may push values.
	ModePush AccessMode = 1 << iota
	// ModePop corresponds to popdep: the task may pop values and test
	// Empty.
	ModePop
	// ModePushPop corresponds to pushpopdep.
	ModePushPop = ModePush | ModePop
)

func (m AccessMode) String() string {
	switch m {
	case ModePush:
		return "pushdep"
	case ModePop:
		return "popdep"
	case ModePushPop:
		return "pushpopdep"
	}
	return "invalid"
}

// DefaultSegmentCapacity is the queue segment length used when the
// program does not tune it (§5.1 discusses tuning).
const DefaultSegmentCapacity = 256

// Queue is a hyperqueue of values of type T. Create one with New inside a
// task; pass privileges to child tasks by spawning them with Push, Pop or
// PushPop dependences. The task that created the queue holds both
// privileges, like the paper's top-level task.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond // signals: data linked, producer retired, consumer ticket served
	segCap int
	nlctr  uint64

	// headView is the unique queue view (invariant 2). Its head pointer is
	// manipulated only by the task currently holding the consumer role;
	// role handoff is ticket-based (see qviews.popTickets/popServed).
	headView view[T]

	// producers holds the frames of live push-privileged tasks, used by
	// Empty's visibility test.
	producers map[*sched.Frame]struct{}

	owner   *sched.Frame
	ownerQV *qviews[T]

	// waiters counts consumers blocked in Empty/Pop so producers can skip
	// the wake-up lock on the fast path.
	waiters int32
}

// qviews is the per-(task, queue) view set of §4: children, user and
// right views, plus the bookkeeping that ties the task into the queue's
// program-order structures.
//
// Locking: user is private to the frame's goroutine (it is only touched
// by the frame's own push/sync/complete and by Prepare calls the frame
// itself makes). children and right are shared — siblings deposit into
// them — and are guarded by Queue.mu, as are the sibling links.
type qviews[T any] struct {
	q     *Queue[T]
	frame *sched.Frame
	mode  AccessMode

	user     view[T]
	children view[T] // guarded by q.mu
	right    view[T] // guarded by q.mu

	// Live-sibling chain among children (holding views on q) of the same
	// parent, in program order. Guarded by q.mu.
	parentQV   *qviews[T]
	prev, next *qviews[T]
	childHead  *qviews[T]
	childTail  *qviews[T]

	// Consumer serialization (§2.3 rule 3): pop-privileged children of
	// this frame execute one at a time, in spawn order, and the frame's
	// own pops wait for all of them. Guarded by q.mu.
	popTickets int64
	popServed  int64
	popTicket  int64 // this task's ticket within parentQV
}

type queueKey[T any] struct{ q *Queue[T] }

// New creates a hyperqueue owned by frame f with the default segment
// capacity.
func New[T any](f *sched.Frame) *Queue[T] { return NewWithCapacity[T](f, DefaultSegmentCapacity) }

// NewWithCapacity creates a hyperqueue owned by frame f whose segments
// hold segCap values each (§5.1, queue segment length tuning). The
// initial segment is created immediately (invariant 1) and the queue and
// user views are formed by splitting the local view on it (§4.1).
func NewWithCapacity[T any](f *sched.Frame, segCap int) *Queue[T] {
	if segCap < 1 {
		segCap = 1
	}
	q := &Queue[T]{segCap: segCap, owner: f, producers: make(map[*sched.Frame]struct{})}
	q.cond = sync.NewCond(&q.mu)
	s0 := newSegment[T](segCap)
	qv := &qviews[T]{q: q, frame: f, mode: ModePushPop}
	q.nlctr++
	q.headView, qv.user = split(s0, q.nlctr)
	q.ownerQV = qv
	f.SetAttachment(queueKey[T]{q}, qv)
	f.AddSyncHook(func() { q.syncHook(qv) })
	return q
}

// viewsOf returns the view set frame f holds on q, or nil.
func (q *Queue[T]) viewsOf(f *sched.Frame) *qviews[T] {
	v, _ := f.Attachment(queueKey[T]{q}).(*qviews[T])
	return v
}

func (q *Queue[T]) mustViews(f *sched.Frame, need AccessMode) *qviews[T] {
	qv := q.viewsOf(f)
	if qv == nil {
		panic("hyperqueue: task holds no privileges on this queue; spawn it with a queue dependence")
	}
	if qv.mode&need != need {
		panic("hyperqueue: task lacks " + need.String() + " privilege (holds " + qv.mode.String() + ")")
	}
	return qv
}

// syncHook folds the children view into the user view at a sync point
// (§4.2, "Sync"): user ← reduce(children, user).
func (q *Queue[T]) syncHook(qv *qviews[T]) {
	q.mu.Lock()
	defer q.mu.Unlock()
	reduce(&qv.children, &qv.user)
	qv.children, qv.user = qv.user, qv.children // result belongs in user; children becomes ε
}

// Push appends v to the queue in the pushing task's position of serial
// program order (§4.1). The fast path appends to the user view's tail
// segment without locks; a new segment is linked when the current one is
// full, and the head-sharing protocol runs when the task has no user
// view.
func (q *Queue[T]) Push(f *sched.Frame, v T) {
	qv := q.mustViews(f, ModePush)
	if !qv.user.valid {
		q.attachFreshSegment(qv)
	}
	seg := qv.user.tail
	if seg == nil {
		panic("hyperqueue: user view has non-local tail at push (internal invariant broken)")
	}
	if seg.full() {
		snew := newSegment[T](q.segCap)
		seg.next.Store(snew) // tail ownership: only this task may link here
		qv.user.tail = snew
		seg = snew
	}
	seg.push(v)
	q.wakeConsumer()
}

// attachFreshSegment implements the §4.1 protocol for a push into an
// empty user view: create a segment, split the local view on it, keep the
// tail-only half as the user view and hand the head-only half to the
// immediately preceding view in program order so the consumer can
// discover it as early as possible (the "double reduction" of §4.5).
func (q *Queue[T]) attachFreshSegment(qv *qviews[T]) {
	q.mu.Lock()
	defer q.mu.Unlock()
	snew := newSegment[T](q.segCap)
	q.nlctr++
	tmp, user := split(snew, q.nlctr)
	qv.user = user
	q.shareHead(qv, tmp)
}

// shareHead deposits a head-only view into the nearest preceding live
// view in program order (§4.1): the pusher's youngest live child, else
// its own children view, else — climbing the spawn tree — the nearest
// live elder sibling's right view or an ancestor's children view, ending
// at the queue owner's children view. Caller holds q.mu.
func (q *Queue[T]) shareHead(qv *qviews[T], tmp view[T]) {
	if yc := qv.childTail; yc != nil {
		reduce(&yc.right, &tmp)
		return
	}
	if qv.children.valid {
		reduce(&qv.children, &tmp)
		return
	}
	cur := qv
	for cur.parentQV != nil {
		if s := cur.prev; s != nil {
			reduce(&s.right, &tmp)
			return
		}
		p := cur.parentQV
		if p.children.valid {
			reduce(&p.children, &tmp)
			return
		}
		cur = p
	}
	// Top-level (queue owner): merge with its children view (§4.1).
	reduce(&cur.children, &tmp)
}

// depositCompleted folds a completed task's user view into its nearest
// live elder sibling's right view, or its parent's children view (§4.2,
// "Return from spawn with push privileges"). Caller holds q.mu.
func (q *Queue[T]) depositCompleted(qv *qviews[T]) {
	reduce(&qv.user, &qv.right)
	if s := qv.prev; s != nil {
		reduce(&s.right, &qv.user)
		return
	}
	reduce(&qv.parentQV.children, &qv.user)
}

// wakeConsumer wakes a consumer blocked in Empty or Pop, if any.
func (q *Queue[T]) wakeConsumer() {
	q.mu.Lock()
	if q.waiters > 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// visibleProducerLive reports whether any live producer's values could
// still become visible to consumer frame cf: a producer that precedes cf
// in the serial elision (and is not an ancestor — an ancestor's
// post-spawn pushes are hidden in cf's right view by rule 4), or a
// descendant of cf (spawned by cf before this pop, hence ordered before
// it). Caller holds q.mu.
func (q *Queue[T]) visibleProducerLive(cf *sched.Frame) bool {
	for pf := range q.producers {
		if pf == cf {
			continue
		}
		if cf.IsAncestorOf(pf) {
			return true
		}
		if pf.Before(cf) && !pf.IsAncestorOf(cf) {
			return true
		}
	}
	return false
}

// acquireConsumer blocks until frame f holds the consumer role: all pop
// tasks it has spawned so far on this queue have completed (§2.3 rule 3;
// §5.5 explains that a frame whose queue view is away simply blocks).
// Execution capacity is released while waiting. Caller must not hold q.mu.
func (q *Queue[T]) acquireConsumer(f *sched.Frame, qv *qviews[T]) {
	q.mu.Lock()
	if qv.popServed == qv.popTickets {
		q.mu.Unlock()
		return
	}
	q.mu.Unlock()
	f.Block(func() {
		q.mu.Lock()
		q.waiters++
		for qv.popServed != qv.popTickets {
			q.cond.Wait()
		}
		q.waiters--
		q.mu.Unlock()
	})
}

// reachableData advances the queue view's head across drained segments
// and reports whether a value is available to pop. Only the consumer-role
// holder may call it. It takes no lock: the head pointer and ring indices
// are consumer-owned, and next links are published with atomic stores.
func (q *Queue[T]) reachableData() bool {
	for {
		s := q.headView.head
		if s.size() > 0 {
			return true
		}
		n := s.next.Load()
		if n == nil {
			return false
		}
		// The segment is drained and abandoned by its producer (a next
		// link exists only once the producer moved on); follow the chain.
		// Re-check emptiness afterwards: a value may have landed between
		// the size check and the link load.
		if s.size() > 0 {
			return true
		}
		q.headView.head = n
	}
}

// linkFrontier folds every view ordered before consumer qv's current
// position into the queue view, making the values they hold physically
// reachable from the head chain. This is the §4.5 "double reduction"
// applied at the consumer: deposits performed by completed producers
// (depositCompleted, shareHead) only splice views together logically;
// the physical next links materialize when matching local ends finally
// reduce, which without this fold can be as late as the consumer's own
// completion — far too late for its own pops.
//
// Preconditions: the caller holds q.mu, qv's frame holds the consumer
// role, and no live producer precedes qv.frame in the serial elision
// (visibleProducerLive returned false). Under those conditions every
// task ordered before the consumer has completed — pop tasks by consumer
// serialization, push tasks because none is live — and deposited its
// views, transitively, into the children views of the consumer's
// ancestors (root-to-leaf order) or into the consumer's own children and
// user views. Views held by live tasks ordered after the consumer, and
// the consumer's own right view, hold only values ordered after it and
// are left alone (§2.3 rule 4).
//
// After the fold the queue view may end in a local tail (every produced
// segment is linked). It is then re-split: the queue view keeps the head
// and a fresh non-local tail, and the consumer's user view takes the
// pushable tail half — the queue view and the user view of the task at
// the serial frontier share one split, restoring invariant 3 and letting
// the consumer's next push extend the chain in place.
func (q *Queue[T]) linkFrontier(qv *qviews[T]) {
	var path []*qviews[T]
	for p := qv; p != nil; p = p.parentQV {
		path = append(path, p)
	}
	for i := len(path) - 1; i >= 0; i-- {
		reduce(&q.headView, &path[i].children)
	}
	reduce(&q.headView, &qv.user)
	if q.headView.tail != nil {
		q.nlctr++
		qv.user = view[T]{headNL: q.nlctr, tail: q.headView.tail, valid: true}
		q.headView.tail = nil
		q.headView.tailNL = q.nlctr
	}
}

// decideEmptyLocked settles the Empty answer once no live producer
// precedes the consumer: it links the frontier views and re-tests
// reachability. If nothing is reachable after the fold, the emptiness is
// permanent. Caller holds q.mu. With debug checks enabled a detected
// contract violation is returned (not panicked — the caller raises it
// after releasing q.mu so a violation cannot deadlock the task tree).
func (q *Queue[T]) decideEmptyLocked(qv *qviews[T]) (empty bool, violation string) {
	q.linkFrontier(qv)
	if q.reachableData() {
		return false, ""
	}
	if debugChecks.Load() {
		violation = q.checkNoHiddenDataLocked(qv)
	}
	return true, violation
}

// emptyWait is the slow path shared by Empty and Pop, entered after a
// failed reachableData probe. It spins briefly while a visible producer
// is live (in steady state the next value is microseconds away, and the
// consumer is typically the pipeline's serial bottleneck — parking it
// would put it at the back of the capacity queue behind every pending
// producer task), then falls back to a capacity-releasing blocking wait,
// which keeps pathological programs deadlock-free. When no visible
// producer remains, the answer is decided immediately via
// decideEmptyLocked — there is nothing to spin for.
func (q *Queue[T]) emptyWait(f *sched.Frame, qv *qviews[T]) bool {
	for i := 0; i < emptySpinsQuick; i++ {
		runtime.Gosched()
		if q.reachableData() {
			return false
		}
	}
	var empty bool
	var violation string
	q.mu.Lock()
	if !q.visibleProducerLive(f) {
		empty, violation = q.decideEmptyLocked(qv)
		q.mu.Unlock()
		if violation != "" {
			panic(violation)
		}
		return empty
	}
	q.mu.Unlock()
	for i := emptySpinsQuick; i < emptySpins; i++ {
		runtime.Gosched()
		if q.reachableData() {
			return false
		}
	}
	f.Block(func() {
		q.mu.Lock()
		q.waiters++
		for {
			if q.reachableData() {
				break
			}
			if !q.visibleProducerLive(f) {
				empty, violation = q.decideEmptyLocked(qv)
				break
			}
			q.cond.Wait()
		}
		q.waiters--
		q.mu.Unlock()
	})
	if violation != "" {
		panic(violation)
	}
	return empty
}

// Empty reports whether the queue is permanently empty for this task: it
// returns false when a value is available to pop, and true only when it
// is certain no more values visible to this task will arrive (§2.1) —
// see "The Empty contract" in the package comment. It blocks while the
// answer is undecided, releasing the worker slot.
func (q *Queue[T]) Empty(f *sched.Frame) bool {
	qv := q.mustViews(f, ModePop)
	q.acquireConsumer(f, qv)
	if q.reachableData() {
		return false
	}
	return q.emptyWait(f, qv)
}

// Pop removes and returns the value at the head of the queue. Calling Pop
// when Empty would report true is an error and panics, as in the paper
// ("popping elements from an empty queue is an error"). Pop blocks while
// the head value has not yet been produced. The fast path — data already
// linked at the head — takes no locks and does not enter the emptiness
// spin/wait protocol.
func (q *Queue[T]) Pop(f *sched.Frame) T {
	qv := q.mustViews(f, ModePop)
	q.acquireConsumer(f, qv)
	if !q.reachableData() && q.emptyWait(f, qv) {
		panic("hyperqueue: pop on permanently empty queue")
	}
	return q.headView.head.pop()
}

// TryPop is a non-blocking variant used by slice-style consumers: it
// returns the head value if one is immediately reachable. Before giving
// up it links any frontier views deposited by completed producers, so a
// value that exists and is ordered before the consumer is never missed.
func (q *Queue[T]) TryPop(f *sched.Frame) (T, bool) {
	qv := q.mustViews(f, ModePop)
	q.acquireConsumer(f, qv)
	if !q.tryReachable(f, qv) {
		var zero T
		return zero, false
	}
	return q.headView.head.pop(), true
}

// tryReachable is the non-blocking reachability probe shared by TryPop
// and ReadSlice: reachableData, with a frontier fold when it is safe (no
// live producer precedes the consumer). In that safe case a false
// answer is as strong as a true Empty — no preceding value exists — so
// the same no-hidden-data assertion applies under debug checks.
func (q *Queue[T]) tryReachable(f *sched.Frame, qv *qviews[T]) bool {
	if q.reachableData() {
		return true
	}
	var violation string
	q.mu.Lock()
	if !q.visibleProducerLive(f) {
		q.linkFrontier(qv)
		if debugChecks.Load() && !q.reachableData() {
			violation = q.checkNoHiddenDataLocked(qv)
		}
	}
	q.mu.Unlock()
	if violation != "" {
		panic(violation)
	}
	return q.reachableData()
}

// SyncPop suspends the calling frame until all of its child tasks with
// pop privileges on this queue have completed — the paper's selective
// sync, "sync (popdep<int>)queue;" (§5.5).
func (q *Queue[T]) SyncPop(f *sched.Frame) {
	qv := q.mustViews(f, ModePop)
	q.acquireConsumer(f, qv)
}

// SegmentCapacity reports the configured segment length.
func (q *Queue[T]) SegmentCapacity() int { return q.segCap }
