package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core/hyper"
	"repro/internal/sched"
)

// emptySpins bounds the in-slot spin of Empty before it falls back to a
// blocking wait, and emptySpinsQuick is the short lock-free prefix of
// that spin run before the first producer-liveness check (see emptyWait).
const (
	emptySpins      = 128
	emptySpinsQuick = 8
)

// AccessMode is the set of privileges a task holds on a hyperqueue
// (§2.1): push, pop, or both.
type AccessMode uint8

const (
	// ModePush corresponds to pushdep: the task may push values.
	ModePush AccessMode = 1 << iota
	// ModePop corresponds to popdep: the task may pop values and test
	// Empty.
	ModePop
	// ModePushPop corresponds to pushpopdep.
	ModePushPop = ModePush | ModePop
)

func (m AccessMode) String() string {
	switch m {
	case ModePush:
		return "pushdep"
	case ModePop:
		return "popdep"
	case ModePushPop:
		return "pushpopdep"
	}
	return "invalid"
}

// DefaultSegmentCapacity is the queue segment length used when the
// program does not tune it (§5.1 discusses tuning).
const DefaultSegmentCapacity = 256

// Queue is a hyperqueue of values of type T. Create one with New inside a
// task; pass privileges to child tasks by spawning them with Push, Pop or
// PushPop dependences. The task that created the queue holds both
// privileges, like the paper's top-level task.
//
// See the package comment for the locking map: consMu guards the
// consumer-side wait state, regMu the producer registry and shared
// views; consMu orders before regMu; headView and consShard are
// consumer-role-owned; waiters is atomic.
type Queue[T any] struct {
	segCap int
	legacy bool // NewLegacyLocked: both roles share consMu (ablation only)

	// Consumer-side state.
	consMu sync.Mutex
	cond   *sync.Cond // signals: data linked, producer retired, consumer ticket served
	// headView is the unique queue view (invariant 2). Its head pointer
	// is manipulated only by the task currently holding the consumer
	// role; role handoff is ticket-based (qviews.popTickets/popServed).
	headView view[T]
	// parked is the consumer-role holder currently blocked in
	// Empty/Pop's capacity-releasing wait, if any; a retiring producer's
	// Complete uses it to link the frontier from its own side. Guarded
	// by consMu; while it is non-nil and consMu is held, the parked
	// frame cannot touch headView.
	parked *qviews[T]
	// waiters counts consumers blocked in Empty/Pop so producers can
	// skip the wake-up lock entirely on the push fast path.
	waiters atomic.Int32
	// consShard caches the consumer-role holder's segment-pool shard for
	// the recycle in reachableData (written in acquireConsumer).
	consShard int
	// everProducer is set (and never cleared, except by Recycle) when a
	// push-privileged task is registered. While it is false, every value
	// in the queue was pushed by the owner frame itself, whose pushes
	// extend — or whose completed pop children's deposits physically
	// relink — the head chain, so TryPop/ReadSlice can decide a miss
	// lock-free from the chain walk alone (see tryReachable).
	everProducer atomic.Bool
	// consMuAcquires counts consMu acquisitions while debug checks are
	// enabled; the lock-free fast-path regression tests assert on it. Not
	// touched when debug checks are off.
	consMuAcquires atomic.Uint64
	// sleepers counts every goroutine currently inside a cond.Wait loop on
	// q.cond — Empty/Pop parkers, consumer-role waiters and pop-ticket
	// waiters alike. Guarded by consMu. wakeLocked uses it to downgrade a
	// Broadcast to a Signal when exactly one waiter exists: with a single
	// counted waiter the cond's wait set holds at most that goroutine, so
	// Signal reaches it (or it is already awake re-checking under consMu).
	// The count is deliberately wider than waiters: Signal with an
	// uncounted ticket waiter in the wait set could wake the wrong
	// goroutine and strand the parked consumer.
	sleepers int

	// Producer-registry state.
	regMu sync.Mutex
	// producers holds the frames of live push-privileged tasks, used by
	// Empty's visibility test.
	producers map[*sched.Frame]struct{}
	nlctr     uint64 // non-local pair id allocator
	// eng performs the structural view folds (link, hand-off, deposit,
	// sync fold, frontier fold, head sharing) on the generic substrate
	// (internal/core/hyper). The engine is lock-agnostic; every call
	// that touches shared view-set state runs under regMu (possibly
	// nested inside consMu), preserving the split-lock discipline and
	// the legacy single-mutex ablation.
	eng hyper.Engine[view[T], qviewOps[T]]

	// flow is the bounded-capacity / metering block (flow.go), nil for
	// plain unbounded queues — the hot paths pay a single predictable
	// nil check in that case. Immutable after construction.
	flow *flowState

	// failed is the poison cell (cancel.go): nil while healthy, set once
	// by Fail. Park predicates and operation entry points load it; the
	// flow state aliases it for the producer side.
	failed atomic.Pointer[failCell]

	// pool is the runtime-wide segment pool for this queue's element type
	// and segment capacity, resolved through the runtime's PoolProvider
	// at construction. Shared with every other such queue of the runtime.
	// prov is the provider it came from, kept for runtime-wide stats
	// (the recycled-queue counter).
	pool *segPool[T]
	prov *PoolProvider

	owner   *sched.Frame
	ownerQV *qviews[T]
}

// qviews is the per-(task, queue) view set of §4: the substrate's
// ViewSet (children, user and right views plus the live-sibling chain)
// together with the queue-specific consumer-serialization tickets.
//
// Locking: vs.User is private to the frame's goroutine (it is only
// touched by the frame's own push/sync/complete, by Prepare calls the
// frame itself makes, and — for a parked consumer — by a Complete-side
// frontier fold holding consMu). vs.Children and vs.Right are shared —
// siblings deposit into them — and are guarded by Queue.regMu, as are
// the sibling links.
type qviews[T any] struct {
	q    *Queue[T]
	mode AccessMode

	// vs is the task's view set on the substrate, maintained by q.eng
	// under q.regMu.
	vs hyper.ViewSet[view[T]]

	// parentQV duplicates vs.Parent at the queue layer (immutable after
	// Prepare): the consumer-serialization tickets below live on
	// qviews, not on the substrate's ViewSet.
	parentQV *qviews[T]

	// Consumer serialization (§2.3 rule 3): pop-privileged children of
	// this frame execute one at a time, in spawn order, and the frame's
	// own pops wait for all of them. popTickets is written only by the
	// frame's own goroutine (Prepare runs in the parent); popServed is
	// advanced by completing pop children, whose completions are
	// themselves serialized; both are atomic for their cross-goroutine
	// readers. popTicket is immutable after Prepare.
	popTickets atomic.Int64
	popServed  atomic.Int64
	popTicket  int64 // this task's ticket within parentQV
}

type queueKey[T any] struct{ q *Queue[T] }

// New creates a hyperqueue owned by frame f with the default segment
// capacity. Options (Bounded, Named) configure flow control and
// metering; the default is the paper's unbounded, unmetered queue.
func New[T any](f *sched.Frame, opts ...QueueOption) *Queue[T] {
	return NewWithCapacity[T](f, DefaultSegmentCapacity, opts...)
}

// NewWithCapacity creates a hyperqueue owned by frame f whose segments
// hold segCap values each (§5.1, queue segment length tuning). The
// initial segment is created immediately (invariant 1) and the queue and
// user views are formed by splitting the local view on it (§4.1). The
// queue draws its segments from the runtime-wide pool shared by every
// queue of the same element type and segment capacity (PoolProvider), so
// even a freshly constructed queue starts on recycled segments.
func NewWithCapacity[T any](f *sched.Frame, segCap int, opts ...QueueOption) *Queue[T] {
	return newQueue[T](f, segCap, false, opts...)
}

// NewLegacyLocked creates a hyperqueue that funnels every structural
// operation — Prepare, Complete, deposits, wake-ups — through the single
// consumer mutex, the way the queue was locked before the registry lock
// was split out. It exists only for BenchmarkPrepareCompleteContention,
// the sharded-vs-single-mutex ablation; programs should use New.
func NewLegacyLocked[T any](f *sched.Frame, segCap int) *Queue[T] {
	return newQueue[T](f, segCap, true)
}

func newQueue[T any](f *sched.Frame, segCap int, legacy bool, opts ...QueueOption) *Queue[T] {
	if segCap < 1 {
		segCap = 1
	}
	var o queueOpts
	for _, opt := range opts {
		opt(&o)
	}
	q := &Queue[T]{segCap: segCap, legacy: legacy, owner: f, producers: make(map[*sched.Frame]struct{})}
	q.cond = sync.NewCond(&q.consMu)
	q.prov = ProviderOf(f.Runtime())
	if o.bound > 0 || o.name != "" {
		q.flow = newFlowState(o.name, o.bound)
		q.flow.failedp = &q.failed
		q.prov.registerFlow(q.flow)
	}
	q.pool = poolFor[T](q.prov, segCap)
	s0 := q.pool.get(q.pool.shard(f.WorkerID()))
	qv := &qviews[T]{q: q, mode: ModePushPop}
	qv.vs.Frame = f
	q.nlctr++
	q.headView, qv.vs.User = split(s0, q.nlctr)
	q.ownerQV = qv
	f.SetAttachment(queueKey[T]{q}, qv)
	f.AddSyncHook(func() { q.syncHook(qv) })
	return q
}

// lockCons acquires the consumer-side lock. With debug checks enabled it
// also counts the acquisition, so the regression tests for the lock-free
// TryPop/ReadSlice miss path can assert that path never reaches here.
func (q *Queue[T]) lockCons() {
	if debugChecks.Load() {
		q.consMuAcquires.Add(1)
	}
	q.consMu.Lock()
}

// DebugConsLockAcquires reports how many times the consumer-side lock
// has been acquired while debug checks were enabled. Zero-delta windows
// around TryPop/ReadSlice misses are what the lock-free fast-path tests
// assert.
func (q *Queue[T]) DebugConsLockAcquires() uint64 { return q.consMuAcquires.Load() }

// lockReg acquires the producer-registry lock — consMu itself in legacy
// single-mutex mode. The caller must not hold consMu (use lockRegNested
// for that).
func (q *Queue[T]) lockReg() {
	if q.legacy {
		q.lockCons()
	} else {
		q.regMu.Lock()
	}
}

func (q *Queue[T]) unlockReg() {
	if q.legacy {
		q.consMu.Unlock()
	} else {
		q.regMu.Unlock()
	}
}

// lockRegNested acquires the registry lock while consMu is already held
// (the consMu-before-regMu order). In legacy mode the two are the same
// mutex and the nested acquisition is a no-op.
func (q *Queue[T]) lockRegNested() {
	if !q.legacy {
		q.regMu.Lock()
	}
}

func (q *Queue[T]) unlockRegNested() {
	if !q.legacy {
		q.regMu.Unlock()
	}
}

// viewsOf returns the view set frame f holds on q, or nil.
func (q *Queue[T]) viewsOf(f *sched.Frame) *qviews[T] {
	v, _ := f.Attachment(queueKey[T]{q}).(*qviews[T])
	return v
}

func (q *Queue[T]) mustViews(f *sched.Frame, need AccessMode) *qviews[T] {
	qv := q.viewsOf(f)
	if qv == nil {
		panic("hyperqueue: task holds no privileges on this queue; spawn it with a queue dependence")
	}
	if qv.mode&need != need {
		panic("hyperqueue: task lacks " + need.String() + " privilege (holds " + qv.mode.String() + ")")
	}
	return qv
}

// syncHook folds the children view into the user view at a sync point
// (§4.2, "Sync"): user ← reduce(children, user). The fold itself lives
// in the substrate (hyper.Engine.SyncFold).
func (q *Queue[T]) syncHook(qv *qviews[T]) {
	q.lockReg()
	defer q.unlockReg()
	q.eng.SyncFold(&qv.vs)
}

// Push appends v to the queue in the pushing task's position of serial
// program order (§4.1). The fast path appends to the user view's tail
// segment without locks; a pooled segment is linked when the current one
// is full, and the head-sharing protocol runs when the task has no user
// view. It is a one-element bind: the single implementation of the push
// machinery lives in Pusher (handle.go), and loops should bind once via
// BindPush instead of paying the per-element privilege resolution here.
func (q *Queue[T]) Push(f *sched.Frame, v T) {
	p := q.BindPush(f)
	p.Push(v)
}

// attachFreshSegment implements the §4.1 protocol for a push into an
// empty user view: take a segment, split the local view on it, keep the
// tail-only half as the user view and hand the head-only half to the
// immediately preceding view in program order so the consumer can
// discover it as early as possible (the "double reduction" of §4.5).
// The predecessor search — youngest live child, own children view, then
// climbing the spawn tree — lives in the substrate
// (hyper.Engine.ShareToPredecessor).
func (q *Queue[T]) attachFreshSegment(qv *qviews[T]) {
	snew := q.pool.get(q.pool.shard(qv.vs.Frame.WorkerID()))
	q.lockReg()
	defer q.unlockReg()
	q.nlctr++
	tmp, user := split(snew, q.nlctr)
	qv.vs.User = user
	q.eng.ShareToPredecessor(&qv.vs, &tmp)
}

// wakeConsumer wakes a consumer blocked in Empty or Pop, if any. On the
// sharded-lock path the check is a single atomic load, so a push with no
// parked consumer — the steady state — touches no lock at all. Lost
// wakeups are impossible: the consumer increments waiters under consMu
// before its final reachability re-check, so a producer either observes
// waiters > 0 (and its broadcast serializes with the consumer's wait
// through consMu) or stored its value before the consumer's re-check
// (and the consumer does not wait).
func (q *Queue[T]) wakeConsumer() {
	if q.legacy {
		// Legacy single-mutex behavior: every push takes the queue lock
		// to test for waiters.
		q.lockCons()
		if q.waiters.Load() > 0 {
			q.meterConsWake()
			q.wakeLocked()
		}
		q.consMu.Unlock()
		return
	}
	if q.waiters.Load() == 0 {
		return
	}
	q.meterConsWake()
	q.lockCons()
	q.wakeLocked()
	q.consMu.Unlock()
}

// meterConsWake counts a push that found a parked consumer — slow-path
// only, so the meter never touches the wake-free steady state.
func (q *Queue[T]) meterConsWake() {
	if fl := q.flow; fl != nil {
		fl.consWakes.Add(1)
	}
}

// wakeLocked wakes every cond waiter that could make progress. With
// exactly one registered sleeper a Signal suffices (single-consumer
// queues never need a broadcast): the wait set holds at most that one
// goroutine, so the single futex wake either reaches it or it is already
// awake re-checking its predicate under consMu. With several sleepers
// the classes are mixed (parked consumer, ticket waiters), so only a
// Broadcast is safe. Caller holds consMu.
func (q *Queue[T]) wakeLocked() {
	switch q.sleepers {
	case 0:
	case 1:
		q.cond.Signal()
	default:
		q.cond.Broadcast()
	}
}

// visibleProducerLive reports whether any live producer's values could
// still become visible to consumer frame cf: a producer that precedes cf
// in the serial elision (and is not an ancestor — an ancestor's
// post-spawn pushes are hidden in cf's right view by rule 4), or a
// descendant of cf (spawned by cf before this pop, hence ordered before
// it). Once false for a parked cf it stays false: no task ordered before
// cf can gain push privileges after cf started waiting. Caller holds
// q.regMu.
func (q *Queue[T]) visibleProducerLive(cf *sched.Frame) bool {
	for pf := range q.producers {
		if pf == cf {
			continue
		}
		if cf.IsAncestorOf(pf) {
			return true
		}
		if pf.Before(cf) && !pf.IsAncestorOf(cf) {
			return true
		}
	}
	return false
}

// acquireConsumer blocks until frame f holds the consumer role: all pop
// tasks it has spawned so far on this queue have completed (§2.3 rule 3;
// §5.5 explains that a frame whose queue view is away simply blocks).
// The fast path is two atomic loads — popTickets is written only by f's
// own goroutine, and popServed only advances. Execution capacity is
// released while waiting. Caller must not hold any queue lock.
// A canceled scope or a poisoned queue wakes the wait (the remaining pop
// children unwind and serve their tickets promptly in the canceled case);
// if the role still cannot be acquired the caller unwinds rather than
// touch the consumer state without it.
func (q *Queue[T]) acquireConsumer(f *sched.Frame, qv *qviews[T]) {
	if qv.popServed.Load() != qv.popTickets.Load() {
		sc := f.CancelScope()
		f.Block(func() {
			unreg := sc.OnCancel(q.broadcastCons)
			defer unreg()
			q.lockCons()
			q.sleepers++
			for qv.popServed.Load() != qv.popTickets.Load() {
				if q.failErr() != nil || sc.Canceled() {
					break
				}
				q.cond.Wait()
			}
			q.sleepers--
			q.consMu.Unlock()
		})
		if qv.popServed.Load() != qv.popTickets.Load() {
			if err := q.failErr(); err != nil {
				q.raiseStop(err)
			}
			q.raiseStop(sc.Err())
		}
	}
	q.consShard = q.pool.shard(f.WorkerID())
}

// reachableData advances the queue view's head across drained segments
// and reports whether a value is available to pop. Only the consumer-role
// holder may call it. It takes no lock: the head pointer and ring indices
// are consumer-owned, and next links are published with atomic stores.
// Each segment drained past is recycled into the segment pool — the
// producer that linked its successor abandoned it (a next link exists
// only once the producer moved on), no view points at it (invariants 4
// and 5), so the consumer owns it exclusively.
func (q *Queue[T]) reachableData() bool {
	for {
		s := q.headView.Head
		if s.size() > 0 {
			return true
		}
		n := s.next.Load()
		if n == nil {
			return false
		}
		// Re-check emptiness after the link load: a value may have landed
		// between the size check and the link load.
		if s.size() > 0 {
			return true
		}
		q.headView.Head = n
		q.pool.put(q.consShard, s)
	}
}

// linkFrontier folds every view ordered before consumer qv's current
// position into the queue view, making the values they hold physically
// reachable from the head chain. This is the §4.5 "double reduction"
// applied at the consumer: deposits performed by completed producers
// (the engine's Retire and ShareToPredecessor) only splice views
// together logically;
// the physical next links materialize when matching local ends finally
// reduce, which without this fold can be as late as the consumer's own
// completion — far too late for its own pops.
//
// Preconditions: the caller holds consMu and regMu, qv's frame holds the
// consumer role, and no live producer precedes qv.frame in the serial
// elision (visibleProducerLive returned false). Under those conditions
// every task ordered before the consumer has completed — pop tasks by
// consumer serialization, push tasks because none is live — and
// deposited its views, transitively, into the children views of the
// consumer's ancestors (root-to-leaf order) or into the consumer's own
// children and user views. Views held by live tasks ordered after the
// consumer, and the consumer's own right view, hold only values ordered
// after it and are left alone (§2.3 rule 4).
//
// The fold runs from two sides: the consumer's own emptiness decision
// (decideEmptyLocked, tryReachable) and a retiring producer's Complete
// when it finds the consumer parked — both under the same two locks, and
// the Complete side only while the consumer cannot concurrently touch
// headView (it is parked under consMu). Repeating the fold is harmless:
// folded views are ε and the re-split below merely renumbers the
// non-local pair.
//
// After the fold the queue view may end in a local tail (every produced
// segment is linked). It is then re-split: the queue view keeps the head
// and a fresh non-local tail, and the consumer's user view takes the
// pushable tail half — the queue view and the user view of the task at
// the serial frontier share one split, restoring invariant 3 and letting
// the consumer's next push extend the chain in place.
func (q *Queue[T]) linkFrontier(qv *qviews[T]) {
	q.eng.FoldFrontier(&qv.vs, &q.headView)
	if q.headView.Tail != nil {
		q.nlctr++
		qv.vs.User = view[T]{HeadNL: q.nlctr, Tail: q.headView.Tail, Valid: true}
		q.headView.Tail = nil
		q.headView.TailNL = q.nlctr
	}
}

// decideEmptyLocked settles the Empty answer once no live producer
// precedes the consumer: it links the frontier views and re-tests
// reachability. If nothing is reachable after the fold, the emptiness is
// permanent. Caller holds consMu and regMu (nested). With debug checks
// enabled a detected contract violation is returned (not panicked — the
// caller raises it after releasing the locks so a violation cannot
// deadlock the task tree).
func (q *Queue[T]) decideEmptyLocked(qv *qviews[T]) (empty bool, violation string) {
	q.linkFrontier(qv)
	if q.reachableData() {
		return false, ""
	}
	if debugChecks.Load() {
		violation = q.checkNoHiddenDataLocked(qv)
	}
	return true, violation
}

// emptyWait is the slow path shared by Empty and Pop, entered after a
// failed reachableData probe. It spins briefly while a visible producer
// is live (in steady state the next value is microseconds away, and the
// consumer is typically the pipeline's serial bottleneck — parking it
// would put it at the back of the capacity queue behind every pending
// producer task), then falls back to a capacity-releasing blocking wait,
// which keeps pathological programs deadlock-free. When no visible
// producer remains, the answer is decided immediately via
// decideEmptyLocked — there is nothing to spin for. While parked, the
// consumer registers itself in q.parked so the last retiring producer
// can link the frontier from its own side and the consumer wakes to
// already-linked data.
func (q *Queue[T]) emptyWait(f *sched.Frame, qv *qviews[T]) bool {
	empty, stop := q.emptyWaitStop(f, qv, time.Time{})
	if stop != nil {
		q.raiseStop(stop)
	}
	return empty
}

// emptyWaitStop is emptyWait with an explicit stop channel out: a
// non-nil stop is the reason the wait gave up without an answer — the
// queue's poison cause, the scope's cancellation cause, or ErrTimeout
// once the deadline fired (deadline.IsZero() means wait forever).
// emptyWait converts a stop into the matching unwind; PopTimeout returns
// it. The deadline timer is created only if the consumer actually parks,
// so the undecided-but-spinning path stays allocation-free.
func (q *Queue[T]) emptyWaitStop(f *sched.Frame, qv *qviews[T], deadline time.Time) (isEmpty bool, stop error) {
	sc := f.CancelScope()
	if err := q.failErr(); err != nil {
		return false, err
	}
	if sc.Canceled() {
		return false, sc.Err()
	}
	for i := 0; i < emptySpinsQuick; i++ {
		runtime.Gosched()
		if q.reachableData() {
			return false, nil
		}
	}
	var empty bool
	var violation string
	q.lockCons()
	q.lockRegNested()
	if !q.visibleProducerLive(f) {
		empty, violation = q.decideEmptyLocked(qv)
		q.unlockRegNested()
		q.consMu.Unlock()
		if violation != "" {
			panic(violation)
		}
		return empty, nil
	}
	q.unlockRegNested()
	q.consMu.Unlock()
	for i := emptySpinsQuick; i < emptySpins; i++ {
		runtime.Gosched()
		if q.reachableData() {
			return false, nil
		}
	}
	if fl := q.flow; fl != nil {
		fl.consBlocks.Add(1)
	}
	f.Block(func() {
		unreg := sc.OnCancel(q.broadcastCons)
		defer unreg()
		fired := false
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				stop = ErrTimeout
				return
			}
			tm := time.AfterFunc(rem, func() {
				q.lockCons()
				fired = true
				q.cond.Broadcast()
				q.consMu.Unlock()
			})
			defer tm.Stop()
		}
		q.lockCons()
		q.waiters.Add(1)
		q.parked = qv
		q.sleepers++
		for {
			if q.reachableData() {
				break
			}
			if err := q.failErr(); err != nil {
				stop = err
				break
			}
			if sc.Canceled() {
				stop = sc.Err()
				break
			}
			if fired {
				stop = ErrTimeout
				break
			}
			q.lockRegNested()
			if !q.visibleProducerLive(f) {
				empty, violation = q.decideEmptyLocked(qv)
				q.unlockRegNested()
				break
			}
			q.unlockRegNested()
			q.cond.Wait()
		}
		q.sleepers--
		q.parked = nil
		q.waiters.Add(-1)
		q.consMu.Unlock()
	})
	if violation != "" {
		panic(violation)
	}
	return empty, stop
}

// Empty reports whether the queue is permanently empty for this task: it
// returns false when a value is available to pop, and true only when it
// is certain no more values visible to this task will arrive (§2.1) —
// see "The Empty contract" in the package comment. It blocks while the
// answer is undecided, releasing the worker slot. Like Pop and TryPop it
// is a one-element bind over the Popper implementation (handle.go);
// consumer loops should bind once via BindPop.
func (q *Queue[T]) Empty(f *sched.Frame) bool {
	p := q.BindPop(f)
	return p.Empty()
}

// Pop removes and returns the value at the head of the queue. Calling Pop
// when Empty would report true is an error and panics, as in the paper
// ("popping elements from an empty queue is an error"). Pop blocks while
// the head value has not yet been produced. The fast path — data already
// linked at the head — takes no locks and does not enter the emptiness
// spin/wait protocol.
func (q *Queue[T]) Pop(f *sched.Frame) T {
	p := q.BindPop(f)
	return p.Pop()
}

// TryPop is a non-blocking variant used by slice-style consumers: it
// returns the head value if one is immediately reachable. Before giving
// up it links any frontier views deposited by completed producers, so a
// value that exists and is ordered before the consumer is never missed.
func (q *Queue[T]) TryPop(f *sched.Frame) (T, bool) {
	p := q.BindPop(f)
	return p.TryPop()
}

// tryReachable is the non-blocking reachability probe shared by TryPop
// and ReadSlice: reachableData, with a frontier fold when it is safe (no
// live producer precedes the consumer). In that safe case a false
// answer is as strong as a true Empty — no preceding value exists — so
// the same no-hidden-data assertion applies under debug checks.
//
// When no producer was ever registered on the queue, the miss is decided
// without taking any lock. The frontier fold exists to materialize
// physical next links for values that traveled through deposited views,
// and only registered (push-privileged, non-owner) tasks can leave such
// values dangling at a moment they are visible to the consumer: the
// owner is the sole unregistered pusher, and its pushes either extend
// the chain in place (its user view holds the open tail) or land in a
// fresh segment deposited toward a live pop child — a segment that is
// ordered after that child (§2.3 rule 4, hence correctly invisible to
// it) and that is physically linked by the child's own completion
// deposit (reduce of two local ends) before any later consumer can
// acquire the role (consumer serialization orders the completion before
// the handoff). So with the registry forever empty, every value ordered
// before the current consumer-role holder is already reachable from the
// head chain, and a failed chain walk is a definitive miss. A producer
// registered concurrently with the probe can only be ordered after the
// consumer (tasks ordered before it have completed or are the consumer's
// ancestors, whose later spawns follow it in program order), so the race
// on everProducer is benign.
func (q *Queue[T]) tryReachable(f *sched.Frame, qv *qviews[T]) bool {
	if q.reachableData() {
		return true
	}
	if !q.everProducer.Load() {
		return false
	}
	var violation string
	q.lockCons()
	q.lockRegNested()
	if !q.visibleProducerLive(f) {
		q.linkFrontier(qv)
		if debugChecks.Load() && !q.reachableData() {
			violation = q.checkNoHiddenDataLocked(qv)
		}
	}
	q.unlockRegNested()
	q.consMu.Unlock()
	if violation != "" {
		panic(violation)
	}
	return q.reachableData()
}

// SyncPop suspends the calling frame until all of its child tasks with
// pop privileges on this queue have completed — the paper's selective
// sync, "sync (popdep<int>)queue;" (§5.5).
func (q *Queue[T]) SyncPop(f *sched.Frame) {
	qv := q.mustViews(f, ModePop)
	q.acquireConsumer(f, qv)
}

// SegmentCapacity reports the configured segment length.
func (q *Queue[T]) SegmentCapacity() int { return q.segCap }

// CanRecycle reports whether Recycle would find the queue quiescent for
// owner frame f: every task ever granted privileges on the queue has
// completed and deposited its views back. It does not check that the
// queue is drained — Recycle itself verifies that and panics otherwise.
// Quiescence is stable: only f can grant new privileges, so a true
// answer remains true until f spawns again. The probe is cheap (two
// atomic loads plus one registry-lock check) and safe to poll from the
// owner while other pipelines run; churny callers (dedup's per-chunk
// pipelines) use it to pick a reusable queue out of their in-flight set.
func (q *Queue[T]) CanRecycle(f *sched.Frame) bool {
	qv := q.viewsOf(f)
	if qv == nil || qv.parentQV != nil {
		return false
	}
	if qv.popServed.Load() != qv.popTickets.Load() {
		return false
	}
	q.lockReg()
	ok := len(q.producers) == 0 && qv.vs.ChildHead == nil
	q.unlockReg()
	return ok
}

// Recycle resets a fully-drained, quiescent queue in place so the owner
// can run another pipeline instance through it without paying the
// construction cost again: every segment of the chain is returned to the
// runtime-wide pool, a pooled segment is split into fresh queue and user
// views (exactly as in NewWithCapacity), and the producer registry is
// rearmed — including the never-had-a-producer state that enables the
// lock-free TryPop/ReadSlice miss path.
//
// Only the owning task (the frame that created the queue) may call it,
// at a point where every task granted privileges has completed — after a
// Sync covering all of them, or when CanRecycle reports true. Recycle
// panics if a privilege-holding task is still live or if any value
// remains in the queue (recycling would silently drop it); drain the
// queue to permanent emptiness first. The owner's views, sync hook and
// frame attachment are retained, so a recycled queue costs no per-reuse
// allocations at all.
func (q *Queue[T]) Recycle(f *sched.Frame) {
	qv := q.mustViews(f, ModePushPop)
	if qv.parentQV != nil {
		panic("hyperqueue: only the owning task may Recycle a queue")
	}
	q.lockCons()
	q.lockRegNested()
	switch {
	case len(q.producers) > 0:
		q.unlockRegNested()
		q.consMu.Unlock()
		panic("hyperqueue: Recycle while push-privileged tasks are live")
	case qv.vs.ChildHead != nil:
		q.unlockRegNested()
		q.consMu.Unlock()
		panic("hyperqueue: Recycle while tasks holding privileges on the queue are live")
	case qv.popServed.Load() != qv.popTickets.Load():
		q.unlockRegNested()
		q.consMu.Unlock()
		panic("hyperqueue: Recycle before all pop-privileged tasks completed")
	}
	// Fold every deposited view into the head chain (no producer is live,
	// so the §4.5 frontier fold covers everything), then verify the chain
	// holds no data before releasing it.
	q.linkFrontier(qv)
	for s := q.headView.Head; s != nil; s = s.next.Load() {
		if s.size() > 0 {
			q.unlockRegNested()
			q.consMu.Unlock()
			panic("hyperqueue: Recycle on a non-empty queue (drain it to permanent emptiness first)")
		}
	}
	sid := q.pool.shard(f.WorkerID())
	for s := q.headView.Head; s != nil; {
		next := s.next.Load()
		q.pool.put(sid, s) // resets the segment; drops oversized ones
		s = next
	}
	s0 := q.pool.get(sid)
	q.nlctr++
	q.headView, qv.vs.User = split(s0, q.nlctr)
	qv.vs.Children, qv.vs.Right = emptyView[T](), emptyView[T]()
	q.everProducer.Store(false)
	if q.flow != nil {
		// The drain check above proved every pushed value was popped, so
		// all credits are home; the reset only matters after a recovered
		// panic left the accounting torn.
		q.flow.rearm()
	}
	q.unlockRegNested()
	q.consMu.Unlock()
	q.prov.recycles.Add(1)
}
