package core_test

// Regression tests for the serializability bug found by cmd/quickcheck
// (seed 139): values pushed by an already-completed producer sat in
// un-folded right/children views, a late pop-privileged task observed a
// permanently empty queue, silently skipped its pops, and the parent
// later popped the wrong head. These tests live in an external test
// package so they can drive the queue through the public swan API and
// the shared internal/qcheck program interpreter — exactly the stack the
// standalone verifier binary uses.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/qcheck"
	"repro/swan"
)

var policies = []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine}

// TestRegressionCompletedProducerVisibility is the distilled shape of
// quickcheck seed 139. The consumer A inherits an empty user view
// (because an earlier sibling took the owner's user view to its grave),
// spawns a pop child B — which takes A's empty user view — and then
// pushes. A's pushes land in a fresh segment whose head half is
// deposited into B's right view (correctly hidden from B). When B
// completes, the chain folds into A's children view, but no physical
// link into the queue's head chain exists until A itself completes — so
// A's own drain must perform the frontier fold or it wrongly sees a
// permanently empty queue and its values leak to the owner.
func TestRegressionCompletedProducerVisibility(t *testing.T) {
	for _, policy := range policies {
		for _, workers := range []int{1, 2, 4} {
			for _, segCap := range []int{1, 4} {
				name := fmt.Sprintf("%v/workers=%d/segcap=%d", policy, workers, segCap)
				t.Run(name, func(t *testing.T) {
					var bGot, aGot, ownerGot []int
					swan.NewWithPolicy(workers, policy).Run(func(f *swan.Frame) {
						q := swan.NewQueueWithCapacity[int](f, segCap)
						// X takes the owner's user view and completes:
						// the view is deposited into the owner's children
						// view, so A below starts with an empty user view.
						f.Spawn(func(c *swan.Frame) { q.Push(c, 1) }, swan.Push(q))
						f.Spawn(func(a *swan.Frame) {
							a.Spawn(func(b *swan.Frame) {
								bGot = append(bGot, q.Pop(b))
							}, swan.Pop(q))
							q.Push(a, 10)
							q.Push(a, 11)
							for !q.Empty(a) {
								aGot = append(aGot, q.Pop(a))
							}
							q.Push(a, 12)
						}, swan.PushPop(q))
						f.Sync()
						for !q.Empty(f) {
							ownerGot = append(ownerGot, q.Pop(f))
						}
					})
					if !reflect.DeepEqual(bGot, []int{1}) {
						t.Errorf("pop child consumed %v, want [1]", bGot)
					}
					if !reflect.DeepEqual(aGot, []int{10, 11}) {
						t.Errorf("drain task consumed %v, want [10 11] (completed producer's values lost)", aGot)
					}
					if !reflect.DeepEqual(ownerGot, []int{12}) {
						t.Errorf("owner consumed %v, want [12]", ownerGot)
					}
				})
			}
		}
	}
}

// TestRegressionNonBlockingConsumers drives the same completed-producer
// shape as TestRegressionCompletedProducerVisibility through the
// non-blocking consumer primitives only — TryPop and ReadSlice — which
// share the tryReachable fold rather than Empty's decision path. Without
// that fold both primitives are permanently blind to the deposited
// values (they only scan the physical head chain), so the retry loops
// below never finish; a generous deadline turns that into a failure
// instead of a test-suite hang.
func TestRegressionNonBlockingConsumers(t *testing.T) {
	for _, policy := range policies {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			var got []int
			deadline := time.Now().Add(30 * time.Second)
			swan.NewWithPolicy(2, policy).Run(func(f *swan.Frame) {
				q := swan.NewQueueWithCapacity[int](f, 1)
				// X takes the owner's user view to its grave; B takes A's
				// empty user view, so A's pushes land in a dangling chain
				// deposited through B's right view.
				f.Spawn(func(c *swan.Frame) {}, swan.Push(q))
				f.Spawn(func(a *swan.Frame) {
					a.Spawn(func(b *swan.Frame) {}, swan.Pop(q))
					q.Push(a, 10)
					q.Push(a, 11)
					// TryPop may transiently fail while X is still live, but
					// once every preceding producer has completed it must
					// surface the deposited values.
					for len(got) < 1 && time.Now().Before(deadline) {
						if v, ok := q.TryPop(a); ok {
							got = append(got, v)
						} else {
							runtime.Gosched()
						}
					}
					for len(got) < 2 && time.Now().Before(deadline) {
						if rs := q.ReadSlice(a, 4); len(rs) > 0 {
							got = append(got, rs[0])
							q.ConsumeRead(a, 1)
						} else {
							runtime.Gosched()
						}
					}
				}, swan.PushPop(q))
				f.Sync()
			})
			if !reflect.DeepEqual(got, []int{10, 11}) {
				t.Fatalf("non-blocking consumers saw %v, want [10 11] (completed producer's values invisible to TryPop/ReadSlice)", got)
			}
		})
	}
}

// TestRegressionSeed139 replays the exact quickcheck program that
// exposed the bug, across every configuration the default quickcheck
// sweep exercises and under both scheduling substrates. It also pins the
// generator's seed compatibility: if the program generated for seed 139
// ever drifts, the historical failure report stops being reproducible.
func TestRegressionSeed139(t *testing.T) {
	p := qcheck.Generate(139)
	wantOracle := map[int][]int{
		0: {25},
		1: {17, 18},
		2: {0, 1, 2, 3, 4, 5, 6, 7},
		5: {8, 9, 10, 11, 12, 13, 14, 15, 16},
		7: {21, 22, 23, 24},
		8: {19, 20},
	}
	if !qcheck.Equal(p.Oracle, wantOracle) {
		t.Fatalf("generator drift: seed 139 oracle = %v, want %v", p.Oracle, wantOracle)
	}
	for _, policy := range policies {
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			for _, segCap := range []int{1, 7, 256} {
				got, ok := p.Check(workers, segCap, policy)
				if !ok {
					t.Fatalf("seed 139 %v workers=%d segcap=%d:\n got:    %v\n oracle: %v",
						policy, workers, segCap, got, p.Oracle)
				}
			}
		}
	}
}

// TestRegressionQuickcheckSweep runs the front of the default quickcheck
// seed range (base seed 1, the same programs the CI job executes) so the
// bug class stays covered by plain `go test ./...` even where the
// standalone binary is never run. The full 200-program sweep lives in
// cmd/quickcheck; this keeps a representative slice in tier 1.
func TestRegressionQuickcheckSweep(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	for i := 0; i < seeds; i++ {
		p := qcheck.Generate(1 + uint64(i))
		for _, workers := range []int{1, 2} {
			for _, segCap := range []int{1, 7} {
				got, ok := p.Check(workers, segCap, swan.PolicySteal)
				if !ok {
					t.Fatalf("seed %d workers=%d segcap=%d:\n got:    %v\n oracle: %v",
						p.Seed, workers, segCap, got, p.Oracle)
				}
			}
		}
	}
}

// TestRegressionMultiQueueSweep sweeps the extended generator — programs
// over several hyperqueues whose tasks also Sync mid-body, Call children
// synchronously, and consume through Empty-guarded TryPop and
// ReadSlice/ConsumeRead runs — under both scheduling substrates. This is
// the coverage the single-queue generator cannot provide: cross-queue
// privilege delegation, a consumer of one queue producing into another,
// the syncHook children-view fold firing between actions, and the
// lock-free non-blocking consumer miss path, all against the
// sharded-lock queue.
func TestRegressionMultiQueueSweep(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for _, policy := range policies {
		for _, queues := range []int{2, 3} {
			t.Run(fmt.Sprintf("%v/queues=%d", policy, queues), func(t *testing.T) {
				for i := 0; i < seeds; i++ {
					p := qcheck.GenerateMulti(1+uint64(i), queues)
					for _, workers := range []int{1, 2} {
						for _, segCap := range []int{1, 7} {
							got, ok := p.Check(workers, segCap, policy)
							if !ok {
								t.Fatalf("seed %d queues=%d workers=%d segcap=%d:\n got:    %v\n oracle: %v",
									p.Seed, queues, workers, segCap, got, p.Oracle)
							}
						}
					}
				}
			})
		}
	}
}
