package core_test

// Regression tests for the lifecycle corners the soak fuzzer leans on:
// Queue.Recycle probed while a bounded producer is blocked on credits,
// and a runtime torn down and rebuilt under the other scheduling policy
// with the segment pools carried over mid-churn. Both run under -race in
// the CI regression job.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/swan"
)

// TestRegressionRecycleVsBlockedBoundedProducer pins the interaction of
// the Recycle quiescence probe with the credit path: while a producer
// child is blocked mid-burst on a tight bound, CanRecycle must answer
// false (the producer is registered and live), it must keep answering
// false for as long as the producer cannot have finished, and once the
// owner drains the queue and syncs, Recycle must succeed and the rearmed
// queue must carry another full burst.
func TestRegressionRecycleVsBlockedBoundedProducer(t *testing.T) {
	const (
		bound  = 4
		values = 16
	)
	for _, policy := range policies {
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			swan.NewWithPolicy(4, policy).Run(func(f *swan.Frame) {
				q := swan.NewQueueWithCapacity[int](f, 2, swan.Bounded(bound))
				f.Spawn(func(c *swan.Frame) {
					pu := q.BindPush(c)
					for v := 0; v < values; v++ {
						pu.Push(v) // blocks on credits after the first bound pushes
					}
				}, swan.Push(q))
				for i := 0; i < values; i++ {
					// Until enough credits were freed for the producer to
					// have pushed its last value, it is necessarily still
					// live, so the recycle probe must refuse.
					if i < values-bound && q.CanRecycle(f) {
						t.Errorf("%v: CanRecycle true after %d pops with the producer necessarily live", policy, i)
					}
					if got := q.Pop(f); got != i {
						t.Errorf("%v: pop %d = %d, want %d", policy, i, got, i)
					}
				}
				f.Sync()
				if !q.CanRecycle(f) {
					t.Fatalf("%v: CanRecycle false after drain and sync", policy)
				}
				q.Recycle(f)
				// The rearmed queue must have its full credit budget and
				// the never-had-a-producer fast path back: push another
				// blocking burst through it.
				f.Spawn(func(c *swan.Frame) {
					pu := q.BindPush(c)
					for v := 0; v < values; v++ {
						pu.Push(100 + v)
					}
				}, swan.Push(q))
				for i := 0; i < values; i++ {
					if got := q.Pop(f); got != 100+i {
						t.Errorf("%v: post-recycle pop %d = %d, want %d", policy, i, got, 100+i)
					}
				}
				f.Sync()
			})
		})
	}
}

// churn runs one producer/consumer pipeline cycle on rt, recycling the
// queue between the two bursts, and fails the test on any wrong value.
func churn(t *testing.T, rt *swan.Runtime, tag string) {
	t.Helper()
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, 8)
		for round := 0; round < 2; round++ {
			base := round * 1000
			f.Spawn(func(c *swan.Frame) {
				pu := q.BindPush(c)
				for v := 0; v < 500; v++ {
					pu.Push(base + v)
				}
			}, swan.Push(q))
			for v := 0; v < 500; v++ {
				if got := q.Pop(f); got != base+v {
					t.Errorf("%s: round %d pop %d = %d, want %d", tag, round, v, got, base+v)
					return
				}
			}
			f.Sync()
			q.Recycle(f)
		}
	})
}

// TestRegressionPolicySwitchMidChurn tears a runtime down mid-churn and
// rebuilds it under the other scheduling policy with CarryProvider: the
// rebuilt runtime must observe the same provider (recycling gauges
// continue, the pool audit balance spans the switch) and its warm pool
// must serve the same churn with no more fresh allocations than the
// first runtime needed.
func TestRegressionPolicySwitchMidChurn(t *testing.T) {
	pairs := [][2]swan.SpawnPolicy{
		{swan.PolicySteal, swan.PolicyGoroutine},
		{swan.PolicyGoroutine, swan.PolicySteal},
	}
	for _, pair := range pairs {
		t.Run(fmt.Sprintf("%v-to-%v", pair[0], pair[1]), func(t *testing.T) {
			rtA := swan.NewWithPolicy(4, pair[0])
			prov := core.ProviderOf(rtA)
			allocs0 := prov.SegmentAllocs()
			churn(t, rtA, "before switch")
			allocsA := prov.SegmentAllocs() - allocs0
			recycledA := prov.RecycledQueues()

			rtB := swan.NewWithPolicy(4, pair[1])
			if core.CarryProvider(rtA, rtB) != prov {
				t.Fatal("CarryProvider did not attach the old provider to the rebuilt runtime")
			}
			if got := core.ProviderOf(rtB); got != prov {
				t.Fatalf("rebuilt runtime resolved a different provider: %p vs %p", got, prov)
			}
			churn(t, rtB, "after switch")
			allocsB := prov.SegmentAllocs() - allocs0 - allocsA
			if allocsB > allocsA {
				t.Errorf("rebuilt runtime allocated %d fresh segments, first runtime only %d — pool not carried",
					allocsB, allocsA)
			}
			if got := prov.RecycledQueues(); got != recycledA+2 {
				t.Errorf("recycled-queue gauge %d after switch, want %d (continuity across rebuild)",
					got, recycledA+2)
			}
		})
	}
}
