package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
)

// ---------------------------------------------------------------------------
// Property testing: random spawn trees against the serial elision.
//
// The central theorem of the paper is that a program using hyperqueues is
// serializable: every consumer observes exactly the values, in exactly the
// order, that the serial elision (depth-first execution) would give it.
// These tests generate random programs — trees of tasks that push, pop,
// drain and spawn with random access modes respecting the privilege subset
// rule — compute the serial-elision outcome with a trivial interpreter,
// then execute the program on the real runtime at several worker counts
// and require identical outcomes.
// ---------------------------------------------------------------------------

const (
	actPush = iota
	actSpawn
	actPopN
	actDrain
)

type action struct {
	kind  int
	val   int
	n     int
	child *taskDef
}

type taskDef struct {
	id   int
	mode AccessMode
	acts []action
}

// genProgram builds a random program and simultaneously plays the serial
// elision to know how many values are queued at every point (so generated
// PopN actions are always legal).
type progGen struct {
	r       *rng.RNG
	nextID  int
	nextVal int
	qlen    int
	oracle  map[int][]int
	serialQ []int
}

func (g *progGen) gen(mode AccessMode, depth int) *taskDef {
	td := &taskDef{id: g.nextID, mode: mode}
	g.nextID++
	nacts := 2 + g.r.Intn(5)
	for i := 0; i < nacts; i++ {
		switch g.r.Intn(4) {
		case 0: // push a few values
			if mode&ModePush == 0 {
				continue
			}
			k := 1 + g.r.Intn(4)
			for j := 0; j < k; j++ {
				td.acts = append(td.acts, action{kind: actPush, val: g.nextVal})
				g.serialQ = append(g.serialQ, g.nextVal)
				g.nextVal++
				g.qlen++
			}
		case 1: // spawn a child with a subset of privileges
			if depth == 0 {
				continue
			}
			var cm AccessMode
			switch {
			case mode == ModePushPop:
				cm = []AccessMode{ModePush, ModePop, ModePushPop}[g.r.Intn(3)]
			default:
				cm = mode
			}
			child := g.gen(cm, depth-1)
			td.acts = append(td.acts, action{kind: actSpawn, child: child})
		case 2: // pop a legal number of values
			if mode&ModePop == 0 || g.qlen == 0 {
				continue
			}
			n := 1 + g.r.Intn(g.qlen)
			td.acts = append(td.acts, action{kind: actPopN, n: n})
			for j := 0; j < n; j++ {
				g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[0])
				g.serialQ = g.serialQ[1:]
			}
			g.qlen -= n
		case 3: // drain
			if mode&ModePop == 0 {
				continue
			}
			td.acts = append(td.acts, action{kind: actDrain})
			for len(g.serialQ) > 0 {
				g.oracle[td.id] = append(g.oracle[td.id], g.serialQ[0])
				g.serialQ = g.serialQ[1:]
			}
			g.qlen = 0
		}
	}
	return td
}

func runProgram(workers, segCap int, root *taskDef) map[int][]int {
	consumed := make(map[int][]int)
	var mu sync.Mutex
	record := func(id, v int) {
		mu.Lock()
		consumed[id] = append(consumed[id], v)
		mu.Unlock()
	}
	sched.New(workers).Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, segCap)
		var exec func(f *sched.Frame, td *taskDef)
		exec = func(f *sched.Frame, td *taskDef) {
			for _, a := range td.acts {
				switch a.kind {
				case actPush:
					q.Push(f, a.val)
				case actSpawn:
					child := a.child
					var dep sched.Dep
					switch child.mode {
					case ModePush:
						dep = Push(q)
					case ModePop:
						dep = Pop(q)
					default:
						dep = PushPop(q)
					}
					f.Spawn(func(c *sched.Frame) { exec(c, child) }, dep)
				case actPopN:
					for j := 0; j < a.n; j++ {
						record(td.id, q.Pop(f))
					}
				case actDrain:
					for !q.Empty(f) {
						record(td.id, q.Pop(f))
					}
				}
			}
		}
		exec(f, root)
	})
	return consumed
}

func TestPropertySerializability(t *testing.T) {
	programs := 200
	if testing.Short() {
		programs = 60
	}
	for seed := 0; seed < programs; seed++ {
		g := &progGen{r: rng.New(uint64(seed) + 1), oracle: make(map[int][]int)}
		root := g.gen(ModePushPop, 4)
		for _, workers := range []int{1, 2, 8} {
			for _, segCap := range []int{1, 3, 256} {
				got := runProgram(workers, segCap, root)
				if !equalConsumption(got, g.oracle) {
					t.Fatalf("seed %d workers %d segCap %d:\n got   %v\n oracle %v",
						seed, workers, segCap, got, g.oracle)
				}
			}
		}
	}
}

func TestPropertyRepeatability(t *testing.T) {
	// Determinism: two executions at high parallelism agree exactly.
	last := 180
	if testing.Short() {
		last = 120
	}
	for seed := 100; seed < last; seed++ {
		g := &progGen{r: rng.New(uint64(seed)), oracle: make(map[int][]int)}
		root := g.gen(ModePushPop, 4)
		a := runProgram(8, 7, root)
		b := runProgram(8, 7, root)
		if !equalConsumption(a, b) {
			t.Fatalf("seed %d: two runs disagree:\n a %v\n b %v", seed, a, b)
		}
	}
}

func equalConsumption(a, b map[int][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if !reflect.DeepEqual(va, b[k]) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// The §2.3 scheduling example: spawn A(push) B(push) C(pop) D(pushpop)
// E(push) F(pop). The rules require: C may run while A and B run; D waits
// for C; E may run before D and while C runs; F waits for D.
// ---------------------------------------------------------------------------

func TestSchedulingRulesAF(t *testing.T) {
	started := make(map[string]chan struct{})
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		started[n] = make(chan struct{})
	}
	var mu sync.Mutex
	finished := make(map[string]bool)
	finish := func(n string) {
		mu.Lock()
		finished[n] = true
		mu.Unlock()
	}
	wasFinished := func(n string) bool {
		mu.Lock()
		defer mu.Unlock()
		return finished[n]
	}

	run(8, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) { // A: blocks until C starts (rule 2)
			close(started["A"])
			<-started["C"]
			q.Push(c, 1)
			finish("A")
		}, Push(q))
		f.Spawn(func(c *sched.Frame) { // B: concurrent with A (rule 1)
			close(started["B"])
			<-started["A"]
			q.Push(c, 2)
			finish("B")
		}, Push(q))
		f.Spawn(func(c *sched.Frame) { // C: waits until E starts (rule 4)
			close(started["C"])
			<-started["E"]
			if q.Pop(c) != 1 || q.Pop(c) != 2 {
				t.Error("C observed wrong values")
			}
			finish("C")
		}, Pop(q))
		f.Spawn(func(c *sched.Frame) { // D: must run after C (rule 3)
			close(started["D"])
			if !wasFinished("C") {
				t.Error("D started before C completed (rule 3)")
			}
			q.Push(c, 4)
			// Serial elision: the queue is empty when D starts (C drained
			// it), D pushes 4 and pops its own value. E's 3 is pushed
			// after D in program order and must stay invisible here.
			if got := q.Pop(c); got != 4 {
				t.Errorf("D popped %d, want its own 4", got)
			}
			finish("D")
		}, PushPop(q))
		f.Spawn(func(c *sched.Frame) { // E: runs while C lives, before D
			close(started["E"])
			if wasFinished("C") {
				t.Log("E started after C finished (allowed, but weakens the rule-4 check)")
			}
			q.Push(c, 3)
			finish("E")
		}, Push(q))
		f.Spawn(func(c *sched.Frame) { // F: after D (rule 3)
			close(started["F"])
			if !wasFinished("D") {
				t.Error("F started before D completed (rule 3)")
			}
			// After D consumed its own 4, only E's 3 remains for F.
			if got := q.Pop(c); got != 3 {
				t.Errorf("F popped %d, want E's 3", got)
			}
			finish("F")
		}, Pop(q))
		f.Sync()
	})
}

// ---------------------------------------------------------------------------
// The §4.3 / Figure 4 execution: Task1(push){Task2 pushes 0–3, Task3
// pushes 4–7}, Task4(pop){Task5 pops 0,1}, Task6 pushes 8. Task5 must be
// able to pop 0 and 1 while Task3 may still be producing, and must never
// observe value 8.
// ---------------------------------------------------------------------------

func TestFigure4Scenario(t *testing.T) {
	task3go := make(chan struct{})
	task5done := make(chan struct{})
	var t5got []int
	var rest []int
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		f.Spawn(func(c *sched.Frame) { // Task 1
			c.Spawn(func(g *sched.Frame) { // Task 2
				for v := 0; v <= 3; v++ {
					q.Push(g, v)
				}
			}, Push(q))
			c.Spawn(func(g *sched.Frame) { // Task 3: holds until Task 5 popped
				q.Push(g, 4)
				<-task3go
				for v := 5; v <= 7; v++ {
					q.Push(g, v)
				}
			}, Push(q))
			c.Sync()
		}, Push(q))
		f.Spawn(func(c *sched.Frame) { // Task 4
			c.Spawn(func(g *sched.Frame) { // Task 5
				t5got = append(t5got, q.Pop(g), q.Pop(g))
				close(task3go) // Task 3 was still alive while we popped
				close(task5done)
			}, Pop(q))
			c.Sync()
		}, Pop(q))
		f.Spawn(func(c *sched.Frame) { // Task 6
			<-task5done
			q.Push(c, 8)
		}, Push(q))
		f.Sync()
		for !q.Empty(f) {
			rest = append(rest, q.Pop(f))
		}
	})
	if len(t5got) != 2 || t5got[0] != 0 || t5got[1] != 1 {
		t.Fatalf("Task 5 popped %v, want [0 1]", t5got)
	}
	want := []int{2, 3, 4, 5, 6, 7, 8}
	if !reflect.DeepEqual(rest, want) {
		t.Fatalf("remaining values %v, want %v", rest, want)
	}
}

// TestConsumerOverlapsProducer pins rule 2 directly: the consumer obtains
// values while the producer is provably still running.
func TestConsumerOverlapsProducer(t *testing.T) {
	sawFirst := make(chan struct{})
	var overlapped bool
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			q.Push(c, 1)
			<-sawFirst // consumer popped while we are mid-task
			overlapped = true
			q.Push(c, 2)
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			if q.Pop(c) != 1 {
				t.Error("wrong first value")
			}
			close(sawFirst)
			if q.Pop(c) != 2 {
				t.Error("wrong second value")
			}
		}, Pop(q))
		f.Sync()
	})
	if !overlapped {
		t.Fatal("producer finished before consumer started: no overlap")
	}
}

// TestDeepRecursiveProducers stresses the head-sharing climb across a
// deep spawn tree (the at-most-d-steps reduction of §4.5).
func TestDeepRecursiveProducers(t *testing.T) {
	const depth = 40
	var got []int
	run(4, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		var descend func(c *sched.Frame, d int)
		descend = func(c *sched.Frame, d int) {
			q.Push(c, depth-d) // push on the way down: 0, 1, 2, ...
			if d == 0 {
				return
			}
			c.Spawn(func(g *sched.Frame) { descend(g, d-1) }, Push(q))
			c.Sync()
			q.Push(c, depth+d) // push on the way up: deepest frame unwinds first
		}
		f.Spawn(func(c *sched.Frame) { descend(c, depth) }, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				got = append(got, q.Pop(c))
			}
		}, Pop(q))
		f.Sync()
	})
	if len(got) != 2*depth+1 {
		t.Fatalf("consumed %d, want %d", len(got), 2*depth+1)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; serial order broken (%v...)", i, v, got[:min(10, len(got))])
		}
	}
}

// TestManyValuesThroughput pushes a large volume through a small segment
// chain under full parallelism with the race detector watching.
func TestManyValuesThroughput(t *testing.T) {
	const n = 50000
	var count, sum int64
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 64)
		var producer func(c *sched.Frame, start, end int)
		producer = func(c *sched.Frame, start, end int) {
			if end-start <= 512 {
				for i := start; i < end; i++ {
					q.Push(c, i)
				}
				return
			}
			mid := (start + end) / 2
			c.Spawn(func(g *sched.Frame) { producer(g, start, mid) }, Push(q))
			c.Spawn(func(g *sched.Frame) { producer(g, mid, end) }, Push(q))
		}
		f.Spawn(func(c *sched.Frame) { producer(c, 0, n) }, Push(q))
		f.Spawn(func(c *sched.Frame) {
			prev := -1
			for !q.Empty(c) {
				v := q.Pop(c)
				if v <= prev {
					t.Errorf("order violation: %d after %d", v, prev)
					return
				}
				prev = v
				count++
				sum += int64(v)
			}
		}, Pop(q))
		f.Sync()
	})
	if count != n {
		t.Fatalf("consumed %d, want %d", count, n)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestViewStringer(t *testing.T) {
	v := emptyView[int]()
	if v.String() != "ε" {
		t.Errorf("empty view prints %q", v.String())
	}
	s := newSegment[int](4)
	lv := localView(s)
	if lv.String() != "(h,t)" {
		t.Errorf("local view prints %q", lv.String())
	}
	ho, to := split(s, 9)
	if ho.String() != "(h,NL9)" || to.String() != "(NL9,t)" {
		t.Errorf("split views print %q, %q", ho.String(), to.String())
	}
	_ = fmt.Sprintf("%v", lv)
}

func TestReduceEmptyCases(t *testing.T) {
	s1, s2 := newSegment[int](2), newSegment[int](2)
	a, b := localView(s1), localView(s2)
	var e view[int]
	reduce(&a, &e) // reduce(v, ε) = v
	if !a.Valid || a.Head != s1 {
		t.Fatal("reduce with ε rhs changed lhs")
	}
	reduce(&e, &b) // reduce(ε, v) = v
	if !e.Valid || e.Head != s2 {
		t.Fatal("reduce with ε lhs did not adopt rhs")
	}
	if b.Valid {
		t.Fatal("rhs not cleared")
	}
	var e2, e3 view[int]
	reduce(&e2, &e3) // reduce(ε, ε) = ε
	if e2.Valid || e3.Valid {
		t.Fatal("ε+ε produced non-ε")
	}
}

func TestReduceLocalConcatenates(t *testing.T) {
	s1, s2 := newSegment[int](2), newSegment[int](2)
	a, b := localView(s1), localView(s2)
	reduce(&a, &b)
	if a.Head != s1 || a.Tail != s2 {
		t.Fatal("concatenated view has wrong ends")
	}
	if s1.next.Load() != s2 {
		t.Fatal("segments not linked")
	}
}

func TestReduceMismatchedPairPanics(t *testing.T) {
	s1, s2 := newSegment[int](2), newSegment[int](2)
	ho1, _ := split(s1, 1)
	_, to2 := split(s2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched non-local pair did not panic")
		}
	}()
	reduce(&ho1, &to2) // tailNL=1 against headNL=2
}

func TestReduceInvalidComboPanics(t *testing.T) {
	s1, s2 := newSegment[int](2), newSegment[int](2)
	ho, _ := split(s1, 3) // (h, NL3)
	b := localView(s2)    // (h, t) — local head
	defer func() {
		if recover() == nil {
			t.Fatal("NL-tail against local-head did not panic")
		}
	}()
	reduce(&ho, &b)
}
