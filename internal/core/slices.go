package core

import "repro/internal/sched"

// Queue slices (§5.2): direct access to a queue segment, "as fast as an
// array access". A read slice exposes contiguous already-produced values
// at the head; a write slice exposes contiguous free space at the tail.
// Both are bounded by a single segment, so a shorter slice than requested
// may be returned, exactly as the paper specifies.

// ReadSlice returns up to max already-produced values at the head of the
// queue without copying. The values stay in the queue until ConsumeRead
// reports how many were processed. It requires pop privileges; it does
// not block — an empty result means no values are immediately available
// (use Empty to distinguish end-of-stream from a transient gap). Like
// the other consumer operations it is a one-shot bind over the Popper
// implementation (handle.go).
func (q *Queue[T]) ReadSlice(f *sched.Frame, max int) []T {
	p := q.BindPop(f)
	return p.ReadSlice(max)
}

// ConsumeRead removes the first n values from the queue after the caller
// has processed a ReadSlice. n must not exceed the length of the last
// ReadSlice result.
func (q *Queue[T]) ConsumeRead(f *sched.Frame, n int) {
	p := q.BindPop(f)
	p.ConsumeRead(n)
}

// WriteSlice returns a slice of n uninitialized value slots at the tail
// of the queue. The caller fills them and then calls CommitWrite; the
// values are not visible to the consumer until committed. A new segment
// is created when the current one cannot accommodate n contiguous slots
// (for n larger than the segment capacity the new segment is sized to
// fit, as §5.2 allows).
func (q *Queue[T]) WriteSlice(f *sched.Frame, n int) []T {
	qv := q.mustViews(f, ModePush)
	if n < 1 {
		return nil
	}
	if !qv.vs.User.Valid {
		q.attachFreshSegment(qv)
	}
	seg := qv.vs.User.Tail
	start, free := seg.contiguousWritable()
	if free < int64(n) {
		var snew *segment[T]
		if n > q.segCap {
			// Oversized request: a one-off segment sized to fit, outside
			// the pool (put drops it again on recycle). Counted in
			// SegmentAllocs so the pool-audit balance stays closed.
			snew = newSegment[T](n)
			q.prov.segAllocs.Add(1)
		} else {
			snew = q.pool.get(q.pool.shard(f.WorkerID()))
		}
		seg.next.Store(snew)
		qv.vs.User.Tail = snew
		seg = snew
		start = 0
	}
	return seg.buf[start : start+int64(n)]
}

// CommitWrite publishes the first n slots of the last WriteSlice to the
// consumer. On a bounded queue the credits are accounted here, at
// publish time — WriteSlice only reserves buffer space, which does not
// consume the element budget until the values become visible — and a
// commit larger than the remaining budget publishes in credit-sized
// chunks, waking the consumer between chunks, exactly like PushSlice.
func (q *Queue[T]) CommitWrite(f *sched.Frame, n int) {
	qv := q.mustViews(f, ModePush)
	seg := qv.vs.User.Tail
	if seg == nil {
		panic("hyperqueue: CommitWrite without WriteSlice")
	}
	t := seg.tail.Load()
	if t-seg.head.Load()+int64(n) > int64(len(seg.buf)) {
		panic("hyperqueue: CommitWrite past the end of the write slice")
	}
	for left := int64(n); left > 0; {
		chunk := left
		if fl := q.flow; fl != nil {
			chunk = fl.acquire(f, left)
		}
		left -= chunk
		t += chunk
		seg.tail.Store(t)
		q.wakeConsumer()
	}
	if n == 0 {
		q.wakeConsumer()
	}
}
