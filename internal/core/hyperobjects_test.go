package core

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// appendMonoid is associative and order-sensitive: a fold that merges
// views out of serial program order produces a visibly misordered list.
func appendMonoid() Monoid[[]int] {
	return Monoid[[]int]{
		Identity: func() []int { return nil },
		Combine:  func(into *[]int, from []int) { *into = append(*into, from...) },
	}
}

func TestReducerSerialOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []int
			run(workers, func(f *sched.Frame) {
				r := NewReducer(f, appendMonoid())
				for i := 0; i < 32; i++ {
					i := i
					f.Spawn(func(c *sched.Frame) {
						h := r.BindReduce(c)
						// Stagger completions so merges happen out of
						// spawn order under parallel schedules.
						if i%3 == 0 {
							time.Sleep(time.Millisecond)
						}
						h.Add([]int{i})
					}, Reduce(r))
				}
				f.Sync()
				got = r.Value(f)
			})
			want := make([]int, 32)
			for i := range want {
				want[i] = i
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("reducer fold = %v, want %v", got, want)
			}
		})
	}
}

func TestReducerNestedSpawns(t *testing.T) {
	var got []int
	run(4, func(f *sched.Frame) {
		r := NewReducer(f, appendMonoid())
		h := r.BindReduce(f)
		h.Add([]int{0})
		f.Spawn(func(c *sched.Frame) {
			ch := r.BindReduce(c)
			ch.Add([]int{1})
			c.Spawn(func(g *sched.Frame) {
				r.BindReduce(g).Add([]int{2})
			}, Reduce(r))
			c.Sync()
			ch.Add([]int{3})
		}, Reduce(r))
		f.Spawn(func(c *sched.Frame) {
			r.BindReduce(c).Add([]int{4})
		}, Reduce(r))
		r.BindReduce(f).Add([]int{5})
		f.Sync()
		got = r.Value(f)
	})
	// Serial elision: owner's 0, first child (1, then its child's 2,
	// then 3), second child's 4, owner's 5.
	want := []int{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reducer fold = %v, want %v", got, want)
	}
}

func TestReducerValueIdentityWhenEmpty(t *testing.T) {
	run(1, func(f *sched.Frame) {
		r := NewReducer(f, Monoid[int]{
			Identity: func() int { return 7 },
			Combine:  func(into *int, from int) { *into += from },
		})
		if v := r.Value(f); v != 7 {
			t.Fatalf("Value of untouched reducer = %d, want identity 7", v)
		}
	})
}

func TestReducerUpdate(t *testing.T) {
	var got [4]int64
	run(4, func(f *sched.Frame) {
		r := NewReducer(f, Monoid[[4]int64]{
			Identity: func() [4]int64 { return [4]int64{} },
			Combine: func(into *[4]int64, from [4]int64) {
				for i := range into {
					into[i] += from[i]
				}
			},
		})
		for i := 0; i < 100; i++ {
			slot := i % 4
			f.Spawn(func(c *sched.Frame) {
				r.BindReduce(c).Update(func(s *[4]int64) { s[slot]++ })
			}, Reduce(r))
		}
		f.Sync()
		got = r.Value(f)
	})
	if got != [4]int64{25, 25, 25, 25} {
		t.Fatalf("slot counts = %v, want all 25", got)
	}
}

func TestReducerMustViewsPanics(t *testing.T) {
	run(1, func(f *sched.Frame) {
		r := NewReducer(f, appendMonoid())
		f.Spawn(func(c *sched.Frame) {
			defer func() {
				if recover() == nil {
					t.Error("BindReduce on a frame without the dependence did not panic")
				}
			}()
			r.BindReduce(c)
		}) // no Reduce(r) dep
		f.Sync()
	})
}

func TestReducerStat(t *testing.T) {
	run(4, func(f *sched.Frame) {
		r := NewReducer(f, appendMonoid(), HyperNamed("stat-test"))
		for i := 0; i < 8; i++ {
			i := i
			f.Spawn(func(c *sched.Frame) {
				r.BindReduce(c).Add([]int{i})
			}, Reduce(r))
		}
		f.Sync()
		st := r.Stat()
		if st.Name != "stat-test" || st.Kind != "reducer" {
			t.Fatalf("Stat identity = %q/%q", st.Name, st.Kind)
		}
		if st.Views != 9 { // owner + 8 writers
			t.Fatalf("Stat.Views = %d, want 9", st.Views)
		}
		if st.Merges == 0 {
			t.Fatal("Stat.Merges = 0 after a parallel fold")
		}
		// The registry must aggregate this object under its name.
		found := false
		for _, s := range ProviderOf(f.Runtime()).HyperStats() {
			if s.Name == "stat-test" && s.Kind == "reducer" {
				found = true
			}
		}
		if !found {
			t.Fatal("named reducer missing from PoolProvider.HyperStats")
		}
	})
}

func TestHypermapFirstWriterWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for rep := 0; rep < 5; rep++ {
				var got []string
				run(workers, func(f *sched.Frame) {
					m := NewHypermap[int, string](f)
					for i := 0; i < 16; i++ {
						i := i
						f.Spawn(func(c *sched.Frame) {
							h := m.BindMap(c)
							if i%2 == 0 {
								time.Sleep(time.Millisecond) // let later writers race ahead
							}
							// Every writer puts key i%4; the serially
							// first (i = 0..3) must win.
							h.Put(i%4, fmt.Sprintf("writer-%d", i))
						}, MapWrite(m))
					}
					f.Sync()
					got = make([]string, 4)
					for k := 0; k < 4; k++ {
						v, ok := m.Get(f, k)
						if !ok {
							t.Errorf("key %d missing after sync", k)
						}
						got[k] = v
					}
				})
				want := []string{"writer-0", "writer-1", "writer-2", "writer-3"}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("rep %d: merged map = %v, want %v", rep, got, want)
				}
			}
		})
	}
}

func TestHypermapPutDupSoundness(t *testing.T) {
	// Put's dup report may have false negatives but never false
	// positives: a true must mean a serially-earlier occurrence exists.
	// Stress it by having each of 8 writers put the same 64 keys; count
	// how many times key k was reported non-dup. At most one writer can
	// be serially first, so per-key non-dup reports may exceed 1 only if
	// claims were not yet visible (allowed) — but a writer that is
	// serially FIRST must never see dup=true.
	var firstSawDup atomic.Bool
	run(4, func(f *sched.Frame) {
		m := NewHypermap[int, int](f)
		for w := 0; w < 8; w++ {
			w := w
			f.Spawn(func(c *sched.Frame) {
				h := m.BindMap(c)
				for k := 0; k < 64; k++ {
					if h.Put(k, w) && w == 0 {
						firstSawDup.Store(true)
					}
				}
			}, MapWrite(m))
		}
		f.Sync()
		// Determinism: first writer (w=0) wins every key.
		for k := 0; k < 64; k++ {
			if v, _ := m.Get(f, k); v != 0 {
				t.Fatalf("key %d = writer %d, want 0", k, v)
			}
		}
	})
	if firstSawDup.Load() {
		t.Fatal("serially-first writer got dup=true (unsound claim probe)")
	}
}

func TestHypermapAncestorClaimNotDup(t *testing.T) {
	// An ancestor's claim proves nothing for a child it spawned BEFORE
	// putting: in the serial elision the child's body runs first. The
	// child's Put must report dup=false even when the ancestor's claim
	// is already visible.
	run(1, func(f *sched.Frame) {
		m := NewHypermap[string, int](f)
		h := m.BindMap(f)
		f.Spawn(func(c *sched.Frame) {
			if m.BindMap(c).Put("k", 1) {
				t.Error("child saw dup=true from a claim its ancestor placed after spawning it")
			}
		}, MapWrite(m))
		// With workers=1 the child ran to completion inside Spawn, but
		// probe soundness is a label property, not a timing one; put
		// after the spawn so the serial elision orders the child first.
		h.Put("k", 2)
		f.Sync()
		if v, _ := m.Get(f, "k"); v != 1 {
			t.Fatalf("merged value = %d, want the child's 1 (child precedes parent's later put)", v)
		}
	})
}

func TestHypermapPutIfAbsentInterning(t *testing.T) {
	run(1, func(f *sched.Frame) {
		m := NewHypermap[string, int](f)
		h := m.BindMap(f)
		next := 0
		intern := func(k string) int {
			id, loaded := h.PutIfAbsent(k, next)
			if !loaded {
				next++
			}
			return id
		}
		keys := []string{"a", "b", "a", "c", "b", "a"}
		var ids []int
		for _, k := range keys {
			ids = append(ids, intern(k))
		}
		want := []int{0, 1, 0, 2, 1, 0}
		if !reflect.DeepEqual(ids, want) {
			t.Fatalf("interned ids = %v, want %v", ids, want)
		}
		if m.Len(f) != 3 {
			t.Fatalf("Len = %d, want 3", m.Len(f))
		}
	})
}

func TestHypermapGetSeesInheritedView(t *testing.T) {
	run(1, func(f *sched.Frame) {
		m := NewHypermap[string, int](f)
		m.BindMap(f).Put("parent", 1)
		f.Sync()
		f.Spawn(func(c *sched.Frame) {
			// The child inherits the parent's user view by hand-off.
			if v, ok := m.BindMap(c).Get("parent"); !ok || v != 1 {
				t.Errorf("child Get(parent) = %d,%v; want 1,true", v, ok)
			}
		}, MapWrite(m))
		f.Sync()
	})
}
