package core

import (
	"testing"

	"repro/internal/sched"
)

func run(workers int, fn func(*sched.Frame)) {
	sched.New(workers).Run(fn)
}

func TestOwnerInlinePushPop(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		for i := 0; i < 10; i++ {
			q.Push(f, i)
		}
		for i := 0; i < 10; i++ {
			if got := q.Pop(f); got != i {
				t.Errorf("Pop = %d, want %d", got, i)
			}
		}
		if !q.Empty(f) {
			t.Error("queue should be empty")
		}
	})
}

func TestSegmentOverflowChains(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4) // force many segments
		const n = 100
		for i := 0; i < n; i++ {
			q.Push(f, i)
		}
		for i := 0; i < n; i++ {
			if got := q.Pop(f); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
	})
}

func TestSegmentCapacityOne(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[string](f, 1)
		q.Push(f, "a")
		q.Push(f, "b")
		q.Push(f, "c")
		for _, want := range []string{"a", "b", "c"} {
			if got := q.Pop(f); got != want {
				t.Fatalf("Pop = %q, want %q", got, want)
			}
		}
	})
}

func TestRingReuseSteadyState(t *testing.T) {
	// Alternating push/pop in one segment exercises ring wrap-around many
	// times over (the paper's zero-allocation steady state).
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 8)
		for i := 0; i < 1000; i++ {
			q.Push(f, i)
			if got := q.Pop(f); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
	})
}

// TestFigure2Pipeline is the paper's Figure 2: a recursive
// divide-and-conquer producer and a single consumer, running
// concurrently. The consumer must see f(0), f(1), ... in order.
func TestFigure2Pipeline(t *testing.T) {
	const total = 500
	var got []int
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		var producer func(c *sched.Frame, start, end int)
		producer = func(c *sched.Frame, start, end int) {
			if end-start <= 10 {
				for n := start; n < end; n++ {
					q.Push(c, n*n) // f(n) = n²
				}
				return
			}
			mid := (start + end) / 2
			c.Spawn(func(g *sched.Frame) { producer(g, start, mid) }, Push(q))
			c.Spawn(func(g *sched.Frame) { producer(g, mid, end) }, Push(q))
			c.Sync()
		}
		f.Spawn(func(c *sched.Frame) { producer(c, 0, total) }, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				got = append(got, q.Pop(c))
			}
		}, Pop(q))
		f.Sync()
	})
	if len(got) != total {
		t.Fatalf("consumed %d values, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestFigure3FlatProducer is the paper's Figure 3: a shallow spawn tree
// where every leaf is spawned from one loop.
func TestFigure3FlatProducer(t *testing.T) {
	const total = 300
	var got []int
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			for n := 0; n < total; n += 10 {
				start := n
				end := n + 10
				c.Spawn(func(g *sched.Frame) {
					for i := start; i < end; i++ {
						q.Push(g, i)
					}
				}, Push(q))
			}
			c.Sync()
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				got = append(got, q.Pop(c))
			}
		}, Pop(q))
		f.Sync()
	})
	if len(got) != total {
		t.Fatalf("consumed %d, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (order broken)", i, v, i)
		}
	}
}

// TestInterleavedConsumers checks pop-task serialization and the handoff
// of remaining values: C1 pops a prefix, C2 pops the rest plus values
// from a later producer.
func TestInterleavedConsumers(t *testing.T) {
	var c1got, c2got []int
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < 10; i++ {
				q.Push(c, i)
			}
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < 5; i++ {
				c1got = append(c1got, q.Pop(c))
			}
		}, Pop(q))
		f.Spawn(func(c *sched.Frame) {
			for i := 10; i < 20; i++ {
				q.Push(c, i)
			}
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				c2got = append(c2got, q.Pop(c))
			}
		}, Pop(q))
		f.Sync()
	})
	for i, v := range c1got {
		if v != i {
			t.Fatalf("c1got[%d] = %d, want %d", i, v, i)
		}
	}
	if len(c2got) != 15 {
		t.Fatalf("c2 consumed %d, want 15 (got %v)", len(c2got), c2got)
	}
	for i, v := range c2got {
		if v != i+5 {
			t.Fatalf("c2got[%d] = %d, want %d", i, v, i+5)
		}
	}
}

// TestRule4Invisibility: a producer spawned after a consumer must be
// invisible to it (§2.3 rule 4), even though it runs concurrently.
func TestRule4Invisibility(t *testing.T) {
	var consumerSaw []int
	var ownerSaw []int
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				consumerSaw = append(consumerSaw, q.Pop(c))
			}
		}, Pop(q))
		f.Spawn(func(c *sched.Frame) {
			q.Push(c, 42)
			q.Push(c, 43)
		}, Push(q))
		f.Sync()
		// The owner, after sync, must find the younger producer's values.
		for !q.Empty(f) {
			ownerSaw = append(ownerSaw, q.Pop(f))
		}
	})
	if len(consumerSaw) != 0 {
		t.Fatalf("consumer saw %v; younger producer leaked (rule 4)", consumerSaw)
	}
	if len(ownerSaw) != 2 || ownerSaw[0] != 42 || ownerSaw[1] != 43 {
		t.Fatalf("owner saw %v, want [42 43]", ownerSaw)
	}
}

// TestEmptyTrueWhenProducerPushesNothing: a push task is not required to
// push (§2.1); Empty must still resolve to true.
func TestEmptyTrueWhenProducerPushesNothing(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {}, Push(q))
		var empty bool
		f.Spawn(func(c *sched.Frame) { empty = q.Empty(c) }, Pop(q))
		f.Sync()
		if !empty {
			t.Error("Empty = false with no values ever pushed")
		}
	})
}

// TestDestroyedWithValuesInside: dropping a queue with values left is
// legal (§2.1).
func TestDestroyedWithValuesInside(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < 100; i++ {
				q.Push(c, i)
			}
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			if q.Pop(c) != 0 {
				t.Error("first value wrong")
			}
			// Leaves 99 values inside.
		}, Pop(q))
		f.Sync()
	})
}

// TestFigure5LoopSplit is the paper's Figure 5: the main iteration loop
// hoisted outside the tasks; the producer runs inline in the owner,
// consumers are spawned per block.
func TestFigure5LoopSplit(t *testing.T) {
	const blocks = 20
	var got []int
	var mu chanLock
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		next := 0
		producer := func(block int) bool {
			for i := 0; i < block; i++ {
				q.Push(f, next)
				next++
			}
			return next < blocks*10
		}
		for producer(10) {
			f.Spawn(func(c *sched.Frame) {
				for !q.Empty(c) {
					v := q.Pop(c)
					mu.Lock()
					got = append(got, v)
					mu.Unlock()
				}
			}, Pop(q))
		}
		f.Sync()
		for !q.Empty(f) {
			got = append(got, q.Pop(f))
		}
	})
	if len(got) != blocks*10 {
		t.Fatalf("consumed %d, want %d", len(got), blocks*10)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; order broken", i, v)
		}
	}
}

// chanLock is a tiny mutex usable inside tests without importing sync.
type chanLock struct{ ch chan struct{} }

func (l *chanLock) Lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLock) Unlock() { <-l.ch }

// TestFigure6SelectiveSync is the paper's Figure 6: the owner pushes
// through child producers, a consumer runs, and the owner's own
// empty/pop blocks until the consumer is done, then proceeds.
func TestFigure6SelectiveSync(t *testing.T) {
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) { q.Push(c, 1) }, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				q.Pop(c)
			}
		}, Pop(q))
		f.Spawn(func(c *sched.Frame) { q.Push(c, 2) }, Push(q))
		// SyncPop suspends until the consumer is done (§5.5).
		q.SyncPop(f)
		if q.Empty(f) {
			t.Error("queue empty; producer after consumer lost its value")
		} else if got := q.Pop(f); got != 2 {
			t.Errorf("Pop = %d, want 2", got)
		}
	})
}

func TestPushPopTaskSeesOwnDescendants(t *testing.T) {
	var got []int
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(m *sched.Frame) {
			m.Spawn(func(p *sched.Frame) {
				q.Push(p, 1)
				q.Push(p, 2)
			}, Push(q))
			// The child producer precedes these pops in serial program
			// order, so its values are visible here.
			got = append(got, q.Pop(m), q.Pop(m))
		}, PushPop(q))
		f.Sync()
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestTryPop(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := New[int](f)
		if _, ok := q.TryPop(f); ok {
			t.Error("TryPop on empty queue returned a value")
		}
		q.Push(f, 7)
		v, ok := q.TryPop(f)
		if !ok || v != 7 {
			t.Errorf("TryPop = %d,%v, want 7,true", v, ok)
		}
	})
}

func TestPopOnEmptyPanics(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := New[int](f)
		defer func() {
			if recover() == nil {
				t.Error("Pop on permanently empty queue did not panic")
			}
		}()
		q.Pop(f)
	})
}

func TestPushWithoutPrivilegePanics(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			defer func() {
				if recover() == nil {
					t.Error("push from pop-only task did not panic")
				}
			}()
			q.Push(c, 1)
		}, Pop(q))
		f.Sync()
	})
}

func TestSubsetRuleViolationPanics(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			defer func() {
				if recover() == nil {
					t.Error("delegating pop from a push-only task did not panic")
				}
			}()
			c.Spawn(func(*sched.Frame) {}, Pop(q)) // push-only task grants pop: illegal (§2.3)
		}, Push(q))
		f.Sync()
	})
}

func TestNoPrivilegePanics(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			defer func() {
				if recover() == nil {
					t.Error("push from undeclared task did not panic")
				}
			}()
			q.Push(c, 1)
		}) // no queue dep at all
		f.Sync()
	})
}

func TestTwoQueuesIndependent(t *testing.T) {
	// dedup's shape: one task pops from a local queue and pushes to a
	// global one.
	const n = 200
	var got []int
	run(4, func(f *sched.Frame) {
		qa := New[int](f)
		qb := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < n; i++ {
				qa.Push(c, i)
			}
		}, Push(qa))
		f.Spawn(func(c *sched.Frame) {
			for !qa.Empty(c) {
				qb.Push(c, qa.Pop(c)*2)
			}
		}, Pop(qa), Push(qb))
		f.Spawn(func(c *sched.Frame) {
			for !qb.Empty(c) {
				got = append(got, qb.Pop(c))
			}
		}, Pop(qb))
		f.Sync()
	})
	if len(got) != n {
		t.Fatalf("consumed %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestStringTypeQueue(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[string](f)
		f.Spawn(func(c *sched.Frame) {
			q.Push(c, "hello")
			q.Push(c, "world")
		}, Push(q))
		f.Sync()
		if q.Pop(f) != "hello" || q.Pop(f) != "world" {
			t.Error("string values corrupted")
		}
	})
}

func TestSegmentCapacityAccessor(t *testing.T) {
	run(1, func(f *sched.Frame) {
		if NewWithCapacity[int](f, 17).SegmentCapacity() != 17 {
			t.Error("SegmentCapacity mismatch")
		}
		if NewWithCapacity[int](f, 0).SegmentCapacity() != 1 {
			t.Error("capacity not clamped to 1")
		}
	})
}

// TestCallWithPushPrivileges covers §4.2's "Call and return from call
// with push privileges": calls are treated like spawns for hyperqueue
// purposes, foregoing concurrency.
func TestCallWithPushPrivileges(t *testing.T) {
	var got []int
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Call(func(c *sched.Frame) {
			q.Push(c, 1)
			q.Push(c, 2)
		}, Push(q))
		q.Push(f, 3) // owner resumes pushing after the call returns
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				got = append(got, q.Pop(c))
			}
		}, Pop(q))
		f.Sync()
	})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCallWithPopPrivileges(t *testing.T) {
	run(4, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			q.Push(c, 10)
			q.Push(c, 11)
		}, Push(q))
		var inCall []int
		f.Call(func(c *sched.Frame) {
			inCall = append(inCall, q.Pop(c), q.Pop(c))
		}, Pop(q))
		if len(inCall) != 2 || inCall[0] != 10 || inCall[1] != 11 {
			t.Errorf("call consumed %v, want [10 11]", inCall)
		}
		// The queue view is back with the owner after the call.
		q.Push(f, 12)
		if got := q.Pop(f); got != 12 {
			t.Errorf("owner pop after call = %d, want 12", got)
		}
	})
}
