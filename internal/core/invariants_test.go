package core

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
)

func TestInvariantsFreshQueue(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := New[int](f)
		if v := q.CheckInvariants(f); len(v) != 0 {
			t.Fatalf("fresh queue violates invariants: %v", v)
		}
	})
}

func TestInvariantsAfterOwnerTraffic(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		for i := 0; i < 20; i++ {
			q.Push(f, i)
		}
		for i := 0; i < 10; i++ {
			q.Pop(f)
		}
		if v := q.CheckInvariants(f); len(v) != 0 {
			t.Fatalf("after owner traffic: %v", v)
		}
	})
}

func TestInvariantsAfterParallelProducers(t *testing.T) {
	run(8, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		for p := 0; p < 10; p++ {
			base := p * 100
			f.Spawn(func(c *sched.Frame) {
				for i := 0; i < 25; i++ {
					q.Push(c, base+i)
				}
			}, Push(q))
		}
		f.Sync()
		if v := q.CheckInvariants(f); len(v) != 0 {
			t.Fatalf("after parallel producers: %v", v)
		}
		// All 250 values reachable in order.
		for p := 0; p < 10; p++ {
			for i := 0; i < 25; i++ {
				if got := q.Pop(f); got != p*100+i {
					t.Fatalf("Pop = %d, want %d", got, p*100+i)
				}
			}
		}
		if v := q.CheckInvariants(f); len(v) != 0 {
			t.Fatalf("after draining: %v", v)
		}
	})
}

func TestInvariantsAfterMixedWorkload(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		g := &progGen{r: rng.New(uint64(seed) + 500), oracle: make(map[int][]int)}
		root := g.gen(ModePushPop, 3)
		sched.New(8).Run(func(f *sched.Frame) {
			q := NewWithCapacity[int](f, 3)
			var exec func(f *sched.Frame, td *taskDef)
			exec = func(f *sched.Frame, td *taskDef) {
				for _, a := range td.acts {
					switch a.kind {
					case actPush:
						q.Push(f, a.val)
					case actSpawn:
						child := a.child
						var dep sched.Dep
						switch child.mode {
						case ModePush:
							dep = Push(q)
						case ModePop:
							dep = Pop(q)
						default:
							dep = PushPop(q)
						}
						f.Spawn(func(c *sched.Frame) { exec(c, child) }, dep)
					case actPopN:
						for j := 0; j < a.n; j++ {
							q.Pop(f)
						}
					case actDrain:
						for !q.Empty(f) {
							q.Pop(f)
						}
					}
				}
			}
			exec(f, root)
			f.Sync()
			if v := q.CheckInvariants(f); len(v) != 0 {
				panic("seed violates invariants")
			}
		})
	}
}

func TestInvariantsDeepTree(t *testing.T) {
	run(4, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		var descend func(c *sched.Frame, d int)
		descend = func(c *sched.Frame, d int) {
			q.Push(c, d)
			if d == 0 {
				return
			}
			c.Spawn(func(g *sched.Frame) { descend(g, d-1) }, Push(q))
		}
		f.Spawn(func(c *sched.Frame) { descend(c, 30) }, Push(q))
		f.Sync()
		if v := q.CheckInvariants(f); len(v) != 0 {
			t.Fatalf("deep tree: %v", v)
		}
	})
}
