package hyper

import (
	"reflect"
	"testing"
)

// lv is a toy view for engine tests: an ordered list of ints. ε is the
// nil slice; reduction is append, which is associative and
// order-sensitive, so any fold that runs out of serial order shows up
// as a misordered result.
type lv struct{ xs []int }

type lops struct{}

func (lops) Valid(v *lv) bool { return v.xs != nil }

func (lops) Reduce(into, from *lv) {
	if from.xs == nil {
		return
	}
	if into.xs == nil {
		*into = *from
	} else {
		into.xs = append(into.xs, from.xs...)
	}
	*from = lv{}
}

func want(t *testing.T, got lv, xs ...int) {
	t.Helper()
	if !reflect.DeepEqual(got.xs, xs) {
		t.Fatalf("view = %v, want %v", got.xs, xs)
	}
}

func TestHandOffMovesUserView(t *testing.T) {
	var e Engine[lv, lops]
	p := &ViewSet[lv]{User: lv{[]int{1}}}
	c := &ViewSet[lv]{}
	e.HandOff(p, c)
	want(t, c.User, 1)
	if e.Ops.Valid(&p.User) {
		t.Fatal("parent user view not ε after hand-off")
	}
}

// TestRetireSerialOrder checks the §4.2 deposit discipline: with
// children A, B, C of one parent, the folded result is A, B, C for
// every completion order.
func TestRetireSerialOrder(t *testing.T) {
	orders := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, order := range orders {
		var e Engine[lv, lops]
		root := &ViewSet[lv]{}
		kids := make([]*ViewSet[lv], 3)
		for i := range kids {
			kids[i] = &ViewSet[lv]{}
			e.HandOff(root, kids[i])
			e.Link(root, kids[i])
			kids[i].User = lv{[]int{i}}
		}
		for _, i := range order {
			e.Retire(kids[i])
		}
		e.SyncFold(root)
		want(t, root.User, 0, 1, 2)
		if root.ChildHead != nil || root.ChildTail != nil {
			t.Fatal("sibling chain not empty after all children retired")
		}
	}
}

// TestRetireFoldsRightBeforeDeposit checks that a task's right view
// (data deposited toward it by later siblings' head shares) follows its
// own user view in the deposit.
func TestRetireFoldsRightBeforeDeposit(t *testing.T) {
	var e Engine[lv, lops]
	root := &ViewSet[lv]{}
	c := &ViewSet[lv]{}
	e.Link(root, c)
	c.User = lv{[]int{1}}
	c.Right = lv{[]int{2}}
	e.Retire(c)
	e.SyncFold(root)
	want(t, root.User, 1, 2)
}

func TestSyncFoldOrdersChildrenBeforeUser(t *testing.T) {
	var e Engine[lv, lops]
	vs := &ViewSet[lv]{Children: lv{[]int{1}}, User: lv{[]int{2}}}
	e.SyncFold(vs)
	want(t, vs.User, 1, 2)
	if e.Ops.Valid(&vs.Children) {
		t.Fatal("children view not ε after sync fold")
	}
}

// TestShareToPredecessor exercises the §4.1 climb: youngest live child,
// own children view, elder sibling's right view, ancestor's children
// view, root children view.
func TestShareToPredecessor(t *testing.T) {
	var e Engine[lv, lops]
	root := &ViewSet[lv]{}

	// Sharer with a live child: deposit lands in the child's right view.
	sharer := &ViewSet[lv]{}
	e.Link(root, sharer)
	kid := &ViewSet[lv]{}
	e.Link(sharer, kid)
	tmp := lv{[]int{1}}
	e.ShareToPredecessor(sharer, &tmp)
	want(t, kid.Right, 1)
	e.Retire(kid)

	// Sharer with a non-ε children view: deposit joins it.
	e.SyncFold(sharer) // folds kid's deposit + right into user
	sharer.Children = lv{[]int{2}}
	tmp = lv{[]int{3}}
	e.ShareToPredecessor(sharer, &tmp)
	want(t, sharer.Children, 2, 3)
	sharer.Children = lv{}

	// No child, no children view: climb to the elder sibling's right.
	elder := &ViewSet[lv]{}
	younger := &ViewSet[lv]{}
	// Rebuild: root's chain currently holds sharer; drop its folded
	// state and retire it first.
	sharer.User = lv{}
	e.Retire(sharer)
	e.Link(root, elder)
	e.Link(root, younger)
	tmp = lv{[]int{4}}
	e.ShareToPredecessor(younger, &tmp)
	want(t, elder.Right, 4)

	// Eldest sibling climbs to the parent's children view, ending at
	// the root.
	tmp = lv{[]int{5}}
	e.ShareToPredecessor(elder, &tmp)
	want(t, root.Children, 5)
}

func TestFoldFrontierRootToLeaf(t *testing.T) {
	var e Engine[lv, lops]
	root := &ViewSet[lv]{Children: lv{[]int{1}}}
	mid := &ViewSet[lv]{Children: lv{[]int{2}}}
	leaf := &ViewSet[lv]{User: lv{[]int{3}}}
	e.Link(root, mid)
	e.Link(mid, leaf)
	var into lv
	e.FoldFrontier(leaf, &into)
	want(t, into, 1, 2, 3)
}

func TestMergesCountsOnlyEffectiveFolds(t *testing.T) {
	var e Engine[lv, lops]
	a, b := lv{[]int{1}}, lv{}
	e.Reduce(&a, &b) // ε source: no merge
	if e.Merges != 0 {
		t.Fatalf("Merges = %d after ε fold, want 0", e.Merges)
	}
	b = lv{[]int{2}}
	e.Reduce(&a, &b)
	if e.Merges != 1 {
		t.Fatalf("Merges = %d after effective fold, want 1", e.Merges)
	}
}
