package hyper

import "fmt"

// Chain is the element type of a segment chain a paired View ranges
// over: a pointer-like value with a once-writable link to its
// successor. The hyperqueue instantiates it with *segment[T]; the zero
// value of S plays the role of the paper's null pointer.
type Chain[S any] interface {
	comparable
	// NextSeg returns the successor link (atomically, so a consumer can
	// chase links published by a producer).
	NextSeg() S
	// SetNextSeg publishes the successor link. The view algebra writes
	// it at most once per segment (invariant 5); Reduce asserts that.
	SetNextSeg(S)
}

// View is a (head, tail) pair over a chain of segments (§3.3).
//
// Each of Head and Tail is either local — a real segment value — or
// non-local: a marker that the corresponding end of the chain is shared
// with an adjacent view in program order. The paper represents
// non-local pointers by null; here each non-local pointer additionally
// carries a unique id so that the pairing discipline ("non-local
// pointers always occur in pairs and must match between successive
// views in program order") can be asserted at every reduction.
//
// The empty view ε is the zero value (Valid == false). A shared view
// with two non-local ends is distinct from ε, exactly as in the paper.
type View[S Chain[S]] struct {
	Head   S
	Tail   S
	HeadNL uint64 // pair id when head is non-local (head == zero)
	TailNL uint64 // pair id when tail is non-local (tail == zero)
	Valid  bool
}

// Local returns the local view (s, s).
func Local[S Chain[S]](s S) View[S] {
	return View[S]{Head: s, Tail: s, Valid: true}
}

// HasLocalTail reports whether the view can accept pushes at its tail.
func (v *View[S]) HasLocalTail() bool {
	var zero S
	return v.Valid && v.Tail != zero
}

// HasLocalHead reports whether the view exposes a poppable head.
func (v *View[S]) HasLocalHead() bool {
	var zero S
	return v.Valid && v.Head != zero
}

func (v *View[S]) String() string {
	if !v.Valid {
		return "ε"
	}
	var zero S
	h, t := "h", "t"
	if v.Head == zero {
		h = fmt.Sprintf("NL%d", v.HeadNL)
	}
	if v.Tail == zero {
		t = fmt.Sprintf("NL%d", v.TailNL)
	}
	return fmt.Sprintf("(%s,%s)", h, t)
}

// Split implements split((s,s)) = ((s, pNL), (pNL, s)) (§3.3): it turns
// the local view on segment s into a head-only view and a tail-only
// view sharing a fresh non-local pair id. The head-only view is
// returned first.
func Split[S Chain[S]](s S, pairID uint64) (headOnly, tailOnly View[S]) {
	headOnly = View[S]{Head: s, TailNL: pairID, Valid: true}
	tailOnly = View[S]{HeadNL: pairID, Tail: s, Valid: true}
	return headOnly, tailOnly
}

// PairOps is the Ops implementation for paired chain views: the
// reduction links chains physically (or cancels a matching non-local
// pair) and asserts the pairing discipline.
type PairOps[S Chain[S]] struct{}

// Valid reports whether v is a non-ε view.
func (PairOps[S]) Valid(v *View[S]) bool { return v.Valid }

// Reduce implements reduce((h1,t1),(h2,t2)) = ((h1,t2), ε) (§3.3). The
// result replaces *v1 and *v2 becomes ε.
//
// Cases:
//  1. t1 and h2 local: the chains are concatenated by linking t1's
//     successor to h2's segment.
//  2. t1 and h2 non-local: they must be a matching pair (the inverse of
//     a split); the segments are already linked.
//  3. Either argument ε: the other is the result.
//
// Any other combination indicates a broken program-order discipline and
// panics; the property tests exercise that these cases never arise.
func (PairOps[S]) Reduce(v1, v2 *View[S]) {
	if !v2.Valid {
		return
	}
	if !v1.Valid {
		*v1 = *v2
		*v2 = View[S]{}
		return
	}
	var zero S
	switch {
	case v1.Tail != zero && v2.Head != zero:
		if v1.Tail.NextSeg() != zero {
			panic("hyperqueue: reduce would overwrite a next link (invariant 5 violated)")
		}
		v1.Tail.SetNextSeg(v2.Head)
	case v1.Tail == zero && v2.Head == zero:
		if v1.TailNL != v2.HeadNL {
			panic(fmt.Sprintf("hyperqueue: mismatched non-local pair in reduce: %d vs %d", v1.TailNL, v2.HeadNL))
		}
	default:
		panic(fmt.Sprintf("hyperqueue: invalid reduction %s + %s", v1.String(), v2.String()))
	}
	v1.Tail, v1.TailNL = v2.Tail, v2.TailNL
	*v2 = View[S]{}
}
