// Package hyper is the generic versioned-object substrate underneath
// the hyperqueue: the Swan-lineage view algebra of Vandierendonck,
// Pratikakis and Nikolopoulos (PACT 2011), factored out of the queue so
// that other hyperobjects — deterministic reducers, first-writer-wins
// keyed maps — can reuse the same discipline.
//
// A hyperobject gives every task a private *view* of the object. Views
// are values of some type V with a designated empty value ε (the Go
// zero value of V) and a *reduction*: an associative fold that merges
// the view of a task into the view of the task immediately preceding it
// in the serial elision of the program. Because views only ever merge
// along serial program order — at spawn (the user view moves to the
// child), at task completion (the child's views deposit into its
// nearest live elder sibling or its parent) and at sync (the children
// view folds into the user view) — the final folded value is the one
// the serial execution would have produced, for any schedule and any
// worker count.
//
// The substrate has three layers:
//
//   - Ops[V] is the reduction interface a view type implements.
//     View/PairOps (pair.go) implement it for the queue's (head, tail)
//     segment-chain views; the reducer and hypermap objects in package
//     core implement it for monoid values and keyed maps.
//   - ViewSet[V] and Engine[V, O] hold the per-task view bookkeeping —
//     user/children/right views plus the live-sibling chain — and the
//     structural folds (link, hand-off, deposit, sync fold, frontier
//     fold, head sharing). The engine is lock-agnostic: the caller
//     serializes calls, which lets the queue keep its split
//     consMu/regMu locking and its legacy single-mutex ablation.
//   - Obj[V, O] (object.go) is a self-locking hyperobject base for
//     objects that do not need the queue's custom locking: it owns a
//     mutex, the owner view set, the frame attachment and sync hooks,
//     and a ready-made write dependence.
package hyper

import "repro/internal/sched"

// Ops is the reduction discipline of a view type V. The empty view ε is
// the zero value of V.
type Ops[V any] interface {
	// Reduce implements reduce(v1, v2): it folds *from into *into in
	// serial program order (into precedes from) and leaves *from = ε.
	// Reducing from ε must be a no-op, and reducing into ε must move
	// *from into *into.
	Reduce(into, from *V)
	// Valid reports whether v is a non-ε view.
	Valid(v *V) bool
}

// ViewSet is the per-(task, hyperobject) view record of §4 of the SC13
// paper: the task's user, children and right views, plus the links that
// tie it into the object's program-order structures.
//
// Locking: User is private to the frame's goroutine except where the
// object's own discipline says otherwise (the queue lets a
// Complete-side frontier fold touch a parked consumer's user view under
// its consumer lock). Children and Right are shared — siblings deposit
// into them — and are guarded by whatever lock serializes the owning
// object's Engine calls, as are the sibling links.
type ViewSet[V any] struct {
	// Frame identifies the task holding this view set. It is set once
	// before the view set is published and read for program-order
	// comparisons and diagnostics.
	Frame *sched.Frame

	User     V
	Children V
	Right    V

	// Live-sibling chain among children (holding views on the same
	// object) of the same parent, in program order.
	Parent     *ViewSet[V]
	Prev, Next *ViewSet[V]
	ChildHead  *ViewSet[V]
	ChildTail  *ViewSet[V]
}

// Engine performs the structural folds of the view algebra over
// ViewSets. It is parameterized by the concrete Ops implementation (not
// the interface) so every Reduce call dispatches statically and inlines.
//
// The engine takes no locks: all calls that touch shared view-set state
// (everything except HandOff) must be serialized by the owning object.
// Merges counts effective reductions (non-ε source) under that same
// serialization.
type Engine[V any, O Ops[V]] struct {
	Ops O
	// Merges counts reductions whose source view was non-ε — the folds
	// that actually carried data across a task boundary. Guarded by the
	// owning object's lock.
	Merges uint64
}

// Reduce folds *from into *into, counting the merge if it moved data.
func (e *Engine[V, O]) Reduce(into, from *V) {
	if e.Ops.Valid(from) {
		e.Merges++
	}
	e.Ops.Reduce(into, from)
}

// HandOff implements the spawn-time user-view move (§4.2, "Spawn"): the
// parent's user view becomes the child's, and the parent is left with
// ε. Both user views are private to the parent's goroutine at spawn
// time, so HandOff needs no lock.
func (e *Engine[V, O]) HandOff(parent, child *ViewSet[V]) {
	var zero V
	child.User = parent.User
	parent.User = zero
}

// Link splices child in as the youngest live sibling of parent's
// children on this object. Caller holds the object's lock.
func (e *Engine[V, O]) Link(parent, child *ViewSet[V]) {
	child.Parent = parent
	child.Prev = parent.ChildTail
	if parent.ChildTail != nil {
		parent.ChildTail.Next = child
	} else {
		parent.ChildHead = child
	}
	parent.ChildTail = child
}

// SyncFold folds the children view into the user view at a sync point
// (§4.2, "Sync"): user ← reduce(children, user). Caller holds the
// object's lock.
func (e *Engine[V, O]) SyncFold(vs *ViewSet[V]) {
	e.Reduce(&vs.Children, &vs.User)
	vs.Children, vs.User = vs.User, vs.Children // result belongs in user; children becomes ε
}

// Retire implements task completion (§4.2, "Return from spawn"): the
// task's user and right views fold into its nearest live elder
// sibling's right view — or its parent's children view — and the view
// set leaves the live-sibling chain. Caller holds the object's lock.
func (e *Engine[V, O]) Retire(vs *ViewSet[V]) {
	e.Reduce(&vs.User, &vs.Right)
	if s := vs.Prev; s != nil {
		e.Reduce(&s.Right, &vs.User)
	} else {
		e.Reduce(&vs.Parent.Children, &vs.User)
	}
	// Unlink from the live-sibling chain.
	if vs.Prev != nil {
		vs.Prev.Next = vs.Next
	} else {
		vs.Parent.ChildHead = vs.Next
	}
	if vs.Next != nil {
		vs.Next.Prev = vs.Prev
	} else {
		vs.Parent.ChildTail = vs.Prev
	}
}

// ShareToPredecessor deposits *tmp into the nearest preceding live view
// in program order (§4.1): the task's youngest live child's right view,
// else its own children view, else — climbing the spawn tree — the
// nearest live elder sibling's right view or an ancestor's children
// view, ending at the root's children view. Caller holds the object's
// lock.
func (e *Engine[V, O]) ShareToPredecessor(vs *ViewSet[V], tmp *V) {
	if yc := vs.ChildTail; yc != nil {
		e.Reduce(&yc.Right, tmp)
		return
	}
	if e.Ops.Valid(&vs.Children) {
		e.Reduce(&vs.Children, tmp)
		return
	}
	cur := vs
	for cur.Parent != nil {
		if s := cur.Prev; s != nil {
			e.Reduce(&s.Right, tmp)
			return
		}
		p := cur.Parent
		if e.Ops.Valid(&p.Children) {
			e.Reduce(&p.Children, tmp)
			return
		}
		cur = p
	}
	// Root (object owner): merge with its children view (§4.1).
	e.Reduce(&cur.Children, tmp)
}

// FoldFrontier folds every view ordered before vs's current position
// into *into: the children views along vs's spawn path in root-to-leaf
// order, then vs's own user view. This is the serial frontier fold the
// queue's linkFrontier builds on (§4.5 "double reduction"); the caller
// is responsible for the precondition that every task ordered before vs
// has completed and deposited, and for any object-specific
// post-processing (the queue re-splits an open local tail). Caller
// holds the object's lock.
func (e *Engine[V, O]) FoldFrontier(vs *ViewSet[V], into *V) {
	// The spawn path is almost always shallow; a small stack buffer
	// keeps the fold allocation-free on churn-heavy hot loops.
	var pathBuf [16]*ViewSet[V]
	path := pathBuf[:0]
	for p := vs; p != nil; p = p.Parent {
		path = append(path, p)
	}
	for i := len(path) - 1; i >= 0; i-- {
		e.Reduce(into, &path[i].Children)
	}
	e.Reduce(into, &vs.User)
}
