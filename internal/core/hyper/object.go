package hyper

import (
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Stat is one hyperobject's metric snapshot, surfaced through the
// runtime's PoolProvider registry and swan.WriteMetrics.
type Stat struct {
	// Name is the registration name (HyperNamed); objects sharing a
	// name aggregate into one row, like metered queues.
	Name string
	// Kind is the object flavor: "reducer", "hypermap", ...
	Kind string
	// Merges counts reductions that carried data across a task
	// boundary (non-ε source view).
	Merges uint64
	// Views counts view sets ever created on the object: the owner's
	// plus one per task spawned with the object's dependence.
	Views uint64
}

// Hyperobject is the common metrics surface of every object built on
// the substrate.
type Hyperobject interface {
	HyperStat() Stat
}

// objKey is the frame-attachment key type for an Obj. Each object is
// its own key, so a frame can hold views on any number of distinct
// hyperobjects (and queues) at once.
type objKey struct{ o any }

// Obj is a self-locking hyperobject base: it owns the engine, a mutex
// serializing engine calls, the owner's view set, the frame-attachment
// plumbing and a ready-made write dependence. The queue does not use it
// (it needs its split consMu/regMu discipline); reducers and hypermaps
// embed it.
//
// Concurrency contract for embedders: ViewSet.User is private to the
// view's frame goroutine — element operations (a reducer Add, a map
// Put) touch only the calling task's user view and need no lock. All
// structural folds run under mu.
type Obj[V any, O Ops[V]] struct {
	mu    sync.Mutex
	eng   Engine[V, O]
	kind  string
	name  string
	owner ViewSet[V]
	views atomic.Uint64
}

// Init wires the object to its owning frame: the owner's view set is
// attached to f, and a sync hook folds completed children's deposits
// into the owner's user view at every sync. Must be called exactly
// once, from f's goroutine, before any other method.
func (o *Obj[V, O]) Init(f *sched.Frame, kind, name string, ops O) {
	o.eng.Ops = ops
	o.kind, o.name = kind, name
	o.owner.Frame = f
	o.views.Store(1)
	f.SetAttachment(objKey{o}, &o.owner)
	f.AddSyncHook(func() {
		o.mu.Lock()
		o.eng.SyncFold(&o.owner)
		o.mu.Unlock()
	})
}

// ViewsOf returns the view set frame f holds on the object, or nil.
func (o *Obj[V, O]) ViewsOf(f *sched.Frame) *ViewSet[V] {
	vs, _ := f.Attachment(objKey{o}).(*ViewSet[V])
	return vs
}

// MustViews is ViewsOf, panicking when f holds no view on the object.
func (o *Obj[V, O]) MustViews(f *sched.Frame) *ViewSet[V] {
	vs := o.ViewsOf(f)
	if vs == nil {
		panic("hyperobject: task holds no view on this " + o.kind + "; spawn it with the object's dependence")
	}
	return vs
}

// Dep returns the object's write dependence: a task spawned with it
// gets a private view set (its user view inherited from the parent, per
// the spawn hand-off) and deposits its views back in serial program
// order at completion. There is no scheduling restriction — writers of
// a reducer or hypermap run fully in parallel; determinism comes from
// the merge order, not from serialization.
func (o *Obj[V, O]) Dep() sched.Dep { return objDep[V, O]{o} }

// HyperStat implements Hyperobject.
func (o *Obj[V, O]) HyperStat() Stat {
	o.mu.Lock()
	m := o.eng.Merges
	o.mu.Unlock()
	return Stat{Name: o.name, Kind: o.kind, Merges: m, Views: o.views.Load()}
}

// Name reports the registration name given at Init ("" when unnamed).
func (o *Obj[V, O]) Name() string { return o.name }

type objDep[V any, O Ops[V]] struct {
	o *Obj[V, O]
}

// Prepare runs synchronously at spawn time in the parent, in program
// order: the parent's user view moves to the child (lockless — both
// views are parent-goroutine-private at spawn time), the child links
// into the live-sibling chain under the object lock, and the child's
// sync hook is registered.
func (d objDep[V, O]) Prepare(parent, child *sched.Frame) {
	o := d.o
	pvs := o.MustViews(parent) // subset rule: the parent must itself hold a view to delegate one
	cvs := &ViewSet[V]{Frame: child}
	o.eng.HandOff(pvs, cvs)
	o.mu.Lock()
	o.eng.Link(pvs, cvs)
	o.mu.Unlock()
	child.SetAttachment(objKey{o}, cvs)
	child.AddSyncHook(func() {
		o.mu.Lock()
		o.eng.SyncFold(cvs)
		o.mu.Unlock()
	})
	o.views.Add(1)
}

// Wait never gates: hyperobject writers impose no scheduling
// restriction.
func (d objDep[V, O]) Wait(child *sched.Frame) {}

// Ready implements sched.ReadyDep: always ready.
func (d objDep[V, O]) Ready(child *sched.Frame) bool { return true }

// Complete deposits the child's views into its nearest live elder
// sibling or its parent and unlinks it, in the child's context, after
// its body and implicit sync.
func (d objDep[V, O]) Complete(parent, child *sched.Frame) {
	o := d.o
	cvs := o.MustViews(child)
	o.mu.Lock()
	o.eng.Retire(cvs)
	o.mu.Unlock()
}
