package core

import (
	"testing"

	"repro/internal/sched"
)

// TestRuntimePoolSharedAcrossQueues pins the tentpole property of the
// runtime-wide pool: a segment drained past by one queue is reused by a
// *different* queue of the same runtime, element type and capacity —
// which a per-queue pool can never do.
func TestRuntimePoolSharedAcrossQueues(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q1 := NewWithCapacity[int](f, 2)
		q2 := NewWithCapacity[int](f, 2)
		if q1.pool != q2.pool {
			t.Fatal("queues of the same runtime, type and capacity do not share a segment pool")
		}
		// Different capacity (or a different runtime) means a different pool.
		q3 := NewWithCapacity[int](f, 4)
		if q3.pool == q1.pool {
			t.Fatal("queues of different segment capacity share a pool")
		}

		// Drive q1 past two segments so their drained segments land in the
		// shared pool, then check q2's overflow pushes pick them up.
		for i := 0; i < 6; i++ {
			q1.Push(f, i)
		}
		pooled := map[*segment[int]]bool{}
		for i := 0; i < 6; i++ {
			q1.Pop(f)
		}
		for si := range q1.pool.shards {
			sh := &q1.pool.shards[si]
			for i := 0; i < sh.n; i++ {
				pooled[sh.free[i]] = true
			}
		}
		if len(pooled) == 0 {
			t.Fatal("draining q1 recycled no segments into the shared pool")
		}
		for i := 0; i < 4; i++ {
			q2.Push(f, i)
		}
		if tail := q2.viewsOf(f).vs.User.Tail; !pooled[tail] {
			t.Fatal("q2's overflow allocated a fresh segment while q1's recycled ones were pooled")
		}
	})
	rt2 := sched.New(1)
	rt2.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		p := poolFor[int](ProviderOf(sched.New(1)), 2)
		if q.pool == p {
			t.Fatal("queues of distinct runtimes share a pool")
		}
	})
}

// TestQueueRecycleReuse drives a queue through several
// create→use→drain→recycle laps and checks that recycling (a) keeps the
// queue fully functional, including spawned producers and consumers and
// the invariant checker, and (b) actually reuses segments instead of
// allocating.
func TestQueueRecycleReuse(t *testing.T) {
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		for lap := 0; lap < 5; lap++ {
			base := lap * 100
			f.Spawn(func(c *sched.Frame) {
				for i := 0; i < 5; i++ {
					q.Push(c, base+i)
				}
			}, Push(q))
			var got []int
			f.Spawn(func(c *sched.Frame) {
				for !q.Empty(c) {
					got = append(got, q.Pop(c))
				}
			}, Pop(q))
			f.Sync()
			for i, v := range got {
				if v != base+i {
					t.Fatalf("lap %d consumed %v, want %d..%d", lap, got, base, base+4)
				}
			}
			if len(got) != 5 {
				t.Fatalf("lap %d consumed %d values, want 5", lap, len(got))
			}
			if !q.CanRecycle(f) {
				t.Fatalf("lap %d: CanRecycle = false after Sync", lap)
			}
			q.Recycle(f)
			q.MustCheckInvariants(f)
		}
	})
}

// TestQueueRecycleZeroAllocs is the churn claim as a hard assertion: a
// warmed use→drain→recycle lap — the shape dedup's per-coarse-chunk
// pipelines repeat thousands of times — performs zero heap allocations.
func TestQueueRecycleZeroAllocs(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 8)
		lap := func() {
			for i := 0; i < 24; i++ {
				q.Push(f, i)
			}
			for !q.Empty(f) {
				q.Pop(f)
			}
			q.Recycle(f)
		}
		lap() // warm the shared pool
		if allocs := testing.AllocsPerRun(50, lap); allocs != 0 {
			t.Errorf("recycle lap allocates %v times per run, want 0", allocs)
		}
	})
}

// TestRecycleGuards checks that Recycle refuses unsafe states instead of
// corrupting the queue: non-owner callers, live privilege holders
// (deterministic on the stealing substrate: a spawned child does not run
// until the spawner syncs or a second worker steals it), and undrained
// queues.
func TestRecycleGuards(t *testing.T) {
	mustPanic := func(t *testing.T, want string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("no panic, want %q", want)
			}
		}()
		fn()
	}
	t.Run("undrained", func(t *testing.T) {
		rt := sched.NewWithPolicy(1, sched.PolicySteal)
		rt.Run(func(f *sched.Frame) {
			q := NewWithCapacity[int](f, 2)
			q.Push(f, 1)
			mustPanic(t, "Recycle on a non-empty queue", func() { q.Recycle(f) })
			q.Pop(f) // leave the tree clean
		})
	})
	t.Run("live-children", func(t *testing.T) {
		rt := sched.NewWithPolicy(1, sched.PolicySteal)
		rt.Run(func(f *sched.Frame) {
			q := NewWithCapacity[int](f, 2)
			f.Spawn(func(c *sched.Frame) { q.Push(c, 1) }, Push(q))
			// The child is prepared (registered as a producer) but cannot
			// have run yet: one worker, and we have not synced.
			if q.CanRecycle(f) {
				t.Error("CanRecycle = true while a push child is outstanding")
			}
			mustPanic(t, "Recycle while push-privileged tasks are live", func() { q.Recycle(f) })
			f.Sync()
			q.Pop(f)
		})
	})
	t.Run("non-owner", func(t *testing.T) {
		rt := sched.New(2)
		rt.Run(func(f *sched.Frame) {
			q := NewWithCapacity[int](f, 2)
			f.Spawn(func(c *sched.Frame) {
				mustPanic(t, "only the owning task", func() { q.Recycle(c) })
			}, PushPop(q))
			f.Sync()
		})
	})
}

// TestRecycleRearmsProducerRegistry checks the interaction between the
// two tentpole halves: registering a producer disables the lock-free
// TryPop/ReadSlice miss path, and Recycle re-enables it for the queue's
// next life.
func TestRecycleRearmsProducerRegistry(t *testing.T) {
	rt := sched.New(1)
	rt.Run(func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 2)
		if q.everProducer.Load() {
			t.Fatal("fresh queue reports a registered producer")
		}
		f.Spawn(func(c *sched.Frame) { q.Push(c, 1) }, Push(q))
		if !q.everProducer.Load() {
			t.Fatal("producer registration did not set everProducer")
		}
		f.Sync()
		q.Pop(f)
		q.Recycle(f)
		if q.everProducer.Load() {
			t.Fatal("Recycle did not rearm the never-had-a-producer state")
		}
	})
}
