package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sched"
)

// These tests pin the robustness contract at the queue layer: canceling
// a scope or poisoning a queue must wake every park site — credit parks,
// emptiness waits, ticket gates — promptly, Run must report the cause,
// and the segment-pool accounting identity must survive the abort.

var cancelPolicies = []sched.SpawnPolicy{sched.PolicySteal, sched.PolicyGoroutine}

// waitStat polls the provider's queue meters until pred holds for the
// named queue, or gives up after 10s. It is how the tests observe "the
// task is actually parked" without touching queue internals: the block
// counters are incremented before the park, and the parked task cannot
// make progress until woken.
func waitStat(rt *sched.Runtime, name string, pred func(QueueStat) bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range ProviderOf(rt).QueueStats() {
			if s.Name == name && pred(s) {
				return true
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	return false
}

// wedge builds the canonical stuck pipeline from the ISSUE's acceptance
// scenario on frame f: a producer credit-parked on a full bounded queue
// qa, and a consumer parked mid-Pop on qb whose emptiness is undecided
// (the producer's unreached Push on qb keeps it open). Both names must
// be unique per runtime. The caller kills it and checks Run's error.
func wedge(f *sched.Frame, nameA, nameB string) (qa, qb *Queue[int]) {
	qa = NewWithCapacity[int](f, 4, Bounded(1), Named(nameA))
	qb = NewWithCapacity[int](f, 4, Bounded(64), Named(nameB))
	f.Spawn(func(p *sched.Frame) {
		pu := qa.BindPush(p)
		for i := 0; i < 20; i++ {
			pu.Push(i)
		}
		qb.Push(p, 1)
	}, Push(qa), Push(qb))
	f.Spawn(func(p *sched.Frame) { qb.Pop(p) }, Pop(qb))
	return qa, qb
}

// TestCancelWakesParkedProducer checks that canceling the run's scope
// wakes a producer credit-parked on a full bounded queue: the run
// quiesces and Run returns the cause.
func TestCancelWakesParkedProducer(t *testing.T) {
	cause := errors.New("teardown")
	for _, policy := range cancelPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := sched.NewWithPolicy(4, policy)
			err := rt.Run(func(f *sched.Frame) {
				qa := NewWithCapacity[int](f, 4, Bounded(1), Named("cwp.qa"))
				f.Spawn(func(p *sched.Frame) {
					pu := qa.BindPush(p)
					for i := 0; i < 20; i++ {
						pu.Push(i)
					}
				}, Push(qa))
				var parked bool
				f.Block(func() {
					parked = waitStat(rt, "cwp.qa", func(s QueueStat) bool { return s.ProducerBlocks > 0 })
				})
				if !parked {
					t.Error("producer never parked on the exhausted budget")
				}
				f.CancelScope().Cancel(cause)
				f.Sync()
			})
			if !errors.Is(err, cause) {
				t.Fatalf("Run returned %v, want %v", err, cause)
			}
		})
	}
}

// TestCancelWakesParkedConsumer checks the other half of the acceptance
// scenario: with the full wedge standing — producer credit-parked,
// consumer parked mid-Pop on undecided emptiness — a scope cancel wakes
// both and Run returns ErrCanceled.
func TestCancelWakesParkedConsumer(t *testing.T) {
	for _, policy := range cancelPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := sched.NewWithPolicy(4, policy)
			err := rt.Run(func(f *sched.Frame) {
				wedge(f, "cwc.qa", "cwc.qb")
				var parked bool
				f.Block(func() {
					parked = waitStat(rt, "cwc.qa", func(s QueueStat) bool { return s.ProducerBlocks > 0 }) &&
						waitStat(rt, "cwc.qb", func(s QueueStat) bool { return s.ConsumerBlocks > 0 })
				})
				if !parked {
					t.Error("wedge never fully parked")
				}
				f.CancelScope().Cancel(nil)
				f.Sync()
			})
			if !errors.Is(err, sched.ErrCanceled) {
				t.Fatalf("Run returned %v, want ErrCanceled", err)
			}
		})
	}
}

// TestFailWakesWedge checks queue poisoning: Fail on the bounded queue
// wakes its credit-parked producer, the run unwinds, Run returns the
// poison cause, the cause is observable via FailErr, and the first
// failure wins over later ones.
func TestFailWakesWedge(t *testing.T) {
	cause := errors.New("downstream gone")
	for _, policy := range cancelPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := sched.NewWithPolicy(4, policy)
			var qa *Queue[int]
			err := rt.Run(func(f *sched.Frame) {
				qa, _ = wedge(f, "fww.qa", "fww.qb")
				var parked bool
				f.Block(func() {
					parked = waitStat(rt, "fww.qa", func(s QueueStat) bool { return s.ProducerBlocks > 0 })
				})
				if !parked {
					t.Error("producer never parked on the exhausted budget")
				}
				qa.Fail(cause)
				qa.Fail(errors.New("second, must lose"))
				f.Sync()
			})
			if !errors.Is(err, cause) {
				t.Fatalf("Run returned %v, want %v", err, cause)
			}
			if got := qa.FailErr(); !errors.Is(got, cause) {
				t.Fatalf("FailErr = %v, want the first cause %v", got, cause)
			}
		})
	}
}

// TestPoolAuditBalancesAfterCancel checks the accounting identity across
// an abort: after a canceled wedge quiesces, every segment ever
// allocated is either pooled, dropped, or in the abandoned queues'
// chains — unwound tasks still deposit their views. The cancel is
// contained in a sub-scope, so Run itself returns nil.
func TestPoolAuditBalancesAfterCancel(t *testing.T) {
	for _, policy := range cancelPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := sched.NewWithPolicy(4, policy)
			var chains uint64
			err := rt.Run(func(f *sched.Frame) {
				serr := f.ScopedCall(func(c *sched.Frame) {
					qa, qb := wedge(c, "audit.qa", "audit.qb")
					var parked bool
					c.Block(func() {
						parked = waitStat(rt, "audit.qa", func(s QueueStat) bool { return s.ProducerBlocks > 0 })
					})
					if !parked {
						t.Error("producer never parked on the exhausted budget")
					}
					c.CancelScope().Cancel(nil)
					c.Sync()
					chains = qa.DebugChainSegments(c) + qb.DebugChainSegments(c)
				})
				if !errors.Is(serr, sched.ErrCanceled) {
					t.Errorf("ScopedCall returned %v, want ErrCanceled", serr)
				}
			})
			if err != nil {
				t.Fatalf("Run returned %v, want nil (cancel contained in sub-scope)", err)
			}
			p := ProviderOf(rt)
			allocs, pooled, dropped := p.SegmentAllocs(), uint64(p.PooledSegments()), p.DroppedSegments()
			if allocs != pooled+dropped+chains {
				t.Fatalf("pool audit unbalanced after cancel: allocs=%d pooled=%d dropped=%d chains=%d",
					allocs, pooled, dropped, chains)
			}
		})
	}
}

// TestTryPushPushTimeoutPopTimeout is the deterministic deadline script:
// shed decisions and deadline outcomes as return values, in a fixed
// order, with the shed meter counting refused values.
func TestTryPushPushTimeoutPopTimeout(t *testing.T) {
	const short, long = 2 * time.Millisecond, 10 * time.Second
	for _, policy := range cancelPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			rt := sched.NewWithPolicy(4, policy)
			err := rt.Run(func(f *sched.Frame) {
				qa := NewWithCapacity[int](f, 4, Bounded(1), Named("dl.qa"))
				qb := NewWithCapacity[int](f, 4, Bounded(1))
				pua := qa.BindPush(f)
				if !pua.TryPush(1) {
					t.Error("TryPush refused a value the budget admits")
				}
				if pua.TryPush(2) {
					t.Error("TryPush accepted a value over budget")
				}
				if e := pua.PushTimeout(3, short); e != ErrTimeout {
					t.Errorf("PushTimeout over budget returned %v, want ErrTimeout", e)
				}
				for _, s := range ProviderOf(rt).QueueStats() {
					if s.Name == "dl.qa" && s.Sheds != 2 {
						t.Errorf("Sheds = %d, want 2", s.Sheds)
					}
				}
				// A producer child: credit-parked on qa until the owner pops,
				// its unreached push on qb keeping qb's emptiness undecided.
				f.Spawn(func(p *sched.Frame) {
					qa.Push(p, 4)
					qb.Push(p, 5)
				}, Push(qa), Push(qb))
				pob := qb.BindPop(f)
				if _, e := pob.PopTimeout(short); e != ErrTimeout {
					t.Errorf("PopTimeout on undecided queue returned %v, want ErrTimeout", e)
				}
				poa := qa.BindPop(f)
				if v, e := poa.PopTimeout(long); e != nil || v != 1 {
					t.Errorf("PopTimeout = (%d, %v), want (1, nil)", v, e)
				}
				if v, e := poa.PopTimeout(long); e != nil || v != 4 {
					t.Errorf("PopTimeout = (%d, %v), want (4, nil)", v, e)
				}
				if v, e := pob.PopTimeout(long); e != nil || v != 5 {
					t.Errorf("PopTimeout = (%d, %v), want (5, nil)", v, e)
				}
				f.Sync()
				if _, e := poa.PopTimeout(short); e != ErrEmpty {
					t.Errorf("PopTimeout on settled empty queue returned %v, want ErrEmpty", e)
				}
			})
			if err != nil {
				t.Fatalf("Run returned %v, want nil", err)
			}
		})
	}
}

// TestPopTimeoutCanceledScope checks that PopTimeout reports the scope's
// cancellation cause as a return value rather than unwinding.
func TestPopTimeoutCanceledScope(t *testing.T) {
	cause := errors.New("stop draining")
	err := sched.New(2).Run(func(f *sched.Frame) {
		q := New[int](f)
		f.CancelScope().Cancel(cause)
		po := q.BindPop(f)
		if _, e := po.PopTimeout(10 * time.Second); !errors.Is(e, cause) {
			t.Errorf("PopTimeout under canceled scope returned %v, want %v", e, cause)
		}
	})
	if !errors.Is(err, cause) {
		t.Fatalf("Run returned %v, want %v", err, cause)
	}
}

// TestShardedDrainAndFail checks the fan-out teardown rendezvous: Drain
// times out while a producer stalls, succeeds once the stream finishes,
// and Fail hard-tears a fan-out whose consumer is gone — the merger
// completes (so Drain returns) and Run reports the poison cause.
func TestShardedDrainAndFail(t *testing.T) {
	newShard := func(f *sched.Frame) *Sharded[uint64, uint64] {
		return NewSharded(f, ShardConfig{Shards: 2, Bound: 8},
			func(v uint64) uint64 { return v },
			func(c *sched.Frame, shard int) func(uint64) uint64 {
				return func(v uint64) uint64 { return v * 2 }
			})
	}

	t.Run("drain", func(t *testing.T) {
		gate := make(chan struct{})
		var got []uint64
		err := sched.New(4).Run(func(f *sched.Frame) {
			s := newShard(f)
			f.Spawn(func(p *sched.Frame) {
				pu := s.In().BindPush(p)
				pu.Push(1)
				p.Block(func() { <-gate })
				pu.Push(2)
			}, Push(s.In()))
			s.Launch(f)
			f.Spawn(func(p *sched.Frame) {
				po := s.Out().BindPop(p)
				for !po.Empty() {
					got = append(got, po.Pop())
				}
			}, Pop(s.Out()))
			if e := s.Drain(f, 5*time.Millisecond); e != ErrTimeout {
				t.Errorf("Drain with a stalled producer returned %v, want ErrTimeout", e)
			}
			close(gate)
			if e := s.Drain(f, 10*time.Second); e != nil {
				t.Errorf("Drain after the stream finished returned %v, want nil", e)
			}
			if !s.Drained() {
				t.Error("Drained() false after a successful Drain")
			}
			f.Sync()
		})
		if err != nil {
			t.Fatalf("Run returned %v, want nil", err)
		}
		if len(got) != 2 || got[0] != 2 || got[1] != 4 {
			t.Fatalf("egress = %v, want [2 4]", got)
		}
	})

	t.Run("fail", func(t *testing.T) {
		cause := errors.New("consumer gone")
		gate := make(chan struct{})
		err := sched.New(4).Run(func(f *sched.Frame) {
			s := newShard(f)
			f.Spawn(func(p *sched.Frame) {
				pu := s.In().BindPush(p)
				pu.Push(1)
				p.Block(func() { <-gate })
				pu.Push(2)
			}, Push(s.In()))
			s.Launch(f)
			s.Fail(cause)
			close(gate)
			// Drain must return promptly: either the merger already unwound
			// (nil) or the scope cancel triggered by the poison woke the wait
			// with the cause. Both mean teardown is progressing, not wedged.
			if e := s.Drain(f, 10*time.Second); e != nil && !errors.Is(e, cause) {
				t.Errorf("Drain after Fail returned %v, want nil or the poison cause", e)
			}
			f.Sync()
			if !s.Drained() {
				t.Error("merger beacon did not fire after Fail (completion protocol skipped)")
			}
		})
		if !errors.Is(err, cause) {
			t.Fatalf("Run returned %v, want %v", err, cause)
		}
	})
}
