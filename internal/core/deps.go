package core

import "repro/internal/sched"

// Push returns the pushdep dependence on q: the spawned task may push
// values. Pushers execute concurrently with each other and with the
// consumer (§2.3 rules 1, 2, 4).
func Push[T any](q *Queue[T]) sched.Dep { return queueDep[T]{q, ModePush} }

// Pop returns the popdep dependence on q: the spawned task may pop values
// and test Empty. Pop tasks on the same queue are serialized in program
// order (§2.3 rule 3).
func Pop[T any](q *Queue[T]) sched.Dep { return queueDep[T]{q, ModePop} }

// PushPop returns the pushpopdep dependence on q, combining both
// privileges and both scheduling restrictions.
func PushPop[T any](q *Queue[T]) sched.Dep { return queueDep[T]{q, ModePushPop} }

type queueDep[T any] struct {
	q    *Queue[T]
	mode AccessMode
}

// Prepare runs synchronously at spawn time in the parent, in program
// order (§4.2, "Spawn with push/pop privileges"): it checks the privilege
// subset rule, hands the parent's user view to the child, links the child
// into the live-sibling chain, registers producers, and issues the
// consumer-serialization ticket.
func (d queueDep[T]) Prepare(parent, child *sched.Frame) {
	q := d.q
	pqv := q.mustViews(parent, d.mode) // subset rule: parent must hold every privilege it delegates
	q.mu.Lock()
	defer q.mu.Unlock()

	cqv := &qviews[T]{q: q, frame: child, mode: d.mode, parentQV: pqv}

	// Link as youngest live sibling of pqv's children on this queue.
	cqv.prev = pqv.childTail
	if pqv.childTail != nil {
		pqv.childTail.next = cqv
	} else {
		pqv.childHead = cqv
	}
	pqv.childTail = cqv

	// The user view moves to the child: for pushers so they extend the
	// chain in place, for poppers so it is hidden from later pushers
	// until the child returns it (§4.2).
	cqv.user = pqv.user
	pqv.user = emptyView[T]()

	if d.mode&ModePop != 0 {
		cqv.popTicket = pqv.popTickets
		pqv.popTickets++
	}
	if d.mode&ModePush != 0 {
		q.producers[child] = struct{}{}
	}

	child.SetAttachment(queueKey[T]{q}, cqv)
	child.AddSyncHook(func() { q.syncHook(cqv) })
}

// Wait gates the child before it takes a worker slot: pop-privileged
// tasks wait for their elder pop siblings (§2.3 rule 3). Push-only tasks
// start immediately (rules 1, 2 and 4).
func (d queueDep[T]) Wait(child *sched.Frame) {
	if d.mode&ModePop == 0 {
		return
	}
	q := d.q
	q.mu.Lock()
	cqv := q.viewsOf(child)
	for cqv.parentQV.popServed != cqv.popTicket {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// Ready is the non-blocking probe of sched.ReadyDep: push-only tasks are
// always ready, and a pop-privileged task is ready once its consumer
// ticket has been served. popServed only advances, so readiness is
// stable, as the contract requires.
func (d queueDep[T]) Ready(child *sched.Frame) bool {
	if d.mode&ModePop == 0 {
		return true
	}
	q := d.q
	q.mu.Lock()
	cqv := q.viewsOf(child)
	ok := cqv.parentQV.popServed == cqv.popTicket
	q.mu.Unlock()
	return ok
}

// Complete runs in the child after its body and implicit sync: the
// child's views are reduced into its nearest live elder sibling or its
// parent (§4.2, "Return from spawn"), it leaves the live-sibling chain,
// producers retire, and the consumer ticket advances.
func (d queueDep[T]) Complete(parent, child *sched.Frame) {
	q := d.q
	q.mu.Lock()
	defer q.mu.Unlock()
	cqv := q.viewsOf(child)

	q.depositCompleted(cqv)

	// Unlink from the live-sibling chain.
	if cqv.prev != nil {
		cqv.prev.next = cqv.next
	} else {
		cqv.parentQV.childHead = cqv.next
	}
	if cqv.next != nil {
		cqv.next.prev = cqv.prev
	} else {
		cqv.parentQV.childTail = cqv.prev
	}

	if d.mode&ModePop != 0 {
		cqv.parentQV.popServed++
	}
	if d.mode&ModePush != 0 {
		delete(q.producers, child)
	}
	// Wake ticket waiters and consumers blocked in Empty/Pop: a retiring
	// producer may have been the last one ordered before the consumer, in
	// which case the consumer's next visibility check folds the views
	// deposited above into the queue view (linkFrontier) and either finds
	// the child's values or proves permanent emptiness.
	q.cond.Broadcast()
}
