package core

import "repro/internal/sched"

// Push returns the pushdep dependence on q: the spawned task may push
// values. Pushers execute concurrently with each other and with the
// consumer (§2.3 rules 1, 2, 4).
func Push[T any](q *Queue[T]) sched.Dep { return queueDep[T]{q, ModePush} }

// Pop returns the popdep dependence on q: the spawned task may pop values
// and test Empty. Pop tasks on the same queue are serialized in program
// order (§2.3 rule 3).
func Pop[T any](q *Queue[T]) sched.Dep { return queueDep[T]{q, ModePop} }

// PushPop returns the pushpopdep dependence on q, combining both
// privileges and both scheduling restrictions.
func PushPop[T any](q *Queue[T]) sched.Dep { return queueDep[T]{q, ModePushPop} }

type queueDep[T any] struct {
	q    *Queue[T]
	mode AccessMode
}

// Prepare runs synchronously at spawn time in the parent, in program
// order (§4.2, "Spawn with push/pop privileges"): it checks the privilege
// subset rule, hands the parent's user view to the child, links the child
// into the live-sibling chain, registers producers, and issues the
// consumer-serialization ticket. Only the sibling chain and the producer
// registry need q.regMu; the view handoff and the ticket touch
// parent-goroutine-private state.
func (d queueDep[T]) Prepare(parent, child *sched.Frame) {
	q := d.q
	pqv := q.mustViews(parent, d.mode) // subset rule: parent must hold every privilege it delegates

	cqv := &qviews[T]{q: q, mode: d.mode, parentQV: pqv}
	cqv.vs.Frame = child

	// The user view moves to the child: for pushers so they extend the
	// chain in place, for poppers so it is hidden from later pushers
	// until the child returns it (§4.2).
	q.eng.HandOff(&pqv.vs, &cqv.vs)

	if d.mode&ModePop != 0 {
		cqv.popTicket = pqv.popTickets.Load()
		pqv.popTickets.Add(1)
	}

	q.lockReg()
	// Link as youngest live sibling of pqv's children on this queue.
	q.eng.Link(&pqv.vs, &cqv.vs)
	if d.mode&ModePush != 0 {
		q.producers[child] = struct{}{}
		// Once any producer registers, TryPop/ReadSlice misses must run
		// the locked frontier fold (values may travel through deposited
		// views); the flag stays set until Recycle rearms the queue.
		q.everProducer.Store(true)
	}
	q.unlockReg()

	child.SetAttachment(queueKey[T]{q}, cqv)
	child.AddSyncHook(func() { q.syncHook(cqv) })
}

// Wait gates the child before it takes a worker slot: pop-privileged
// tasks wait for their elder pop siblings (§2.3 rule 3). Push-only tasks
// start immediately (rules 1, 2 and 4). A canceled scope or a poisoned
// queue wakes the gate; the child then unwinds instead of starting its
// body (the substrate absorbs the unwind and still runs the completion
// protocol, so the ticket this child holds is served for its siblings).
func (d queueDep[T]) Wait(child *sched.Frame) {
	if d.mode&ModePop == 0 {
		return
	}
	q := d.q
	cqv := q.viewsOf(child)
	if cqv.parentQV.popServed.Load() == cqv.popTicket {
		return
	}
	sc := child.CancelScope()
	unreg := sc.OnCancel(q.broadcastCons)
	defer unreg()
	q.lockCons()
	q.sleepers++
	for cqv.parentQV.popServed.Load() != cqv.popTicket {
		if q.failErr() != nil || sc.Canceled() {
			break
		}
		q.cond.Wait()
	}
	q.sleepers--
	q.consMu.Unlock()
	if cqv.parentQV.popServed.Load() != cqv.popTicket {
		if err := q.failErr(); err != nil {
			q.raiseStop(err)
		}
		q.raiseStop(sc.Err())
	}
}

// Ready is the non-blocking probe of sched.ReadyDep: push-only tasks are
// always ready, and a pop-privileged task is ready once its consumer
// ticket has been served. popServed only advances, so readiness is
// stable, as the contract requires. The probe is a single atomic load.
func (d queueDep[T]) Ready(child *sched.Frame) bool {
	if d.mode&ModePop == 0 {
		return true
	}
	cqv := d.q.viewsOf(child)
	return cqv.parentQV.popServed.Load() == cqv.popTicket
}

// Complete runs in the child after its body and implicit sync: the
// child's views are reduced into its nearest live elder sibling or its
// parent (§4.2, "Return from spawn"), it leaves the live-sibling chain,
// producers retire, and the consumer ticket advances.
//
// A retiring producer may have been the last one ordered before a
// consumer parked in Empty/Pop. In that case Complete performs the
// frontier fold itself (§4.5 double reduction, run from the producer
// side): the consumer wakes to data already linked into the head chain
// instead of re-deriving the fold under its own decision path. The fold
// requires consMu (which proves the parked consumer cannot concurrently
// touch the queue view) and regMu nested inside it, so the registry
// lock is released first — regMu is never held while taking consMu.
func (d queueDep[T]) Complete(parent, child *sched.Frame) {
	q := d.q
	cqv := q.viewsOf(child)

	q.lockReg()
	// Deposit the child's views into its nearest live elder sibling or
	// its parent and unlink it from the live-sibling chain — the
	// substrate's Retire fold.
	q.eng.Retire(&cqv.vs)

	if d.mode&ModePush != 0 {
		delete(q.producers, child)
	}
	q.unlockReg()

	if d.mode&ModePop != 0 {
		cqv.parentQV.popServed.Add(1)
	}

	// Wake ticket waiters and consumers blocked in Empty/Pop — and, when
	// this completion retired the last producer ordered before a parked
	// consumer, link the frontier on its behalf first.
	q.lockCons()
	if pc := q.parked; pc != nil {
		q.lockRegNested()
		if !q.visibleProducerLive(pc.vs.Frame) {
			q.linkFrontier(pc)
		}
		q.unlockRegNested()
	}
	q.wakeLocked()
	q.consMu.Unlock()
}
