package core

import "sync"

// segPool recycles queue segments so that a pipeline in steady state
// performs zero heap allocations: every segment the consumer drains past
// (reachableData) is reset and parked on a free list, and every producer
// overflow (Push into a full segment, attachFreshSegment, WriteSlice)
// takes a segment from a free list before falling back to make.
//
// The pool is sharded per worker: shard selection hashes the scheduler's
// worker id (sched.Frame.WorkerID), so a producer and consumer running on
// the same worker — the common case under help-first scheduling, and the
// only case on one worker — hit a private free list with an uncontended
// mutex. Segments freed on one worker and needed on another circulate
// through the bounded global overflow list; a get that misses its own
// shard and the overflow scans the other shards before allocating, so a
// recycled segment is never stranded while another worker allocates.
// Lists are fixed-capacity arrays: put and get never allocate, and a put
// that finds everything full simply drops the segment for the garbage
// collector (the pool is a cache, not an accounting structure).
//
// Only segments of the queue's configured capacity are pooled; the
// oversized segments WriteSlice creates for large requests (§5.2) are
// dropped on recycle.
type segPool[T any] struct {
	shards []segPoolShard[T]
	mask   int
	segCap int

	overflowMu sync.Mutex
	overflow   []*segment[T] // fixed capacity, allocated at init
}

const (
	// segShardSlots bounds each per-worker free list; segOverflowSlots
	// bounds the shared overflow list. Together they cap the idle memory
	// a queue retains at (shards*segShardSlots + segOverflowSlots)
	// segments.
	segShardSlots    = 8
	segOverflowSlots = 64
	// maxSegShards caps the shard array on very wide machines; beyond
	// this, workers share shards by id hash, which only costs some mutex
	// sharing on a path taken once per segCap values.
	maxSegShards = 16
)

type segPoolShard[T any] struct {
	mu   sync.Mutex
	n    int
	free [segShardSlots]*segment[T]
	// Pad each shard to its own cache-line neighborhood so per-worker
	// lists do not false-share.
	_ [64]byte
}

// init sizes the pool for a runtime with the given worker count. The
// shard count is the smallest power of two covering the workers, capped
// at maxSegShards.
func (p *segPool[T]) init(workers, segCap int) {
	n := 1
	for n < workers && n < maxSegShards {
		n *= 2
	}
	p.shards = make([]segPoolShard[T], n)
	p.mask = n - 1
	p.segCap = segCap
	p.overflow = make([]*segment[T], 0, segOverflowSlots)
}

// shard maps a scheduler worker id to a shard index.
func (p *segPool[T]) shard(workerID int) int { return workerID & p.mask }

// get returns a reset segment of the queue's configured capacity, taking
// it from the sid shard, the overflow list, or any other shard before
// allocating a fresh one.
func (p *segPool[T]) get(sid int) *segment[T] {
	sh := &p.shards[sid]
	sh.mu.Lock()
	if sh.n > 0 {
		sh.n--
		s := sh.free[sh.n]
		sh.free[sh.n] = nil
		sh.mu.Unlock()
		return s
	}
	sh.mu.Unlock()
	p.overflowMu.Lock()
	if n := len(p.overflow); n > 0 {
		s := p.overflow[n-1]
		p.overflow[n-1] = nil
		p.overflow = p.overflow[:n-1]
		p.overflowMu.Unlock()
		return s
	}
	p.overflowMu.Unlock()
	for i := range p.shards {
		if i == sid {
			continue
		}
		o := &p.shards[i]
		o.mu.Lock()
		if o.n > 0 {
			o.n--
			s := o.free[o.n]
			o.free[o.n] = nil
			o.mu.Unlock()
			return s
		}
		o.mu.Unlock()
	}
	return newSegment[T](p.segCap)
}

// put recycles a drained segment into the sid shard, spilling to the
// overflow list, or drops it when both are full or it is not of the
// pooled capacity. The caller must own the segment exclusively (it has
// been drained past: no view points at it and no producer can reach it)
// and must not touch it afterwards.
func (p *segPool[T]) put(sid int, s *segment[T]) {
	if len(s.buf) != p.segCap {
		return
	}
	s.reset()
	sh := &p.shards[sid]
	sh.mu.Lock()
	if sh.n < segShardSlots {
		sh.free[sh.n] = s
		sh.n++
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	p.overflowMu.Lock()
	if len(p.overflow) < segOverflowSlots {
		p.overflow = append(p.overflow, s)
	}
	p.overflowMu.Unlock()
}
