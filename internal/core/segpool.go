package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/core/hyper"
	"repro/internal/sched"
)

// This file implements the two layers of segment recycling:
//
//   - segPool is one sharded free list of segments of a single element
//     type and capacity;
//   - PoolProvider is the runtime-wide registry of segPools, stored once
//     per sched.Runtime (via Runtime.Shared), so that every queue the
//     runtime ever creates with the same element type and segment
//     capacity draws from the same free lists.
//
// Before PR 4 each Queue owned a private segPool, which made the steady
// state of one long-lived queue allocation-free but re-paid the full
// segment-allocation cost for every queue a churn-heavy program creates
// (dedup builds one short-lived queue per coarse chunk). With the
// provider, a recycled queue's segments outlive the queue: the next
// pipeline instance — whether it reuses the Queue via Recycle or
// constructs a fresh one — starts on warm segments.

// providerKey is the Runtime.Shared key under which the one PoolProvider
// of a runtime lives.
type providerKey struct{}

// poolKey identifies one segPool inside a provider: the element type
// (carried by the generic instantiation) and the segment capacity. Only
// queues agreeing on both can exchange segments.
type poolKey[T any] struct{ segCap int }

// PoolProvider is the per-runtime segment-pool registry. The runtime
// owns exactly one (lazily created by the first queue); queues resolve
// their segPool through it at construction time, so pools — and the
// segments cached in them — are shared across all queues of the runtime
// with the same element type and segment capacity.
type PoolProvider struct {
	workers int

	mu    sync.Mutex
	pools map[any]any // poolKey[T] -> *segPool[T]

	// recycles counts completed Queue.Recycle resets runtime-wide — the
	// companion gauge to PooledSegments for the swan.Stats surface.
	recycles atomic.Uint64

	// segAllocs counts segments allocated fresh because every free list
	// missed — the runtime-wide "the pool was not enough" gauge. Together
	// with a queue bound it yields a provable memory ceiling: a bounded
	// 1P/1C pipeline can keep at most ceil(bound/segCap)+O(1) segments
	// live, so segAllocs stays flat once the chain is warm (asserted in
	// the backpressure tests). Every fresh segment a queue ever creates
	// is counted here — pool misses and the oversized one-off segments
	// WriteSlice builds for requests larger than the configured capacity
	// — so together with segDrops it closes the pool-accounting books:
	//
	//   SegmentAllocs == PooledSegments + DroppedSegments + live chains
	//                    + segments abandoned with their queues
	//
	// at any quiescent point. The soak harness (internal/soak) audits
	// exactly this balance, tracking the abandoned term itself via
	// Queue.DebugChainSegments.
	segAllocs atomic.Uint64

	// segDrops counts segments handed to put that the pool declined to
	// cache — free lists full, or a segment of a non-pooled (oversized)
	// capacity — and released to the garbage collector instead. The
	// counterpart to segAllocs in the audit balance above.
	segDrops atomic.Uint64

	// flows is the registry of metered queues (bounded or Named), read by
	// QueueStats for the swan metrics endpoint. Registration happens once
	// per queue construction; entries survive Recycle (the meter is
	// cumulative) and are never removed — the registry is bounded by the
	// number of metered queues the program creates, and programs that
	// churn queues use Recycle precisely to avoid re-creating them.
	flowMu   sync.Mutex
	flows    []*flowState
	autoName atomic.Uint64 // "queue-N" names for unnamed bounded queues

	// hypers is the registry of named reducers and hypermaps, read by
	// HyperStats for the swan metrics endpoint. Like flows, only Named
	// objects register (HyperNamed), registration happens once per
	// construction, and entries are never removed — unnamed objects stay
	// unregistered so churny callers do not grow the registry.
	hyperMu sync.Mutex
	hypers  []hyper.Hyperobject
}

// RecycledQueues reports how many Queue.Recycle resets have completed
// across every queue of the runtime.
func (p *PoolProvider) RecycledQueues() uint64 { return p.recycles.Load() }

// SegmentAllocs reports how many segments have ever been allocated fresh
// (pool misses plus oversized WriteSlice segments) across every pool of
// the provider.
func (p *PoolProvider) SegmentAllocs() uint64 { return p.segAllocs.Load() }

// DroppedSegments reports how many segments the pools declined to cache
// (full free lists or non-pooled capacities) and released to the garbage
// collector. Part of the pool-audit debug API: see the segAllocs comment
// for the balance equation the soak harness checks.
func (p *PoolProvider) DroppedSegments() uint64 { return p.segDrops.Load() }

// CarryProvider installs the segment-pool provider of one runtime as the
// provider of another, so pools — and every segment cached in them —
// survive a runtime teardown/rebuild (a policy switch mid-service, or
// per-connection runtime reuse). It must run before any queue is created
// on the destination runtime; if the destination already resolved its own
// provider, that one wins and CarryProvider reports it instead. The
// returned provider is the one dst will use.
func CarryProvider(src, dst *sched.Runtime) *PoolProvider {
	prov := ProviderOf(src)
	return dst.Shared(providerKey{}, func() any { return prov }).(*PoolProvider)
}

// registerFlow adds a metered queue's flow block to the provider
// registry, assigning an automatic name when the queue was bounded but
// not Named.
func (p *PoolProvider) registerFlow(fl *flowState) {
	if fl.name == "" {
		fl.name = "queue-" + itoa(p.autoName.Add(1))
	}
	p.flowMu.Lock()
	p.flows = append(p.flows, fl)
	p.flowMu.Unlock()
}

// registerHyper adds a named hyperobject (reducer, hypermap) to the
// provider registry.
func (p *PoolProvider) registerHyper(h hyper.Hyperobject) {
	p.hyperMu.Lock()
	p.hypers = append(p.hypers, h)
	p.hyperMu.Unlock()
}

// HyperStats snapshots every named hyperobject of the runtime, in order
// of first appearance. Objects sharing a name and kind — a per-run
// reducer constructed once per pipeline instance, for example —
// aggregate into one row: merge and view counters sum, so the name
// labels the role rather than one object instance.
func (p *PoolProvider) HyperStats() []hyper.Stat {
	p.hyperMu.Lock()
	hypers := p.hypers
	p.hyperMu.Unlock()
	var out []hyper.Stat
	type key struct{ name, kind string }
	index := make(map[key]int, len(hypers))
	for _, h := range hypers {
		s := h.HyperStat()
		k := key{s.Name, s.Kind}
		i, ok := index[k]
		if !ok {
			index[k] = len(out)
			out = append(out, s)
			continue
		}
		agg := &out[i]
		agg.Merges += s.Merges
		agg.Views += s.Views
	}
	return out
}

// QueueStats snapshots every metered queue of the runtime, in order of
// first appearance. Plain unbounded queues do not appear (they carry no
// meter). Queues sharing a name — a pipeline stage constructed once per
// run, for example — are aggregated into one row: counters and
// occupancy sum, high-water and bound take the maximum, so the name
// labels the stage rather than one queue instance and the Prometheus
// rendering never emits duplicate series.
func (p *PoolProvider) QueueStats() []QueueStat {
	p.flowMu.Lock()
	flows := p.flows
	p.flowMu.Unlock()
	var out []QueueStat
	index := make(map[string]int, len(flows))
	for _, fl := range flows {
		s := fl.snapshot()
		i, ok := index[s.Name]
		if !ok {
			index[s.Name] = len(out)
			out = append(out, s)
			continue
		}
		agg := &out[i]
		agg.Bound = max(agg.Bound, s.Bound)
		agg.Occupancy += s.Occupancy
		agg.HighWater = max(agg.HighWater, s.HighWater)
		agg.Pushed += s.Pushed
		agg.Popped += s.Popped
		agg.ProducerBlocks += s.ProducerBlocks
		agg.ProducerWakes += s.ProducerWakes
		agg.ConsumerBlocks += s.ConsumerBlocks
		agg.ConsumerWakes += s.ConsumerWakes
		agg.Sheds += s.Sheds
	}
	return out
}

// itoa is strconv.Itoa for the auto-namer without importing strconv into
// the hot-path compilation unit.
func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ProviderOf returns the runtime's segment-pool provider, creating it on
// first use. All queues created on rt share this provider.
func ProviderOf(rt *sched.Runtime) *PoolProvider {
	return rt.Shared(providerKey{}, func() any {
		return &PoolProvider{workers: rt.Workers(), pools: make(map[any]any)}
	}).(*PoolProvider)
}

// poolFor resolves (and on first use creates) the shared segPool for
// element type T and segment capacity segCap. Called once per queue
// construction — never on a push/pop path.
func poolFor[T any](p *PoolProvider, segCap int) *segPool[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := poolKey[T]{segCap}
	if sp, ok := p.pools[key]; ok {
		return sp.(*segPool[T])
	}
	sp := &segPool[T]{prov: p}
	sp.init(p.workers, segCap)
	p.pools[key] = sp
	return sp
}

// PooledSegments reports how many segments are currently cached across
// every pool of the provider — a diagnostic for tests and tuning, not a
// hot-path primitive.
func (p *PoolProvider) PooledSegments() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, sp := range p.pools {
		total += sp.(interface{ cached() int }).cached()
	}
	return total
}

// segPool recycles queue segments so that a pipeline in steady state
// performs zero heap allocations: every segment the consumer drains past
// (reachableData) is reset and parked on a free list, and every producer
// overflow (Push into a full segment, attachFreshSegment, WriteSlice)
// takes a segment from a free list before falling back to make. One
// segPool serves every queue of its runtime that shares its element type
// and segment capacity (see PoolProvider above).
//
// The pool is sharded per worker: shard selection hashes the scheduler's
// worker id (sched.Frame.WorkerID), so a producer and consumer running on
// the same worker — the common case under help-first scheduling, and the
// only case on one worker — hit a private free list with an uncontended
// mutex. Segments freed on one worker and needed on another circulate
// through the bounded global overflow list; a get that misses its own
// shard and the overflow scans the other shards before allocating, so a
// recycled segment is never stranded while another worker allocates.
// Lists are fixed-capacity arrays: put and get never allocate, and a put
// that finds everything full simply drops the segment for the garbage
// collector (the pool is a cache, not an accounting structure).
//
// Only segments of the queue's configured capacity are pooled; the
// oversized segments WriteSlice creates for large requests (§5.2) are
// dropped on recycle.
type segPool[T any] struct {
	prov   *PoolProvider // owning provider, for the segAllocs miss counter
	shards []segPoolShard[T]
	mask   int
	segCap int

	overflowMu sync.Mutex
	overflow   []*segment[T] // fixed capacity, allocated at init
}

// cached reports how many segments the pool currently holds (shards plus
// overflow). Diagnostic only.
func (p *segPool[T]) cached() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	p.overflowMu.Lock()
	n += len(p.overflow)
	p.overflowMu.Unlock()
	return n
}

const (
	// segShardSlots bounds each per-worker free list; segOverflowSlots
	// bounds the shared overflow list. Together they cap the idle memory
	// one (type, capacity) pool retains — runtime-wide, now that pools
	// are shared — at (shards*segShardSlots + segOverflowSlots)
	// segments.
	segShardSlots    = 8
	segOverflowSlots = 64
	// maxSegShards caps the shard array on very wide machines; beyond
	// this, workers share shards by id hash, which only costs some mutex
	// sharing on a path taken once per segCap values.
	maxSegShards = 16
)

type segPoolShard[T any] struct {
	mu   sync.Mutex
	n    int
	free [segShardSlots]*segment[T]
	// Pad each shard to its own cache-line neighborhood so per-worker
	// lists do not false-share.
	_ [64]byte
}

// init sizes the pool for a runtime with the given worker count. The
// shard count is the smallest power of two covering the workers, capped
// at maxSegShards.
func (p *segPool[T]) init(workers, segCap int) {
	n := 1
	for n < workers && n < maxSegShards {
		n *= 2
	}
	p.shards = make([]segPoolShard[T], n)
	p.mask = n - 1
	p.segCap = segCap
	p.overflow = make([]*segment[T], 0, segOverflowSlots)
}

// shard maps a scheduler worker id to a shard index.
func (p *segPool[T]) shard(workerID int) int { return workerID & p.mask }

// get returns a reset segment of the queue's configured capacity, taking
// it from the sid shard, the overflow list, or any other shard before
// allocating a fresh one.
func (p *segPool[T]) get(sid int) *segment[T] {
	sh := &p.shards[sid]
	sh.mu.Lock()
	if sh.n > 0 {
		sh.n--
		s := sh.free[sh.n]
		sh.free[sh.n] = nil
		sh.mu.Unlock()
		return s
	}
	sh.mu.Unlock()
	p.overflowMu.Lock()
	if n := len(p.overflow); n > 0 {
		s := p.overflow[n-1]
		p.overflow[n-1] = nil
		p.overflow = p.overflow[:n-1]
		p.overflowMu.Unlock()
		return s
	}
	p.overflowMu.Unlock()
	for i := range p.shards {
		if i == sid {
			continue
		}
		o := &p.shards[i]
		o.mu.Lock()
		if o.n > 0 {
			o.n--
			s := o.free[o.n]
			o.free[o.n] = nil
			o.mu.Unlock()
			return s
		}
		o.mu.Unlock()
	}
	if p.prov != nil {
		p.prov.segAllocs.Add(1)
	}
	return newSegment[T](p.segCap)
}

// put recycles a drained segment into the sid shard, spilling to the
// overflow list, or drops it when both are full or it is not of the
// pooled capacity. The caller must own the segment exclusively (it has
// been drained past: no view points at it and no producer can reach it)
// and must not touch it afterwards.
func (p *segPool[T]) put(sid int, s *segment[T]) {
	if len(s.buf) != p.segCap {
		p.noteDrop()
		return
	}
	s.reset()
	sh := &p.shards[sid]
	sh.mu.Lock()
	if sh.n < segShardSlots {
		sh.free[sh.n] = s
		sh.n++
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	p.overflowMu.Lock()
	if len(p.overflow) < segOverflowSlots {
		p.overflow = append(p.overflow, s)
		p.overflowMu.Unlock()
		return
	}
	p.overflowMu.Unlock()
	p.noteDrop()
}

// noteDrop records a segment released to the garbage collector instead
// of cached, keeping the provider's audit balance closed.
func (p *segPool[T]) noteDrop() {
	if p.prov != nil {
		p.prov.segDrops.Add(1)
	}
}
