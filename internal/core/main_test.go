package core

import (
	"os"
	"testing"
)

// TestMain enables the hyperqueue's runtime self-checking assertions for
// every test in this binary (both the package core tests — including the
// torture and determinism suites — and the core_test regression tests):
// each permanent-emptiness decision additionally asserts that no valid
// view ordered before the consumer still holds data. A violation panics
// and fails the offending test through Run.
func TestMain(m *testing.M) {
	SetDebugChecks(true)
	os.Exit(m.Run())
}
