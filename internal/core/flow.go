package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Bounded queues and flow control. The paper's hyperqueues are unbounded
// by construction — a producer never waits — which is the right model for
// batch pipelines but unsafe for long-running streaming services: a
// producer that outruns its consumer grows the segment chain (and the
// heap) without limit and nothing observes it. This file adds the
// producer-side dual of the consumer's emptyWait: an optional per-queue
// element budget (Bounded) enforced by credit accounting, plus the
// occupancy/high-water/block metering that makes a running pipeline
// observable (Named, QueueStat, the swan metrics endpoint).
//
// Credits. A bounded queue starts with bound credits. Every push takes
// one credit before it touches a segment; every value the consumer moves
// past — Pop, TryPop, PopInto, ConsumeRead — returns one. When credits
// run out the producer spins briefly (the consumer is usually one pop
// away), then parks on a producer-side condition variable inside
// Frame.Block, so the scheduler releases the task's run token and a
// blocked producer can never starve the consumer of execution capacity.
// Wake-ups follow the same sleeper-counting rule as the consumer cond
// (wakeLocked): Signal when exactly one producer sleeps, Broadcast
// otherwise.
//
// Lock order. prodMu is a leaf lock, disjoint from the consMu/regMu
// hierarchy: it is only ever taken with no other queue lock held (the
// producer's park runs before any segment work, the consumer's release
// runs after the head advance, outside both locks). It can therefore
// never participate in a lock cycle with the view machinery.
//
// Deadlock freedom. Scheduler-level: a blocked Push routes through
// Frame.Block, which starts a compensating worker (PolicySteal) or
// releases the slot (PolicyGoroutine), so the consumer always has
// capacity to run, exactly as the consumer-side emptyWait guarantees the
// mirror case. Queue-level: credits are granted in arrival order while
// the consumer drains in serial program order, so a program whose
// producers run concurrently out of serial order can fill the bound with
// values the consumer cannot yet reach and wedge — see the in-order
// production discipline in OPERATIONS.md and the deadlock-freedom
// argument in ARCHITECTURE.md. Single-producer stages (the pipeline
// helpers, Produce, TransformSerial) are deadlock-free for any bound ≥ 1.

// creditSpins bounds the producer's yield-spin on an exhausted budget
// before it falls back to the capacity-releasing park, mirroring the
// consumer's emptySpins rationale: in steady state the next credit is
// one pop away.
const creditSpins = 64

// QueueOption configures a queue at construction (New,
// NewWithCapacity).
type QueueOption func(*queueOpts)

type queueOpts struct {
	bound int
	name  string
}

// Bounded caps the queue at n buffered values. Push and PushSlice block
// — releasing the worker slot via Frame.Block — once n values are in
// flight, and resume as the consumer drains. n < 1 is treated as 1. The
// default (no option) keeps the paper's unbounded semantics. A bounded
// queue is automatically metered (see Named).
func Bounded(n int) QueueOption {
	return func(o *queueOpts) {
		if n < 1 {
			n = 1
		}
		o.bound = n
	}
}

// Named meters the queue under the given name: occupancy, high-water and
// block/wake counters become visible in the runtime's QueueStats (and
// the swan metrics endpoint). Metering costs two atomic adds per element
// on the push/pop paths; plain unbounded queues pay only a nil check.
func Named(name string) QueueOption {
	return func(o *queueOpts) { o.name = name }
}

// QueueStat is a point-in-time snapshot of one metered queue's gauges
// and counters, reported by PoolProvider.QueueStats (runtime-wide) and
// Queue.Metrics (single queue). Counters are cumulative across Recycle.
type QueueStat struct {
	Name           string // Named value, or "queue-N" for auto-named bounded queues
	Bound          int    // element budget; 0 = unbounded (metering only)
	Occupancy      int64  // values currently buffered (pushed - popped)
	HighWater      int64  // maximum occupancy ever observed
	Pushed         uint64 // values ever pushed
	Popped         uint64 // values ever popped
	ProducerBlocks uint64 // producer parks on an exhausted budget
	ProducerWakes  uint64 // credit releases that found a parked producer
	ConsumerBlocks uint64 // consumer parks waiting for data (emptyWait)
	ConsumerWakes  uint64 // pushes that found a parked consumer
	Sheds          uint64 // values refused by TryPush / timed-out PushTimeout
}

// flowState is the per-queue flow-control block, allocated only for
// bounded or named queues; q.flow == nil is the plain unbounded case and
// keeps the hot paths branch-predictable with zero extra atomics.
type flowState struct {
	name  string
	bound int64 // 0 = metering only, no credit accounting

	// credits is the remaining element budget. Producers take with a CAS
	// loop (partial grants allowed — PushSlice moves what it can and
	// comes back for the rest); consumers return with a plain Add.
	credits atomic.Int64

	// Metering. pushed/popped are the occupancy decomposition (monotone
	// counters race-free to read independently); highWater is maintained
	// by CAS-max on the push side only.
	pushed    atomic.Uint64
	popped    atomic.Uint64
	highWater atomic.Int64

	prodBlocks atomic.Uint64
	prodWakes  atomic.Uint64
	consBlocks atomic.Uint64
	consWakes  atomic.Uint64
	sheds      atomic.Uint64

	// failedp aliases the owning queue's poison cell (cancel.go) so the
	// producer-side park predicates can observe a Fail without a
	// reference to the generic Queue type. Immutable after construction.
	failedp *atomic.Pointer[failCell]

	// Producer park state. pushWaiters mirrors Queue.waiters: the
	// consumer's release probes it with one atomic load and skips prodMu
	// entirely in the no-waiter steady state. Lost wakeups are
	// impossible for the same reason as on the consumer side: a producer
	// increments pushWaiters under prodMu before re-checking credits, so
	// a releasing consumer either observes the waiter (and its wake
	// serializes through prodMu) or added the credits before the
	// producer's re-check (and the producer does not wait).
	pushWaiters  atomic.Int32
	prodMu       sync.Mutex
	prodCond     *sync.Cond
	prodSleepers int // producers inside the cond.Wait loop; guarded by prodMu
}

func newFlowState(name string, bound int) *flowState {
	fl := &flowState{name: name, bound: int64(bound)}
	fl.credits.Store(int64(bound))
	fl.prodCond = sync.NewCond(&fl.prodMu)
	return fl
}

// acquire blocks until at least one credit is available, takes up to
// want of them, meters the pushes, and returns the number taken. On an
// unbounded metered queue it never blocks and grants want whole.
func (fl *flowState) acquire(f *sched.Frame, want int64) int64 {
	take := want
	if fl.bound > 0 {
		take = fl.takeCredits(f, want)
	}
	fl.meterPush(take)
	return take
}

// meterPush records take granted pushes: the occupancy decomposition and
// the CAS-max high-water mark.
func (fl *flowState) meterPush(take int64) {
	occ := int64(fl.pushed.Add(uint64(take)) - fl.popped.Load())
	for {
		hw := fl.highWater.Load()
		if occ <= hw || fl.highWater.CompareAndSwap(hw, occ) {
			break
		}
	}
}

func (fl *flowState) takeCredits(f *sched.Frame, want int64) int64 {
	for {
		cur := fl.credits.Load()
		if cur > 0 {
			take := min(want, cur)
			if fl.credits.CompareAndSwap(cur, cur-take) {
				return take
			}
			continue
		}
		fl.waitForCredit(f)
	}
}

// waitForCredit spins briefly and then parks the producer until the
// budget is replenished — or until the queue is poisoned or the frame's
// scope canceled, in which case the producer unwinds instead of holding
// its park forever (the wedge a canceled bounded pipeline would
// otherwise leave behind). The caller re-runs the CAS loop after a
// credit wake: the wake is a hint, not a grant.
func (fl *flowState) waitForCredit(f *sched.Frame) {
	for i := 0; i < creditSpins; i++ {
		runtime.Gosched()
		if fl.credits.Load() > 0 {
			return
		}
	}
	sc := f.CancelScope()
	if err := fl.failedErr(); err != nil {
		panic(sched.AbortUnwind{Err: err})
	}
	if sc.Canceled() {
		panic(sched.CancelUnwind{Err: sc.Err()})
	}
	fl.prodBlocks.Add(1)
	f.Block(func() {
		unreg := sc.OnCancel(fl.broadcastProd)
		defer unreg()
		fl.prodMu.Lock()
		fl.pushWaiters.Add(1)
		fl.prodSleepers++
		for fl.credits.Load() <= 0 && fl.failedErr() == nil && !sc.Canceled() {
			fl.prodCond.Wait()
		}
		fl.prodSleepers--
		fl.pushWaiters.Add(-1)
		fl.prodMu.Unlock()
	})
	if err := fl.failedErr(); err != nil {
		panic(sched.AbortUnwind{Err: err})
	}
	if sc.Canceled() {
		panic(sched.CancelUnwind{Err: sc.Err()})
	}
}

// release returns n credits after the consumer advanced the head past n
// values, and wakes parked producers. The steady-state cost on an
// unblocked bounded queue is two atomic adds and one atomic load.
func (fl *flowState) release(n int64) {
	fl.popped.Add(uint64(n))
	if fl.bound == 0 {
		return
	}
	fl.credits.Add(n)
	if fl.pushWaiters.Load() == 0 {
		return
	}
	fl.prodWakes.Add(1)
	fl.prodMu.Lock()
	switch fl.prodSleepers {
	case 0:
	case 1:
		fl.prodCond.Signal()
	default:
		fl.prodCond.Broadcast()
	}
	fl.prodMu.Unlock()
}

// rearm resets the credit budget to the full bound. Only Recycle calls
// it, at a point where the queue is verified drained and no producer is
// live, so no credits can be in flight.
func (fl *flowState) rearm() {
	if fl.bound > 0 {
		fl.credits.Store(fl.bound)
	}
}

// snapshot reads the meter. Counters are loaded independently — the
// snapshot is internally consistent enough for a diagnostic surface, not
// a linearizable read.
func (fl *flowState) snapshot() QueueStat {
	pushed, popped := fl.pushed.Load(), fl.popped.Load()
	return QueueStat{
		Name:           fl.name,
		Bound:          int(fl.bound),
		Occupancy:      int64(pushed - popped),
		HighWater:      fl.highWater.Load(),
		Pushed:         pushed,
		Popped:         popped,
		ProducerBlocks: fl.prodBlocks.Load(),
		ProducerWakes:  fl.prodWakes.Load(),
		ConsumerBlocks: fl.consBlocks.Load(),
		ConsumerWakes:  fl.consWakes.Load(),
		Sheds:          fl.sheds.Load(),
	}
}

// Bound reports the queue's element budget (0 = unbounded).
func (q *Queue[T]) Bound() int {
	if q.flow == nil {
		return 0
	}
	return int(q.flow.bound)
}

// Metrics reports the queue's meter snapshot. ok is false for plain
// unbounded queues, which are not metered.
func (q *Queue[T]) Metrics() (stat QueueStat, ok bool) {
	if q.flow == nil {
		return QueueStat{}, false
	}
	return q.flow.snapshot(), true
}
