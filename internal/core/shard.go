package core

import (
	"fmt"
	"time"

	"repro/internal/sched"
)

// Sharded is a deterministic pipeline-of-pipelines: the hyperqueue is
// single-consumer by design (the pop privilege serializes along program
// order, §2.3), so a pipeline scales past one consumer by *partitioning*
// the stream over N per-shard hyperqueues — never by splitting a
// consumer role. A router task pops the ingress queue and fans each
// value out by a caller-supplied content-based partition function
// (reduced mod N); one worker task per shard consumes its own queue; and
// a merger task folds the per-shard results back into serial program
// order by replaying the router's routing decisions from a side queue of
// shard indices. Every queue involved keeps exactly one consumer, so the
// whole construction inherits the determinism argument of the single
// pipeline: the egress stream is byte-identical for any worker count,
// shard count, and scheduler policy.
//
// Flow control is per shard: the shard input and result queues are
// bounded (credit-based backpressure, flow.go), so one slow shard blocks
// only its own router pushes once its bound fills — siblings keep
// draining up to their own bounds, and total in-flight data is capped at
// roughly N×2×Bound values. The router and merger loops run entirely on
// bound handles and are allocation-free in steady state.
//
// Program-order discipline (visibility, §2.3 rule 4): producers into
// In() must be spawned before Launch, and the consumer of Out() must be
// spawned after Launch, so that router → shard workers → merger →
// egress consumer is a program-order chain and each stage's values are
// visible to the next.
type Sharded[I, O any] struct {
	cfg   ShardConfig
	owner *sched.Frame
	part  func(I) uint64
	work  func(f *sched.Frame, shard int) func(I) O
	deps  []sched.Dep

	in    *Queue[I]
	out   *Queue[O]
	route *Queue[int32] // router's shard decisions, in arrival order
	inQ   []*Queue[I]   // per-shard input (bounded)
	resQ  []*Queue[O]   // per-shard results (bounded)

	// drained closes when the merger task completes — every routed value
	// merged into Out, or the merger unwound under cancellation/poison.
	// The close runs in the merger's dep Complete, which the substrate
	// runs even for tasks whose body was skipped, so Drain never waits on
	// a task that will not run.
	drained chan struct{}

	launched bool
}

// DefaultShardBound is the per-shard queue bound used when ShardConfig
// leaves Bound zero: deep enough to decouple shards across scheduling
// hiccups, shallow enough that a stalled shard pins at most a few
// segments per queue.
const DefaultShardBound = 1024

// ShardConfig configures NewSharded.
type ShardConfig struct {
	// Shards is the number of partitions N (minimum 1).
	Shards int
	// Bound caps each per-shard input and result queue (default
	// DefaultShardBound). It is the isolation budget: a blocked shard
	// holds at most 2×Bound values plus one in each stalled task's hand.
	Bound int
	// SegCap overrides the hyperqueue segment capacity (0 = default).
	SegCap int
	// Name, when non-empty, meters every queue of the fan-out under
	// "<Name>.in", "<Name>.route", "<Name>.shard<i>.in",
	// "<Name>.shard<i>.out" and "<Name>.out" in the queue stats registry,
	// exposing per-shard occupancy and block/wake counters.
	Name string
}

func (c *ShardConfig) normalize() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Bound <= 0 {
		c.Bound = DefaultShardBound
	}
}

// NewSharded creates the shard fan-out on the calling task's frame f:
// the ingress queue (In), N bounded per-shard pipelines, and the egress
// queue (Out). part maps a value to a partition key (reduced mod N —
// values with equal keys are processed by the same shard, in arrival
// order). work builds one shard's transform: it is called once per shard
// inside that shard's consumer task and may bind per-task state
// (reducer handles, local tables); the returned function is then applied
// to every value routed to the shard. workerDeps are granted to every
// shard worker task in addition to its queue privileges (hyperobject
// access, typically).
//
// Call order matters (see the type comment): spawn producers into In(),
// then Launch(f), then spawn the consumer of Out().
func NewSharded[I, O any](
	f *sched.Frame,
	cfg ShardConfig,
	part func(I) uint64,
	work func(f *sched.Frame, shard int) func(I) O,
	workerDeps ...sched.Dep,
) *Sharded[I, O] {
	cfg.normalize()
	s := &Sharded[I, O]{cfg: cfg, owner: f, part: part, work: work, deps: workerDeps}
	name := func(format string, args ...any) []QueueOption {
		if cfg.Name == "" {
			return nil
		}
		return []QueueOption{Named(cfg.Name + fmt.Sprintf(format, args...))}
	}
	newQ := func(opts []QueueOption) *Queue[I] {
		if cfg.SegCap > 0 {
			return NewWithCapacity[I](f, cfg.SegCap, opts...)
		}
		return New[I](f, opts...)
	}
	newR := func(opts []QueueOption) *Queue[O] {
		if cfg.SegCap > 0 {
			return NewWithCapacity[O](f, cfg.SegCap, opts...)
		}
		return New[O](f, opts...)
	}
	s.drained = make(chan struct{})
	s.in = newQ(name(".in"))
	s.out = newR(name(".out"))
	s.route = New[int32](f, name(".route")...)
	s.inQ = make([]*Queue[I], cfg.Shards)
	s.resQ = make([]*Queue[O], cfg.Shards)
	for i := range s.inQ {
		s.inQ[i] = newQ(append(name(".shard%d.in", i), Bounded(cfg.Bound)))
		s.resQ[i] = newR(append(name(".shard%d.out", i), Bounded(cfg.Bound)))
	}
	return s
}

// In returns the ingress queue. Spawn producers on it (with Push
// privilege) before calling Launch.
func (s *Sharded[I, O]) In() *Queue[I] { return s.in }

// Out returns the egress queue: results in ingress arrival order. Spawn
// its consumer (with Pop privilege) after calling Launch.
func (s *Sharded[I, O]) Out() *Queue[O] { return s.out }

// Shards reports the partition count N.
func (s *Sharded[I, O]) Shards() int { return s.cfg.Shards }

// DebugChainSegments sums Queue.DebugChainSegments over every queue of
// the fan-out (ingress, route log, per-shard pairs, egress). Owner-only
// and quiescent-only, like the queue-level call; the soak harness uses
// it to account a fan-out's segments before abandoning it.
func (s *Sharded[I, O]) DebugChainSegments(f *sched.Frame) uint64 {
	n := s.in.DebugChainSegments(f) + s.out.DebugChainSegments(f) +
		s.route.DebugChainSegments(f)
	for i := range s.inQ {
		n += s.inQ[i].DebugChainSegments(f) + s.resQ[i].DebugChainSegments(f)
	}
	return n
}

// Launch spawns the fan-out tasks — router, one worker per shard, merger
// — on the owning frame, in that (program) order. It must be called
// exactly once, from the task body that created the Sharded, after the
// In-side producers were spawned.
func (s *Sharded[I, O]) Launch(f *sched.Frame) {
	if f != s.owner {
		panic("swan: Sharded.Launch must be called on the frame that created it")
	}
	if s.launched {
		panic("swan: Sharded.Launch called twice")
	}
	s.launched = true
	n := s.cfg.Shards

	// Router: pop the ingress stream in serial order, append each value
	// to its shard's queue and the shard index to the route queue. The
	// route queue is the merge schedule: it records arrival order once,
	// so the merger needs no timestamps or sequence numbers.
	routerDeps := make([]sched.Dep, 0, n+2)
	routerDeps = append(routerDeps, Pop(s.in), Push(s.route))
	for i := range s.inQ {
		routerDeps = append(routerDeps, Push(s.inQ[i]))
	}
	f.Spawn(func(c *sched.Frame) {
		in := s.in.BindPop(c)
		rt := s.route.BindPush(c)
		pushers := make([]Pusher[I], n)
		for i := range pushers {
			pushers[i] = s.inQ[i].BindPush(c)
		}
		mod := uint64(n)
		for !in.Empty() {
			v := in.Pop()
			sh := int32(s.part(v) % mod)
			pushers[sh].Push(v)
			rt.Push(sh)
		}
	}, routerDeps...)

	// Shard workers: each consumes its own queue in routed order and
	// emits one result per value. The worker factory runs inside the
	// task body so it can bind per-task state (reducer handles, local
	// tables) before the steady-state loop.
	for i := range s.inQ {
		shard := i
		deps := make([]sched.Dep, 0, len(s.deps)+2)
		deps = append(deps, Pop(s.inQ[shard]), Push(s.resQ[shard]))
		deps = append(deps, s.deps...)
		f.Spawn(func(c *sched.Frame) {
			fn := s.work(c, shard)
			in := s.inQ[shard].BindPop(c)
			out := s.resQ[shard].BindPush(c)
			for !in.Empty() {
				out.Push(fn(in.Pop()))
			}
		}, deps...)
	}

	// Merger: replay the routing decisions, popping each shard's next
	// result in arrival order. Every route entry is matched by exactly
	// one eventual result on that shard (workers are 1-in-1-out), so Pop
	// blocks only transiently, never on a permanently empty queue.
	mergerDeps := make([]sched.Dep, 0, n+3)
	mergerDeps = append(mergerDeps, Pop(s.route), Push(s.out), doneDep{s.drained})
	for i := range s.resQ {
		mergerDeps = append(mergerDeps, Pop(s.resQ[i]))
	}
	f.Spawn(func(c *sched.Frame) {
		rt := s.route.BindPop(c)
		out := s.out.BindPush(c)
		poppers := make([]Popper[O], n)
		for i := range poppers {
			poppers[i] = s.resQ[i].BindPop(c)
		}
		for !rt.Empty() {
			sh := rt.Pop()
			out.Push(poppers[sh].Pop())
		}
	}, mergerDeps...)
}

// doneDep closes its channel in Complete — a completion beacon that
// fires whether the task's body ran, unwound, or was skipped by a
// canceled scope. Always Ready, so it does not push the task onto the
// gated-dep Block path.
type doneDep struct{ ch chan struct{} }

func (d doneDep) Prepare(parent, child *sched.Frame)  {}
func (d doneDep) Wait(child *sched.Frame)             {}
func (d doneDep) Ready(child *sched.Frame) bool       { return true }
func (d doneDep) Complete(parent, child *sched.Frame) { close(d.ch) }

// Drained reports without blocking whether the merger has completed.
func (s *Sharded[I, O]) Drained() bool {
	select {
	case <-s.drained:
		return true
	default:
		return false
	}
}

// Drain waits — releasing execution capacity, like any queue wait — until
// the merger task has completed, i.e. every value routed so far has been
// merged into Out (or the pipeline unwound under cancellation/poison),
// and returns nil. It returns ErrTimeout if the deadline d fires first,
// and the cancellation cause if the calling frame's scope is canceled
// while waiting. It is the graceful-teardown rendezvous: push the final
// values, Drain with a deadline, and escalate to Fail (or a scope cancel)
// if the deadline fires. The completed-already fast path takes no lock
// and allocates nothing. Drain may be called from any task of the run
// (concurrently, repeatedly); it does not require privileges on the
// fan-out's queues.
func (s *Sharded[I, O]) Drain(f *sched.Frame, d time.Duration) error {
	if !s.launched {
		panic("swan: Sharded.Drain before Launch")
	}
	select {
	case <-s.drained:
		return nil
	default:
	}
	sc := f.CancelScope()
	var err error
	f.Block(func() {
		cancelCh := make(chan struct{})
		unreg := sc.OnCancel(func() { close(cancelCh) })
		defer unreg()
		tm := time.NewTimer(d)
		defer tm.Stop()
		select {
		case <-s.drained:
		case <-cancelCh:
			err = sc.Err()
		case <-tm.C:
			err = ErrTimeout
		}
	})
	return err
}

// Fail poisons every queue of the fan-out with err (nil means
// ErrQueueFailed): the router, shard workers and merger — wherever
// parked, including credit parks on the bounded per-shard queues — wake
// and unwind, the scope of the run they belong to is canceled with err,
// and Drain callers see the merger complete. It is the hard-teardown
// counterpart of Drain for a fan-out whose consumer is gone.
func (s *Sharded[I, O]) Fail(err error) {
	s.in.Fail(err)
	s.route.Fail(err)
	s.out.Fail(err)
	for i := range s.inQ {
		s.inQ[i].Fail(err)
		s.resQ[i].Fail(err)
	}
}
