package core

import (
	"testing"

	"repro/internal/sched"
)

func TestWriteSliceCommitReadSlice(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 16)
		w := q.WriteSlice(f, 8)
		if len(w) != 8 {
			t.Fatalf("WriteSlice len %d, want 8", len(w))
		}
		for i := range w {
			w[i] = i * 10
		}
		q.CommitWrite(f, 8)
		r := q.ReadSlice(f, 8)
		if len(r) != 8 {
			t.Fatalf("ReadSlice len %d, want 8", len(r))
		}
		for i, v := range r {
			if v != i*10 {
				t.Fatalf("r[%d] = %d, want %d", i, v, i*10)
			}
		}
		q.ConsumeRead(f, 8)
		if q.ReadSlice(f, 1) != nil {
			t.Fatal("ReadSlice after full consume returned data")
		}
	})
}

func TestWriteSliceLargerThanSegment(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		w := q.WriteSlice(f, 100) // forces a segment sized to fit (§5.2)
		if len(w) != 100 {
			t.Fatalf("WriteSlice len %d, want 100", len(w))
		}
		for i := range w {
			w[i] = i
		}
		q.CommitWrite(f, 100)
		for i := 0; i < 100; i++ {
			if got := q.Pop(f); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
	})
}

func TestReadSliceBoundedBySegment(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		for i := 0; i < 10; i++ { // spans three segments
			q.Push(f, i)
		}
		total := 0
		for total < 10 {
			r := q.ReadSlice(f, 100)
			if len(r) == 0 {
				t.Fatalf("ReadSlice empty after %d of 10 values", total)
			}
			if len(r) > 4 {
				t.Fatalf("ReadSlice returned %d values from a 4-slot segment", len(r))
			}
			for i, v := range r {
				if v != total+i {
					t.Fatalf("slice value %d, want %d", v, total+i)
				}
			}
			q.ConsumeRead(f, len(r))
			total += len(r)
		}
	})
}

func TestPartialConsume(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 16)
		for i := 0; i < 6; i++ {
			q.Push(f, i)
		}
		r := q.ReadSlice(f, 4)
		if len(r) != 4 {
			t.Fatalf("ReadSlice len %d", len(r))
		}
		q.ConsumeRead(f, 2) // consume fewer than sliced
		if got := q.Pop(f); got != 2 {
			t.Fatalf("Pop after partial consume = %d, want 2", got)
		}
	})
}

func TestWriteSliceInterleavedWithPush(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 32)
		q.Push(f, 100)
		w := q.WriteSlice(f, 3)
		w[0], w[1], w[2] = 101, 102, 103
		q.CommitWrite(f, 3)
		q.Push(f, 104)
		for want := 100; want <= 104; want++ {
			if got := q.Pop(f); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
		}
	})
}

func TestSlicesAcrossTasks(t *testing.T) {
	var got []int
	run(4, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 64)
		f.Spawn(func(c *sched.Frame) {
			for blk := 0; blk < 10; blk++ {
				w := q.WriteSlice(c, 10)
				for i := range w {
					w[i] = blk*10 + i
				}
				q.CommitWrite(c, 10)
			}
		}, Push(q))
		f.Spawn(func(c *sched.Frame) {
			for !q.Empty(c) {
				r := q.ReadSlice(c, 16)
				got = append(got, r...)
				q.ConsumeRead(c, len(r))
			}
		}, Pop(q))
		f.Sync()
	})
	if len(got) != 100 {
		t.Fatalf("consumed %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; order broken", i, v)
		}
	}
}

func TestConsumeReadPastEndPanics(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := New[int](f)
		q.Push(f, 1)
		defer func() {
			if recover() == nil {
				t.Fatal("ConsumeRead past end did not panic")
			}
		}()
		q.ConsumeRead(f, 5)
	})
}

func TestCommitWritePastEndPanics(t *testing.T) {
	run(1, func(f *sched.Frame) {
		q := NewWithCapacity[int](f, 4)
		q.WriteSlice(f, 2)
		defer func() {
			if recover() == nil {
				t.Fatal("CommitWrite past end did not panic")
			}
		}()
		q.CommitWrite(f, 10)
	})
}

func TestWriteSliceRequiresPushPrivilege(t *testing.T) {
	run(2, func(f *sched.Frame) {
		q := New[int](f)
		f.Spawn(func(c *sched.Frame) {
			defer func() {
				if recover() == nil {
					t.Error("WriteSlice from pop-only task did not panic")
				}
			}()
			q.WriteSlice(c, 4)
		}, Pop(q))
		f.Sync()
	})
}
