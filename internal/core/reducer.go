package core

import (
	"repro/internal/core/hyper"
	"repro/internal/sched"
)

// HyperOption configures a reducer or hypermap at construction.
type HyperOption func(*hyperOpts)

type hyperOpts struct {
	name string
}

// HyperNamed registers the object on the runtime's PoolProvider under
// name, so its merge/view counters appear in RuntimeStats,
// swan.WriteMetrics and paperbench -stats. Objects sharing a name
// aggregate into one row, like metered queues. Unnamed objects are not
// registered — churny callers can create and drop them freely without
// growing the registry.
func HyperNamed(name string) HyperOption {
	return func(o *hyperOpts) { o.name = name }
}

// Monoid is the fold a Reducer performs: an identity value and an
// associative combine.
//
// Combine MUST be exactly associative for the reducer to be
// deterministic: the reducer guarantees that views merge in serial
// program order, but the association shape of the merge tree depends on
// task completion order. Integer sums, list appends, max/min, histogram
// merges and disjoint-slot writes are exact; a floating-point sum is
// associative only approximately, so its low-order bits may vary across
// schedules (the per-sensor slot layout in internal/workloads/streamstats
// shows how to keep floating-point folds exact: give every task its own
// slot and make Combine a disjoint union).
type Monoid[T any] struct {
	// Identity returns the fold's identity value (fresh on each call, so
	// reference types are safe).
	Identity func() T
	// Combine folds from into *into; into precedes from in serial
	// program order.
	Combine func(into *T, from T)
}

// rview is the reducer's view value: a monoid value plus an activation
// bit. ε is the zero value (has == false) — distinct from an activated
// view holding the identity, so merges never invent identity elements.
type rview[T any] struct {
	val T
	has bool
}

// redOps implements hyper.Ops for reducer views.
type redOps[T any] struct{ m *Monoid[T] }

func (o redOps[T]) Valid(v *rview[T]) bool { return v.has }

func (o redOps[T]) Reduce(into, from *rview[T]) {
	if !from.has {
		return
	}
	if !into.has {
		*into = *from
	} else {
		o.m.Combine(&into.val, from.val)
	}
	*from = rview[T]{}
}

// Reducer is a deterministic hyperobject fold (the Cilk++ reducer idea
// on the Swan view algebra): every task spawned with the reducer's
// dependence gets a private view, Add/Update mutate only that view —
// no locks, no contention — and the substrate folds the views in
// serial program order at completion and sync points. After a Sync
// covering every writer, Value returns exactly what a serial execution
// would have computed, for any schedule, policy or worker count
// (provided the monoid's Combine is exactly associative).
type Reducer[T any] struct {
	obj hyper.Obj[rview[T], redOps[T]]
	m   Monoid[T]
}

// NewReducer creates a reducer owned by frame f. The owner holds a view
// and may Add/Update like any writer; it delegates write access by
// spawning children with Reduce(r).
func NewReducer[T any](f *sched.Frame, m Monoid[T], opts ...HyperOption) *Reducer[T] {
	if m.Identity == nil || m.Combine == nil {
		panic("reducer: Monoid needs both Identity and Combine")
	}
	r := &Reducer[T]{m: m}
	var o hyperOpts
	for _, opt := range opts {
		opt(&o)
	}
	r.obj.Init(f, "reducer", o.name, redOps[T]{&r.m})
	if o.name != "" {
		ProviderOf(f.Runtime()).registerHyper(&r.obj)
	}
	return r
}

// Reduce returns the write dependence on r: the spawned task gets a
// private view and may Add/Update. Writers run fully in parallel; the
// merge order, not scheduling, provides determinism.
func Reduce[T any](r *Reducer[T]) sched.Dep { return r.obj.Dep() }

// RedHandle is a bound writer handle on a reducer, resolved once per
// task body by BindReduce. Like queue handles it may only be used by
// the goroutine running the body of the frame it was bound to, and must
// not outlive that body.
type RedHandle[T any] struct {
	vs *hyper.ViewSet[rview[T]]
	m  *Monoid[T]
}

// BindReduce resolves frame f's view on r once and returns the bound
// handle. It panics if f holds no view (spawn the task with Reduce(r)).
func (r *Reducer[T]) BindReduce(f *sched.Frame) RedHandle[T] {
	return RedHandle[T]{vs: r.obj.MustViews(f), m: &r.m}
}

// Add folds v into the task's private view: view = Combine(view, v).
// The first Add after a spawn or sync activates the view with the
// monoid identity. No locks are taken; steady-state Adds allocate
// nothing beyond what Combine itself does.
func (h RedHandle[T]) Add(v T) {
	u := &h.vs.User
	if !u.has {
		u.val = h.m.Identity()
		u.has = true
	}
	h.m.Combine(&u.val, v)
}

// Update applies fn to the task's private view in place — for monoids
// whose natural update is not "combine with a single element" (slot
// writes, histogram bumps). fn must preserve the monoid discipline:
// the final value must equal what per-element Combines would produce.
func (h RedHandle[T]) Update(fn func(*T)) {
	u := &h.vs.User
	if !u.has {
		u.val = h.m.Identity()
		u.has = true
	}
	fn(&u.val)
}

// Value returns the calling task's current view of the fold: its own
// writes plus everything folded in at its past sync points. For the
// owner after a Sync covering every writer this is the complete,
// deterministic fold; the identity when nothing was added. Value does
// not consume the view — further Adds continue the fold.
func (r *Reducer[T]) Value(f *sched.Frame) T {
	vs := r.obj.MustViews(f)
	if !vs.User.has {
		return r.m.Identity()
	}
	return vs.User.val
}

// Stat returns the reducer's metric snapshot.
func (r *Reducer[T]) Stat() hyper.Stat { return r.obj.HyperStat() }
