package core

import (
	"errors"
	"time"

	"repro/internal/sched"
)

// Queue poisoning and deadline/shed variants — the fault-tolerant
// teardown surface. The paper's hyperqueues assume runs that complete;
// a streaming service also needs runs that don't. Three mechanisms
// compose here:
//
//   - Cancellation (internal/sched cancel.go): every park site of the
//     queue — Empty/Pop waits, consumer-role waits, pop-ticket gates,
//     credit parks — checks the frame's cancel scope under the same
//     mutex its waker broadcasts under, so parked tasks of a canceled
//     run wake promptly and unwind with sched.CancelUnwind.
//   - Poisoning (Queue.Fail): a failed queue wakes all parked producers
//     and consumers with the failure and makes subsequent operations
//     unwind with sched.AbortUnwind, which cancels the run's scope with
//     the failure as cause — Run returns it instead of deadlocking.
//   - Deadlines/shedding (TryPush, PushTimeout, PopTimeout): overload
//     decisions as return values instead of unwinds, for callers that
//     want to shed or retry. The non-fired path allocates nothing: the
//     timer is created only if the operation actually parks.
//
// None of these bypass the view algebra: an unwound task still runs its
// completion protocol (deposits, sync folds, ticket advances), so the
// §4.4 invariants and the segment-pool accounting identity hold across
// an abort — the soak fuzzer audits exactly this.

// ErrTimeout is returned by PushTimeout and PopTimeout when the deadline
// fires before the operation can complete.
var ErrTimeout = errors.New("hyperqueue: deadline exceeded")

// ErrEmpty is returned by PopTimeout when the queue is permanently empty
// for the calling task (the condition under which Pop would panic).
var ErrEmpty = errors.New("hyperqueue: queue permanently empty")

// ErrQueueFailed is the default Fail cause when nil is supplied.
var ErrQueueFailed = errors.New("hyperqueue: queue failed")

// failCell is the immutable failure record shared by the queue and its
// flow state; a nil pointer is the (hot-path) healthy state.
type failCell struct{ err error }

// Fail poisons the queue with err (nil means ErrQueueFailed): producers
// parked on credits and consumers parked in Empty/Pop or on tickets wake
// immediately, and subsequent blocking operations unwind with the error
// instead of deadlocking — the error cancels the affected run's scope,
// so Run returns it. The first failure wins; later calls are no-ops.
// Fail does not drop data already in the queue (non-blocking reads still
// drain it) and does not unbalance the view algebra: unwound tasks still
// deposit their views, so pool accounting stays intact. Any goroutine
// may call Fail, with no privileges on the queue.
func (q *Queue[T]) Fail(err error) {
	if err == nil {
		err = ErrQueueFailed
	}
	if !q.failed.CompareAndSwap(nil, &failCell{err: err}) {
		return
	}
	q.lockCons()
	q.cond.Broadcast()
	q.consMu.Unlock()
	if fl := q.flow; fl != nil {
		fl.prodMu.Lock()
		fl.prodCond.Broadcast()
		fl.prodMu.Unlock()
	}
}

// FailErr reports the queue's poison cause, or nil while healthy.
func (q *Queue[T]) FailErr() error { return q.failErr() }

func (q *Queue[T]) failErr() error {
	if fc := q.failed.Load(); fc != nil {
		return fc.err
	}
	return nil
}

// checkFailed unwinds the calling task if the queue has been poisoned.
// One atomic load of a nil pointer on the healthy path.
func (q *Queue[T]) checkFailed() {
	if fc := q.failed.Load(); fc != nil {
		panic(sched.AbortUnwind{Err: fc.err})
	}
}

// broadcastCons is the park-site cancellation waker: scopes invoke it
// (via OnCancel) to flush every sleeper on the consumer cond so they
// re-check their predicates.
func (q *Queue[T]) broadcastCons() {
	q.lockCons()
	q.cond.Broadcast()
	q.consMu.Unlock()
}

// raiseStop converts a park-site stop cause into the matching unwind:
// the queue's own poison aborts, everything else is a cancellation.
func (q *Queue[T]) raiseStop(stop error) {
	if err := q.failErr(); err != nil && err == stop {
		panic(sched.AbortUnwind{Err: stop})
	}
	panic(sched.CancelUnwind{Err: stop})
}

// TryPush appends v if the queue's budget admits it right now and
// reports whether it did; a false return is a shed decision — counted in
// the queue's Sheds meter — and the caller drops or redirects the value.
// On an unbounded queue TryPush always succeeds. It never blocks and
// allocates nothing on either path.
func (p *Pusher[T]) TryPush(v T) bool {
	q := p.q
	q.checkFailed()
	if fl := q.flow; fl != nil {
		if !fl.tryAcquire() {
			fl.sheds.Add(1)
			return false
		}
	}
	p.append1(v)
	return true
}

// PushTimeout appends v, waiting at most d for budget. It returns nil on
// success; ErrTimeout — counted as a shed — when the deadline fires
// first; the queue's poison cause after a Fail; or the scope's
// cancellation cause. The fast path (credits available) is identical to
// Push and allocates nothing; the deadline timer exists only while the
// producer is actually parked.
func (p *Pusher[T]) PushTimeout(v T, d time.Duration) error {
	q := p.q
	if err := q.failErr(); err != nil {
		return err
	}
	if fl := q.flow; fl != nil && fl.bound > 0 {
		if !fl.tryAcquire() {
			err := fl.takeCreditTimeout(p.qv.vs.Frame, time.Now().Add(d))
			if err != nil {
				if err == ErrTimeout {
					fl.sheds.Add(1)
				}
				return err
			}
		}
	} else if fl != nil {
		fl.acquire(p.qv.vs.Frame, 1)
	}
	p.append1(v)
	return nil
}

// PopTimeout removes and returns the head value, waiting at most d for
// one to be produced. It returns ErrTimeout when the deadline fires
// while the answer is still undecided, ErrEmpty on permanent emptiness
// (where Pop would panic), the queue's poison cause after a Fail, or the
// scope's cancellation cause — as return values, not unwinds, so a
// draining loop can decide for itself when to stop. The fast path (data
// reachable) is identical to Pop and allocates nothing.
func (p *Popper[T]) PopTimeout(d time.Duration) (T, error) {
	var zero T
	q := p.q
	if err := q.failErr(); err != nil {
		return zero, err
	}
	f := p.qv.vs.Frame
	if sc := f.CancelScope(); sc.Canceled() {
		return zero, sc.Err()
	}
	p.ensure()
	if !q.reachableData() {
		empty, stop := q.emptyWaitStop(f, p.qv, time.Now().Add(d))
		if stop != nil {
			return zero, stop
		}
		if empty {
			return zero, ErrEmpty
		}
	}
	v := q.headView.Head.pop()
	if fl := q.flow; fl != nil {
		fl.release(1)
	}
	return v, nil
}

// failedErr is the flow-side view of the owning queue's poison cell,
// checked by the credit-park predicates.
func (fl *flowState) failedErr() error {
	if fl.failedp == nil {
		return nil
	}
	if fc := fl.failedp.Load(); fc != nil {
		return fc.err
	}
	return nil
}

// tryAcquire takes one credit without blocking and meters the push;
// false means the budget is exhausted right now (the shed decision).
func (fl *flowState) tryAcquire() bool {
	if fl.bound > 0 {
		for {
			cur := fl.credits.Load()
			if cur <= 0 {
				return false
			}
			if fl.credits.CompareAndSwap(cur, cur-1) {
				break
			}
		}
	}
	fl.meterPush(1)
	return true
}

// takeCreditTimeout is takeCredits for exactly one credit with an
// absolute deadline: it parks like waitForCredit but additionally wakes
// when the deadline fires, and reports the stop cause instead of
// unwinding. The timer is allocated per park, never on the spin path.
func (fl *flowState) takeCreditTimeout(f *sched.Frame, deadline time.Time) error {
	sc := f.CancelScope()
	for {
		cur := fl.credits.Load()
		if cur > 0 {
			if fl.credits.CompareAndSwap(cur, cur-1) {
				fl.meterPush(1)
				return nil
			}
			continue
		}
		if err := fl.failedErr(); err != nil {
			return err
		}
		if sc.Canceled() {
			return sc.Err()
		}
		if !time.Now().Before(deadline) {
			return ErrTimeout
		}
		fl.prodBlocks.Add(1)
		var fired bool
		f.Block(func() {
			unreg := sc.OnCancel(fl.broadcastProd)
			defer unreg()
			tm := time.AfterFunc(time.Until(deadline), func() {
				fl.prodMu.Lock()
				fired = true
				fl.prodCond.Broadcast()
				fl.prodMu.Unlock()
			})
			defer tm.Stop()
			fl.prodMu.Lock()
			fl.pushWaiters.Add(1)
			fl.prodSleepers++
			for fl.credits.Load() <= 0 && !fired && fl.failedErr() == nil && !sc.Canceled() {
				fl.prodCond.Wait()
			}
			fl.prodSleepers--
			fl.pushWaiters.Add(-1)
			fl.prodMu.Unlock()
		})
	}
}

// broadcastProd is the producer-side cancellation waker.
func (fl *flowState) broadcastProd() {
	fl.prodMu.Lock()
	fl.prodCond.Broadcast()
	fl.prodMu.Unlock()
}
