package core

import (
	"sync"

	"repro/internal/core/hyper"
	"repro/internal/sched"
)

// hview is the hypermap's view value: a keyed index private to one
// task. ε is the zero value (nil map).
type hview[K comparable, V any] struct {
	m map[K]V
}

// hmOps implements hyper.Ops for hypermap views: first-writer-wins
// merge in serial program order. Reduce keeps every entry of *into (the
// earlier view) and adopts entries of *from only for keys into does not
// have, so the merged map holds, for every key, the value written by
// the serially-first Put — deterministically, whatever order the views
// physically merge in (per-key insert-if-absent is idempotent, so map
// iteration order does not matter).
type hmOps[K comparable, V any] struct{}

func (hmOps[K, V]) Valid(v *hview[K, V]) bool { return v.m != nil }

func (hmOps[K, V]) Reduce(into, from *hview[K, V]) {
	if from.m == nil {
		return
	}
	if into.m == nil {
		into.m = from.m // pointer steal: the common "one writer" case is O(1)
		from.m = nil
		return
	}
	for k, v := range from.m {
		if _, ok := into.m[k]; !ok {
			into.m[k] = v
		}
	}
	from.m = nil
}

// Hypermap is a deterministic first-writer-wins keyed index on the view
// algebra: every task spawned with the map's dependence gets a private
// view, Put inserts into that view without locks, and the substrate
// merges views in serial program order — the serially-first writer of a
// key wins, for any schedule, policy or worker count.
//
// Alongside the deterministic views the map keeps a shared *advisory
// claims* index (a sync.Map), letting Put answer "was this key already
// put by a task that definitely precedes me?" without waiting for a
// sync. The answer is conservative: true only when the program-order
// labels prove the other writer's whole body precedes the caller in the
// serial elision, so a true is sound whatever the physical schedule
// was, while a false may simply mean the earlier writer has not been
// observed yet. Use it to skip work that only a duplicate would waste
// (dedup skips compressing chunks it can prove are duplicates); never
// branch program *output* on it — output must come from the merged
// views or from a single serial reader (PutIfAbsent).
type Hypermap[K comparable, V any] struct {
	obj    hyper.Obj[hview[K, V], hmOps[K, V]]
	claims sync.Map // K -> *hyperclaim
}

type hyperclaim struct {
	frame *sched.Frame
}

// NewHypermap creates a hypermap owned by frame f. The owner holds a
// view and delegates write access by spawning children with MapWrite.
func NewHypermap[K comparable, V any](f *sched.Frame, opts ...HyperOption) *Hypermap[K, V] {
	m := &Hypermap[K, V]{}
	var o hyperOpts
	for _, opt := range opts {
		opt(&o)
	}
	m.obj.Init(f, "hypermap", o.name, hmOps[K, V]{})
	if o.name != "" {
		ProviderOf(f.Runtime()).registerHyper(&m.obj)
	}
	return m
}

// MapWrite returns the write dependence on m: the spawned task gets a
// private view and may Put/Get/PutIfAbsent through a bound handle.
// Writers run fully in parallel.
func MapWrite[K comparable, V any](m *Hypermap[K, V]) sched.Dep { return m.obj.Dep() }

// MapHandle is a bound handle on a hypermap, resolved once per task
// body by BindMap. Like queue handles it may only be used by the
// goroutine running the body of the frame it was bound to, and must not
// outlive that body.
type MapHandle[K comparable, V any] struct {
	vs *hyper.ViewSet[hview[K, V]]
	hm *Hypermap[K, V]
}

// BindMap resolves frame f's view on m once and returns the bound
// handle. It panics if f holds no view (spawn the task with MapWrite).
func (m *Hypermap[K, V]) BindMap(f *sched.Frame) MapHandle[K, V] {
	return MapHandle[K, V]{vs: m.obj.MustViews(f), hm: m}
}

// Put records k → v in the task's private view if the view does not
// hold k yet (within a view the first Put wins, matching the serial
// first-writer-wins discipline), and reports whether k is a *provable
// duplicate*: already in the private view, or claimed by a writer whose
// whole task body precedes this one in the serial elision. The report
// is sound but conservative — false can mean "first writer" or "an
// earlier writer exists that cannot be proven earlier yet" — so use it
// only to skip duplicate-only work, never to decide program output.
func (h MapHandle[K, V]) Put(k K, v V) (dup bool) {
	u := &h.vs.User
	if u.m == nil {
		u.m = make(map[K]V)
	} else if _, ok := u.m[k]; ok {
		return true
	}
	u.m[k] = v
	f := h.vs.Frame
	got, loaded := h.hm.claims.LoadOrStore(k, &hyperclaim{frame: f})
	if !loaded {
		return false
	}
	cl := got.(*hyperclaim).frame
	// The claim proves an earlier occurrence iff the claimant's whole
	// body precedes f in the serial elision: f's own earlier put (the
	// private view lost it to a spawn hand-off), a descendant spawned
	// before this point, or a non-ancestor task ordered before f. An
	// *ancestor's* claim proves nothing — the ancestor may have put the
	// key after spawning f, which in the serial elision runs after f's
	// entire body (the same label logic as the queue's
	// visibleProducerLive).
	if cl == f || f.IsAncestorOf(cl) || (cl.Before(f) && !cl.IsAncestorOf(f)) {
		return true
	}
	// Improve the claim for future probes when f is provably earlier
	// than the current claimant. Best-effort: claims are advisory, and
	// losing this race only costs precision, never soundness.
	if f.Before(cl) {
		h.hm.claims.CompareAndSwap(k, got, &hyperclaim{frame: f})
	}
	return false
}

// Get reports the value the task's private view holds for k. It sees
// the task's own Puts plus everything inherited through spawn hand-off
// and past syncs — a deterministic prefix of the serial execution — and
// deliberately not the advisory claims of concurrent writers.
func (h MapHandle[K, V]) Get(k K) (V, bool) {
	v, ok := h.vs.User.m[k]
	return v, ok
}

// PutIfAbsent inserts k → v into the private view if absent and returns
// the value the view maps k to afterwards, with loaded reporting
// whether the key was already present. Unlike Put it never consults the
// shared claims index, so its answer is fully deterministic; a single
// serial reader task (a pipeline's output stage) can use it to intern
// keys in stream order — dedup assigns its chunk ids this way.
func (h MapHandle[K, V]) PutIfAbsent(k K, v V) (V, bool) {
	u := &h.vs.User
	if u.m == nil {
		u.m = make(map[K]V)
	}
	if old, ok := u.m[k]; ok {
		return old, true
	}
	u.m[k] = v
	return v, false
}

// Get reports the value frame f's view holds for k — for the owner
// after a Sync covering every writer, the deterministic first-writer
// value.
func (m *Hypermap[K, V]) Get(f *sched.Frame, k K) (V, bool) {
	vs := m.obj.MustViews(f)
	v, ok := vs.User.m[k]
	return v, ok
}

// Len reports how many keys frame f's view holds.
func (m *Hypermap[K, V]) Len(f *sched.Frame) int {
	return len(m.obj.MustViews(f).User.m)
}

// Stat returns the hypermap's metric snapshot.
func (m *Hypermap[K, V]) Stat() hyper.Stat { return m.obj.HyperStat() }
