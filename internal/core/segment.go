package core

import "sync/atomic"

// segment is one fixed-size queue segment (§3.2): a single-producer,
// single-consumer circular buffer (Lamport, TOPLAS 1983) with a link to
// the next segment in the hyperqueue's chain.
//
// Ownership discipline:
//   - tail (and the slots it guards) are written only by the one producer
//     task currently holding a local tail pointer to the segment
//     (invariant 5: at most one view's tail pointer).
//   - head is written only by the one consumer task holding the queue
//     view (invariant 2: exactly one queue view with a local head).
//   - next is written once, by the producer that abandons the segment
//     (push into a full segment) or by a reduction linking two chains;
//     both cases are serialized by the queue's structural mutex or by
//     tail ownership.
//
// A producer and a consumer sharing one segment reuse it as a ring,
// giving the paper's zero-allocation steady state.
type segment[T any] struct {
	buf  []T
	head atomic.Int64 // next index to pop (mod len(buf))
	tail atomic.Int64 // next index to push (mod len(buf))
	next atomic.Pointer[segment[T]]
}

func newSegment[T any](capacity int) *segment[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &segment[T]{buf: make([]T, capacity)}
}

// NextSeg and SetNextSeg implement hyper.Chain, letting the generic
// pairing discipline (hyper.View, hyper.PairOps) link segment chains
// without knowing the segment type.

func (s *segment[T]) NextSeg() *segment[T] { return s.next.Load() }

func (s *segment[T]) SetNextSeg(n *segment[T]) { s.next.Store(n) }

// reset returns a drained segment to its freshly-allocated state so the
// pool can hand it to a new producer. The caller must own the segment
// exclusively. The buffer needs no clearing: pop and ConsumeRead zero
// each slot as they drain it.
func (s *segment[T]) reset() {
	s.head.Store(0)
	s.tail.Store(0)
	s.next.Store(nil)
}

// size reports the number of values currently stored.
func (s *segment[T]) size() int64 { return s.tail.Load() - s.head.Load() }

// full reports whether a push would not fit.
func (s *segment[T]) full() bool { return s.size() >= int64(len(s.buf)) }

// push appends v. The caller must be the owning producer and must have
// checked !full(); push on a full segment panics.
func (s *segment[T]) push(v T) {
	t := s.tail.Load()
	if t-s.head.Load() >= int64(len(s.buf)) {
		panic("hyperqueue: push on full segment")
	}
	s.buf[t%int64(len(s.buf))] = v
	s.tail.Store(t + 1) // release: publishes buf[t] to the consumer
}

// pop removes and returns the oldest value. The caller must be the owning
// consumer and must have checked size() > 0.
func (s *segment[T]) pop() T {
	h := s.head.Load()
	if s.tail.Load()-h <= 0 {
		panic("hyperqueue: pop on empty segment")
	}
	i := h % int64(len(s.buf))
	v := s.buf[i]
	var zero T
	s.buf[i] = zero // drop the reference for the garbage collector
	s.head.Store(h + 1)
	return v
}

// peek returns the oldest value without removing it.
func (s *segment[T]) peek() T {
	h := s.head.Load()
	if s.tail.Load()-h <= 0 {
		panic("hyperqueue: peek on empty segment")
	}
	return s.buf[h%int64(len(s.buf))]
}

// contiguousReadable returns the index of the oldest value and how many
// values can be read from buf without wrapping. Used by read slices
// (§5.2).
func (s *segment[T]) contiguousReadable() (start, n int64) {
	h := s.head.Load()
	avail := s.tail.Load() - h
	i := h % int64(len(s.buf))
	span := int64(len(s.buf)) - i
	if avail < span {
		span = avail
	}
	return i, span
}

// contiguousWritable returns the index of the next free slot and how many
// values can be written without wrapping. Used by write slices (§5.2).
func (s *segment[T]) contiguousWritable() (start, n int64) {
	t := s.tail.Load()
	free := int64(len(s.buf)) - (t - s.head.Load())
	i := t % int64(len(s.buf))
	span := int64(len(s.buf)) - i
	if free < span {
		span = free
	}
	return i, span
}
