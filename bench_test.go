// Root benchmark suite: one benchmark per paper table/figure plus the
// ablations called out in DESIGN.md. These run each configuration as a
// testing.B benchmark for statistical use; cmd/paperbench runs the full
// sweeps and prints the paper-shaped tables.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/deque"
	"repro/internal/sched"
	"repro/internal/workloads/bzip2"
	"repro/internal/workloads/dedup"
	"repro/internal/workloads/ferret"
	"repro/swan"
)

// benchCores is the reduced core set used by benchmarks (the full sweep
// lives in cmd/paperbench).
func benchCores() []int {
	n := runtime.NumCPU()
	set := []int{1}
	if n >= 8 {
		set = append(set, 8)
	}
	if n > 1 {
		set = append(set, n)
	}
	return set
}

// --- Table 1 ------------------------------------------------------------

func BenchmarkTable1FerretStages(b *testing.B) {
	p := ferret.DefaultParams()
	p.NumImages = 64
	corpus := ferret.NewCorpus(p)
	b.ResetTimer()
	var rows []ferret.StageTime
	for i := 0; i < b.N; i++ {
		rows = ferret.CharacterizeStages(corpus, p)
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Percent, r.Name+"_%")
	}
}

// --- Table 2 ------------------------------------------------------------

func BenchmarkTable2DedupStages(b *testing.B) {
	data := dedup.GenerateInput(42, 4*1024*1024, 0.5)
	o := dedup.DefaultOptions()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var rows []dedup.StageTime
	for i := 0; i < b.N; i++ {
		rows = dedup.CharacterizeStages(data, o)
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Percent, r.Name+"_%")
	}
}

// --- Figure 8 -----------------------------------------------------------

func BenchmarkFig8Ferret(b *testing.B) {
	p := ferret.DefaultParams()
	corpus := ferret.NewCorpus(p)
	models := map[string]func(cores int){
		"Pthreads":   func(c int) { ferret.RunPthreads(corpus, p, c+4, 4*c) },
		"TBB":        func(c int) { ferret.RunTBB(corpus, p, c, 4*c) },
		"Objects":    func(c int) { ferret.RunObjects(swan.New(c), corpus, p) },
		"Hyperqueue": func(c int) { ferret.RunHyperqueue(swan.New(c), corpus, p, 16) },
	}
	for _, name := range []string{"Pthreads", "TBB", "Objects", "Hyperqueue"} {
		for _, cores := range benchCores() {
			b.Run(fmt.Sprintf("model=%s/cores=%d", name, cores), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(cores)
				defer runtime.GOMAXPROCS(prev)
				for i := 0; i < b.N; i++ {
					models[name](cores)
				}
			})
		}
	}
}

// --- Figure 11 ----------------------------------------------------------

func BenchmarkFig11Dedup(b *testing.B) {
	data := dedup.GenerateInput(42, 4*1024*1024, 0.5)
	o := dedup.DefaultOptions()
	models := map[string]func(cores int){
		"Pthreads":   func(c int) { dedup.RunPthreads(data, o, c+4, 4*c) },
		"TBB":        func(c int) { dedup.RunTBB(data, o, c, 4*c) },
		"Objects":    func(c int) { dedup.RunObjects(swan.New(c), data, o) },
		"Hyperqueue": func(c int) { dedup.RunHyperqueue(swan.New(c), data, o, 64) },
	}
	for _, name := range []string{"Pthreads", "TBB", "Objects", "Hyperqueue"} {
		for _, cores := range benchCores() {
			b.Run(fmt.Sprintf("model=%s/cores=%d", name, cores), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(cores)
				defer runtime.GOMAXPROCS(prev)
				b.SetBytes(int64(len(data)))
				for i := 0; i < b.N; i++ {
					models[name](cores)
				}
			})
		}
	}
}

// --- §6.3 bzip2 ---------------------------------------------------------

func BenchmarkBzip2(b *testing.B) {
	data := bzip2.GenerateInput(7, 1024*1024)
	const blockSize = 64 * 1024
	models := map[string]func(cores int){
		"Objects":    func(c int) { bzip2.RunObjects(swan.New(c), data, blockSize) },
		"Hyperqueue": func(c int) { bzip2.RunHyperqueue(swan.New(c), data, blockSize, 8) },
		"LoopSplit":  func(c int) { bzip2.RunHyperqueueLoopSplit(swan.New(c), data, blockSize, 8, 8) },
	}
	for _, name := range []string{"Objects", "Hyperqueue", "LoopSplit"} {
		for _, cores := range benchCores() {
			b.Run(fmt.Sprintf("model=%s/cores=%d", name, cores), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(cores)
				defer runtime.GOMAXPROCS(prev)
				b.SetBytes(int64(len(data)))
				for i := 0; i < b.N; i++ {
					models[name](cores)
				}
			})
		}
	}
}

// --- Ablation: queue segment length (§5.1) -------------------------------

func BenchmarkAblationSegmentSize(b *testing.B) {
	for _, segCap := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("segcap=%d", segCap), func(b *testing.B) {
			rt := sched.New(2)
			rt.Run(func(f *sched.Frame) {
				q := core.NewWithCapacity[int](f, segCap)
				b.ResetTimer()
				f.Spawn(func(c *sched.Frame) {
					for i := 0; i < b.N; i++ {
						q.Push(c, i)
					}
				}, core.Push(q))
				f.Spawn(func(c *sched.Frame) {
					for i := 0; i < b.N; i++ {
						q.Pop(c)
					}
				}, core.Pop(q))
				f.Sync()
			})
		})
	}
}

// --- Ablation: hyperqueue vs Go channel as SPSC transport ----------------

// The hyperqueue side runs on bound handles (BindPush/BindPop): the
// privilege resolution is paid once per task body, the way a channel is
// "bound" by closure capture, and each element is one Push/Pop — the
// per-element regime the channel side measures.
func BenchmarkAblationQueueVsChannel(b *testing.B) {
	b.Run("hyperqueue", func(b *testing.B) {
		rt := sched.New(2)
		rt.Run(func(f *sched.Frame) {
			q := core.NewWithCapacity[int](f, 256)
			b.ResetTimer()
			f.Spawn(func(c *sched.Frame) {
				pw := q.BindPush(c)
				for i := 0; i < b.N; i++ {
					pw.Push(i)
				}
			}, core.Push(q))
			f.Spawn(func(c *sched.Frame) {
				pp := q.BindPop(c)
				for i := 0; i < b.N; i++ {
					pp.Pop()
				}
			}, core.Pop(q))
			f.Sync()
		})
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 256)
		done := make(chan struct{})
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				ch <- i
			}
			close(ch)
		}()
		go func() {
			for range ch {
			}
			close(done)
		}()
		<-done
	})
}

// --- Ablation: bound handles vs unbound per-element access ---------------

// BenchmarkBoundVsUnbound isolates what PR 5's binding buys on the same
// 1P/1C ring: mode=unbound re-resolves privileges per element
// (Queue.Push/Queue.Pop), mode=bound resolves them once per task body
// (BindPush/BindPop), and mode=bulk moves batch-sized slices per call
// (PushSlice/PopInto — one wake-up probe and one reachability probe per
// call instead of per element). ns/op is per element in all three
// modes; CI gates allocs/op == 0 on the bound path.
func BenchmarkBoundVsUnbound(b *testing.B) {
	const bulk = 64
	run := func(b *testing.B, producer, consumer func(c *sched.Frame, q *core.Queue[int], n int)) {
		b.ReportAllocs()
		rt := sched.New(2)
		rt.Run(func(f *sched.Frame) {
			q := core.NewWithCapacity[int](f, 256)
			b.ResetTimer()
			f.Spawn(func(c *sched.Frame) { producer(c, q, b.N) }, core.Push(q))
			f.Spawn(func(c *sched.Frame) { consumer(c, q, b.N) }, core.Pop(q))
			f.Sync()
		})
	}
	b.Run("mode=unbound", func(b *testing.B) {
		run(b,
			func(c *sched.Frame, q *core.Queue[int], n int) {
				for i := 0; i < n; i++ {
					q.Push(c, i)
				}
			},
			func(c *sched.Frame, q *core.Queue[int], n int) {
				for i := 0; i < n; i++ {
					q.Pop(c)
				}
			})
	})
	b.Run("mode=bound", func(b *testing.B) {
		run(b,
			func(c *sched.Frame, q *core.Queue[int], n int) {
				pw := q.BindPush(c)
				for i := 0; i < n; i++ {
					pw.Push(i)
				}
			},
			func(c *sched.Frame, q *core.Queue[int], n int) {
				pp := q.BindPop(c)
				for i := 0; i < n; i++ {
					pp.Pop()
				}
			})
	})
	b.Run("mode=bulk", func(b *testing.B) {
		run(b,
			func(c *sched.Frame, q *core.Queue[int], n int) {
				pw := q.BindPush(c)
				buf := make([]int, bulk)
				for i := 0; i < n; i += len(buf) {
					k := len(buf)
					if n-i < k {
						k = n - i
					}
					pw.PushSlice(buf[:k])
				}
			},
			func(c *sched.Frame, q *core.Queue[int], n int) {
				pp := q.BindPop(c)
				buf := make([]int, bulk)
				for got := 0; got < n; {
					k := pp.PopInto(buf)
					if k == 0 {
						if pp.Empty() {
							break
						}
						continue
					}
					got += k
				}
			})
	})
}

// --- Ablation: Chase–Lev deque vs channel as dispatch substrate ----------

func BenchmarkAblationDequeOwner(b *testing.B) {
	d := deque.New[int](1024)
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkAblationDequeVsChannelDispatch(b *testing.B) {
	b.Run("deque-steal", func(b *testing.B) {
		d := deque.New[int](1024)
		for i := 0; i < 512; i++ {
			d.Push(i)
		}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, ok := d.Steal(); !ok {
					d.Push(1) // keep the deque warm
				}
			}
		})
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 1024)
		for i := 0; i < 512; i++ {
			ch <- i
		}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				select {
				case <-ch:
				default:
					ch <- 1
				}
			}
		})
	})
}

// --- Ablation: work-stealing scheduler vs goroutine-per-task baseline ----

// runPipelineSpawnTree is the Figure 2 shape: a recursively parallel
// producer tree feeding one consumer through a hyperqueue. It exercises
// both dispatch (deque pushes, steals) and the blocking protocol (Sync,
// pop waits).
func runPipelineSpawnTree(rt *sched.Runtime, items int) {
	rt.Run(func(f *sched.Frame) {
		q := core.NewWithCapacity[int](f, 256)
		f.Spawn(func(c *sched.Frame) {
			var produce func(c *sched.Frame, lo, hi int)
			produce = func(c *sched.Frame, lo, hi int) {
				if hi-lo <= 64 {
					for n := lo; n < hi; n++ {
						q.Push(c, n)
					}
					return
				}
				mid := (lo + hi) / 2
				c.Spawn(func(g *sched.Frame) { produce(g, lo, mid) }, core.Push(q))
				c.Spawn(func(g *sched.Frame) { produce(g, mid, hi) }, core.Push(q))
			}
			produce(c, 0, items)
		}, core.Push(q))
		f.Spawn(func(c *sched.Frame) {
			sum := 0
			for !q.Empty(c) {
				sum += q.Pop(c)
			}
			_ = sum
		}, core.Pop(q))
		f.Sync()
	})
}

// runSpawnTree is a pure dep-free spawn tree: the maximal-stealing shape.
func runSpawnTree(rt *sched.Runtime, depth int) {
	var rec func(f *sched.Frame, d int)
	rec = func(f *sched.Frame, d int) {
		if d == 0 {
			return
		}
		f.Spawn(func(c *sched.Frame) { rec(c, d-1) })
		f.Spawn(func(c *sched.Frame) { rec(c, d-1) })
		f.Sync()
	}
	rt.Run(func(f *sched.Frame) { rec(f, depth) })
}

// BenchmarkAblationSchedulerSubstrate is the ablation promised by
// internal/deque: the Chase–Lev work-stealing runtime (PolicySteal)
// against the seed's goroutine-per-task slot-semaphore baseline
// (PolicyGoroutine), on a hyperqueue pipeline and on a pure spawn tree.
// For the stealing runtime it also reports observed steals per op.
func BenchmarkAblationSchedulerSubstrate(b *testing.B) {
	shapes := []struct {
		name string
		run  func(rt *sched.Runtime)
	}{
		{"pipeline", func(rt *sched.Runtime) { runPipelineSpawnTree(rt, 1<<13) }},
		{"spawntree", func(rt *sched.Runtime) { runSpawnTree(rt, 9) }},
	}
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2 // keep thieves in play even on one-core machines
	}
	for _, policy := range []sched.SpawnPolicy{sched.PolicySteal, sched.PolicyGoroutine} {
		for _, shape := range shapes {
			b.Run(fmt.Sprintf("sched=%s/shape=%s", policy, shape.name), func(b *testing.B) {
				rt := sched.NewWithPolicy(workers, policy)
				before := rt.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					shape.run(rt)
				}
				b.StopTimer()
				if policy == sched.PolicySteal {
					after := rt.Stats()
					b.ReportMetric(float64(after.Steals-before.Steals)/float64(b.N), "steals/op")
					b.ReportMetric(float64(after.Spawns-before.Spawns)/float64(b.N), "spawns/op")
				}
			})
		}
	}
}

// --- Ablation: §5.4 loop split bounds serial memory ----------------------

func BenchmarkAblationLoopSplit(b *testing.B) {
	data := bzip2.GenerateInput(7, 512*1024)
	const blockSize = 16 * 1024
	b.Run("monolithic-serial", func(b *testing.B) {
		b.ReportAllocs()
		rt := swan.New(1)
		for i := 0; i < b.N; i++ {
			bzip2.RunHyperqueue(rt, data, blockSize, 8)
		}
	})
	b.Run("loopsplit-serial", func(b *testing.B) {
		b.ReportAllocs()
		rt := swan.New(1)
		for i := 0; i < b.N; i++ {
			bzip2.RunHyperqueueLoopSplit(rt, data, blockSize, 8, 4)
		}
	})
}

// --- Zero-allocation steady state (§3.2) ---------------------------------

// BenchmarkSteadyStateAllocs measures the long-running one-producer /
// one-consumer ring: with pooled segments every push, pop, overflow link
// and drain-past recycle must run allocation-free, so allocs/op converges
// to 0 (the constant setup — runtime, queue, two task frames — amortizes
// over b.N values).
func BenchmarkSteadyStateAllocs(b *testing.B) {
	b.ReportAllocs()
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		q := core.NewWithCapacity[int](f, 256)
		b.ResetTimer()
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < b.N; i++ {
				q.Push(c, i)
			}
		}, core.Push(q))
		f.Spawn(func(c *sched.Frame) {
			for i := 0; i < b.N; i++ {
				q.Pop(c)
			}
		}, core.Pop(q))
		f.Sync()
		b.StopTimer()
	})
}

// --- Queue churn: runtime-wide pool + queue recycling --------------------

// BenchmarkQueueChurn measures the queue *lifecycle* cost dedup's
// per-coarse-chunk pipelines pay: each op runs one
// create→use→drain→recycle cycle (three segments' worth of values, so
// every cycle exercises overflow links and drain-past recycling).
// mode=fresh is the pre-recycling dedup shape: a long-lived owner frame
// constructs a new queue per cycle and abandons it — which does not make
// it garbage, because the owner retains the frame attachment and sync
// hook of every queue it ever created, and each abandoned queue strands
// its final open-tail segment (so the shared pool drains by one segment
// per cycle and steady state re-pays one segment allocation per op on
// top of the queue structure). mode=recycle reuses one queue via
// Queue.Recycle and must converge to 0 allocs/op; CI gates on both
// (recycle at zero, fresh against the committed BENCH_pr4.json
// baseline).
func BenchmarkQueueChurn(b *testing.B) {
	const segCap, values = 64, 3 * 64
	cycle := func(f *sched.Frame, q *core.Queue[int]) {
		for i := 0; i < values; i++ {
			q.Push(f, i)
		}
		for !q.Empty(f) {
			q.Pop(f)
		}
	}
	b.Run("mode=fresh", func(b *testing.B) {
		b.ReportAllocs()
		rt := sched.New(2)
		rt.Run(func(f *sched.Frame) {
			cycle(f, core.NewWithCapacity[int](f, segCap)) // warm the pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle(f, core.NewWithCapacity[int](f, segCap))
			}
			b.StopTimer()
		})
	})
	b.Run("mode=recycle", func(b *testing.B) {
		b.ReportAllocs()
		rt := sched.New(2)
		rt.Run(func(f *sched.Frame) {
			q := core.NewWithCapacity[int](f, segCap)
			cycle(f, q) // warm the pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Recycle(f)
				cycle(f, q)
			}
			b.StopTimer()
		})
	})
}

// --- Ablation: sharded queue locks vs legacy single mutex ----------------

// BenchmarkPrepareCompleteContention measures the structural hot path the
// lock split targets: a stream of short-lived sibling producer tasks
// (Prepare/Complete churn on the registry lock) feeding a concurrently
// popping consumer (wake-ups on every push). "sharded" is the production
// queue — push wake-ups are an atomic load, Prepare/Complete take only
// the registry lock; "legacy" routes everything through one mutex, the
// way the queue was locked before this split.
func BenchmarkPrepareCompleteContention(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	const perTask = 16
	for _, mode := range []string{"sharded", "legacy"} {
		b.Run("lock="+mode, func(b *testing.B) {
			rt := sched.New(workers)
			rt.Run(func(f *sched.Frame) {
				var q *core.Queue[int]
				if mode == "legacy" {
					q = core.NewLegacyLocked[int](f, 64)
				} else {
					q = core.NewWithCapacity[int](f, 64)
				}
				b.ResetTimer()
				// The producer side is spawned before the consumer so the
				// consumer observes it in the serial elision: Empty blocks
				// (and the push wake-up path fires) until every producer
				// task ordered before it has retired.
				f.Spawn(func(spawner *sched.Frame) {
					tasks := b.N/perTask + 1
					for i := 0; i < tasks; i++ {
						spawner.Spawn(func(c *sched.Frame) {
							for j := 0; j < perTask; j++ {
								q.Push(c, j)
							}
						}, core.Push(q))
					}
				}, core.Push(q))
				f.Spawn(func(c *sched.Frame) {
					for !q.Empty(c) {
						q.Pop(c)
					}
				}, core.Pop(q))
				f.Sync()
				b.StopTimer()
			})
		})
	}
}

// --- Ablation: batched vs one-at-a-time loop-split spawn -----------------

// BenchmarkBatchedSpawn compares publishing a wave of k tasks with
// SpawnN (one deque tail store, one wake sweep) against k consecutive
// Spawn calls, on the dep-free fan-out shape. Op = one spawned task.
func BenchmarkBatchedSpawn(b *testing.B) {
	const wave = 16
	for _, mode := range []string{"spawn-loop", "spawn-n"} {
		b.Run("mode="+mode, func(b *testing.B) {
			rt := sched.New(runtime.NumCPU())
			rt.Run(func(f *sched.Frame) {
				b.ResetTimer()
				waves := b.N/wave + 1
				for w := 0; w < waves; w++ {
					if mode == "spawn-n" {
						f.SpawnN(wave, func(*sched.Frame, int) {})
					} else {
						for i := 0; i < wave; i++ {
							f.Spawn(func(*sched.Frame) {})
						}
					}
					f.Sync()
				}
				b.StopTimer()
			})
		})
	}
}

// --- Runtime microbenchmarks ---------------------------------------------

func BenchmarkSpawnSyncOverhead(b *testing.B) {
	rt := sched.New(runtime.NumCPU())
	rt.Run(func(f *sched.Frame) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Spawn(func(*sched.Frame) {})
			if i%256 == 255 {
				f.Sync()
			}
		}
		f.Sync()
	})
}

func BenchmarkVersionedInOutChain(b *testing.B) {
	rt := sched.New(runtime.NumCPU())
	rt.Run(func(f *sched.Frame) {
		v := swan.NewVersioned(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Spawn(func(c *sched.Frame) { v.Set(c, v.Get(c)+1) }, swan.InOut(v))
			if i%256 == 255 {
				f.Sync()
			}
		}
		f.Sync()
	})
}

// --- Sanity: harness self-check ------------------------------------------

func BenchmarkHarnessMeasure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Measure(1, 1, func() {})
	}
}

// BenchmarkBoundedVsUnbounded prices PR 6's flow control on the same
// 1P/1C bound-handle ring as BenchmarkBoundVsUnbound: mode=unbounded is
// the plain queue (the nil flow-state check is the only addition to the
// PR 5 hot path), mode=bounded runs under an ample budget (credits
// always remain — the credit accounting is two atomics per element and
// the path must stay allocation-free, which CI gates), and mode=tight
// runs under real backpressure (bound 64, producers park and wake).
// ns/op is per element in all three modes.
func BenchmarkBoundedVsUnbounded(b *testing.B) {
	run := func(b *testing.B, opts ...core.QueueOption) {
		b.ReportAllocs()
		rt := sched.New(2)
		rt.Run(func(f *sched.Frame) {
			q := core.NewWithCapacity[int](f, 256, opts...)
			b.ResetTimer()
			f.Spawn(func(c *sched.Frame) {
				pw := q.BindPush(c)
				for i := 0; i < b.N; i++ {
					pw.Push(i)
				}
			}, core.Push(q))
			f.Spawn(func(c *sched.Frame) {
				pp := q.BindPop(c)
				for i := 0; i < b.N; i++ {
					pp.Pop()
				}
			}, core.Pop(q))
			f.Sync()
		})
	}
	b.Run("mode=unbounded", func(b *testing.B) { run(b) })
	b.Run("mode=bounded", func(b *testing.B) { run(b, core.Bounded(1<<30)) })
	b.Run("mode=tight", func(b *testing.B) { run(b, core.Bounded(64)) })
}

// --- PR 7: hyperobjects --------------------------------------------------

// BenchmarkReducer prices the reducer write path the way
// BenchmarkSteadyStateAllocs prices Push: a bound handle folding b.N
// values into a task-private view. No locks are on the path and CI
// gates steady-state allocs/op at zero.
func BenchmarkReducer(b *testing.B) {
	b.ReportAllocs()
	rt := sched.New(2)
	rt.Run(func(f *sched.Frame) {
		r := core.NewReducer(f, core.Monoid[int]{
			Identity: func() int { return 0 },
			Combine:  func(into *int, from int) { *into += from },
		})
		b.ResetTimer()
		f.Spawn(func(c *sched.Frame) {
			h := r.BindReduce(c)
			for i := 0; i < b.N; i++ {
				h.Add(i)
			}
		}, core.Reduce(r))
		f.Sync()
		b.StopTimer()
	})
}

// BenchmarkHypermapVsLockedMap compares dedup's two index disciplines
// under writer parallelism: impl=hypermap inserts into task-private
// views (plus the advisory claims probe — the full Put path dedup
// runs), impl=lockedmap is the striped-lock-free baseline of a single
// mutex-guarded map. Keys repeat (16k keyspace), so both exercise the
// insert-if-absent hit and miss paths; ns/op is per insert.
func BenchmarkHypermapVsLockedMap(b *testing.B) {
	const writers = 4
	b.Run("impl=hypermap", func(b *testing.B) {
		b.ReportAllocs()
		rt := sched.New(writers)
		rt.Run(func(f *sched.Frame) {
			m := core.NewHypermap[int, int](f)
			per := b.N/writers + 1
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				w := w
				f.Spawn(func(c *sched.Frame) {
					h := m.BindMap(c)
					for i := 0; i < per; i++ {
						h.Put(i&0x3fff, w)
					}
				}, core.MapWrite(m))
			}
			f.Sync()
			b.StopTimer()
		})
	})
	b.Run("impl=lockedmap", func(b *testing.B) {
		b.ReportAllocs()
		rt := sched.New(writers)
		rt.Run(func(f *sched.Frame) {
			var mu sync.Mutex
			mm := make(map[int]int)
			per := b.N/writers + 1
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				w := w
				f.Spawn(func(c *sched.Frame) {
					for i := 0; i < per; i++ {
						k := i & 0x3fff
						mu.Lock()
						if _, ok := mm[k]; !ok {
							mm[k] = w
						}
						mu.Unlock()
					}
				})
			}
			f.Sync()
			b.StopTimer()
		})
	})
}

// --- Sharded pipelines (PR 8) --------------------------------------------

// BenchmarkSharded prices the shard fan-out's per-element hot path:
// route → per-shard bounded queue → shard worker → in-order merge. The
// fan-out (queues, router, workers, merger) is built once per run and
// amortizes across b.N elements, so steady state must be 0 allocs/op —
// CI gates it. shards=1 vs shards=4 shows what the content-partitioned
// fan-out costs (and buys) against a single pipeline.
func BenchmarkSharded(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			rt := swan.New(runtime.NumCPU())
			rt.Run(func(f *swan.Frame) {
				s := swan.NewSharded(f, swan.ShardConfig{Shards: shards, Bound: 1024},
					func(v uint64) uint64 { return v },
					func(c *swan.Frame, shard int) func(uint64) uint64 {
						return func(v uint64) uint64 { return v * 0x9e3779b97f4a7c15 }
					})
				b.ResetTimer()
				f.Spawn(func(c *swan.Frame) {
					p := s.In().BindPush(c)
					for i := 0; i < b.N; i++ {
						p.Push(uint64(i))
					}
				}, swan.Push(s.In()))
				s.Launch(f)
				f.Spawn(func(c *swan.Frame) {
					p := s.Out().BindPop(c)
					for !p.Empty() {
						p.Pop()
					}
				}, swan.Pop(s.Out()))
				f.Sync()
				b.StopTimer()
			})
		})
	}
}

// BenchmarkShardedLatency runs the open-loop latency harness at a fixed
// offered rate and reports the completion-latency percentiles as custom
// metrics, so BENCH_pr8.json carries the latency curve alongside the
// throughput numbers.
func BenchmarkShardedLatency(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var r bench.LatencyReport
			for i := 0; i < b.N; i++ {
				r = bench.MeasureLatency(bench.LatencyConfig{
					Workload: "streamstats",
					Shards:   shards,
					Workers:  runtime.NumCPU(),
					Items:    20_000,
					Rate:     200_000,
				})
			}
			b.ReportMetric(float64(r.P50), "p50-ns")
			b.ReportMetric(float64(r.P99), "p99-ns")
			b.ReportMetric(float64(r.P999), "p999-ns")
			b.ReportMetric(float64(r.TTFR), "ttfr-ns")
		})
	}
}

// --- Ablation: steal-half batch stealing ----------------------------------

// BenchmarkAblationStealBatch compares classic single-task stealing
// (cap=1, the pre-PR-8 scheduler) against steal-half batching (cap=8):
// a flat fan-out of short leaf tasks from one producer deque, the shape
// where per-task steal sweeps are pure overhead. steals/op counts
// successful sweeps, stolen-tasks/op what they carried — batching must
// move the same work in fewer sweeps.
func BenchmarkAblationStealBatch(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	const leaves = 256
	for _, cap := range []int{1, 8} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			prev := sched.StealBatchCap()
			sched.SetStealBatchCap(cap)
			defer sched.SetStealBatchCap(prev)
			rt := sched.New(workers) // freezes the cap into the pool
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Run(func(f *sched.Frame) {
					f.SpawnN(leaves, func(c *sched.Frame, j int) {
						x := uint64(j) + 1
						for k := 0; k < 4000; k++ {
							x ^= x << 13
							x ^= x >> 7
							x ^= x << 17
						}
						if x == 0 {
							sink++
						}
					})
					f.Sync()
				})
			}
			b.StopTimer()
			s := rt.Stats()
			b.ReportMetric(float64(s.Steals)/float64(b.N), "steals/op")
			b.ReportMetric(float64(s.StolenTasks)/float64(b.N), "stolen-tasks/op")
		})
	}
}
