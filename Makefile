# Local entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build vet fmt-check test race bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The scheduler and queue packages must be race-clean.
race:
	$(GO) test -race -short ./internal/...

# Compile-and-run every benchmark once so benchmark code cannot bit-rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check test race bench-smoke
