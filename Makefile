# Local entry points mirroring .github/workflows/ci.yml.

GO ?= go

# bench-json knobs: which benchmarks make up the recorded perf set, how
# long to run each, and where the JSON lands.
BENCH_SET  ?= SteadyStateAllocs|QueueChurn|PrepareCompleteContention|BatchedSpawn|AblationSchedulerSubstrate|AblationSegmentSize|AblationQueueVsChannel|AblationStealBatch|BoundVsUnbound|BoundedVsUnbounded|Reducer|HypermapVsLockedMap|Sharded
BENCH_TIME ?= 300ms
BENCH_OUT  ?= BENCH_pr8.json

.PHONY: all build vet fmt-check test race bench-smoke bench-json quickcheck soak soak-ci docs ci

# soak knobs: steps per policy, base seed, and the config preset
# (internal/soak: ci / default / heavy). The nightly workflow raises
# SOAK_STEPS ~10x over the PR gate.
SOAK_STEPS    ?= 2000000
SOAK_CI_STEPS ?= 200000
SOAK_SEED     ?= 1
SOAK_CONFIG   ?= heavy

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The scheduler and queue packages must be race-clean.
race:
	$(GO) test -race -short ./internal/...

# Compile-and-run every benchmark once so benchmark code cannot bit-rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the recorded perf set with allocation reporting and emit the
# machine-readable result file (name, iterations, ns/op, allocs/op and
# custom metrics like steals/op) for the perf trajectory. The text
# output goes through an intermediate file so a benchmark failure fails
# the target instead of being swallowed by the pipe.
bench-json:
	$(GO) test -bench='$(BENCH_SET)' -benchmem -benchtime=$(BENCH_TIME) -run='^$$' . > $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson < $(BENCH_OUT).txt > $(BENCH_OUT)
	@rm -f $(BENCH_OUT).txt
	@echo "wrote $(BENCH_OUT)"

# Serializability verifier: random programs against the serial elision,
# under both scheduling substrates, plus the hyperqueue regression tests
# under the race detector.
quickcheck:
	$(GO) run ./cmd/quickcheck -n 200
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 200
	$(GO) run ./cmd/quickcheck -n 100 -queues 2
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 100 -queues 2
	$(GO) run ./cmd/quickcheck -n 100 -sharded
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 100 -sharded
	REPRO_STEAL_BATCH=1 $(GO) run ./cmd/quickcheck -n 100
	$(GO) test -race -count=3 -run 'Regression' ./internal/core

# Long-horizon lifecycle fuzzing (internal/soak): a config-driven op mix
# over a long-lived runtime with invariant sweeps, pool-accounting
# audits and replay-window determinism checks. `make soak` is the
# operator entry point — hours of churn at the heavy preset under both
# scheduling policies. Any failure prints a FAIL line with a
# copy-pasteable replay command.
soak:
	$(GO) run ./cmd/soakfuzz -config $(SOAK_CONFIG) -policy steal -seed $(SOAK_SEED) -steps $(SOAK_STEPS)
	$(GO) run ./cmd/soakfuzz -config $(SOAK_CONFIG) -policy goroutine -seed $(SOAK_SEED) -steps $(SOAK_STEPS)

# Bounded soak for the PR gate: both policies under the race detector —
# once at the ci preset and once at the chaos preset, which stripes
# cancellations, queue poisonings and deadline probes through the op mix
# at full depth — plus injected-bug smoke runs (a model-invisible value
# and a spurious cancellation) proving the harness still detects and
# replays both fault classes deterministically, and the Short-guarded
# sweeps at full depth (plain `go test` runs them without -short).
soak-ci:
	$(GO) run -race ./cmd/soakfuzz -config ci -policy steal -seed $(SOAK_SEED) -steps $(SOAK_CI_STEPS)
	$(GO) run -race ./cmd/soakfuzz -config ci -policy goroutine -seed $(SOAK_SEED) -steps $(SOAK_CI_STEPS)
	$(GO) run -race ./cmd/soakfuzz -config chaos -policy steal -seed $(SOAK_SEED) -steps $(SOAK_CI_STEPS)
	$(GO) run -race ./cmd/soakfuzz -config chaos -policy goroutine -seed $(SOAK_SEED) -steps $(SOAK_CI_STEPS)
	@echo "soak-ci: verifying fault injection is detected (expect FAIL + replay line)"
	@if $(GO) run ./cmd/soakfuzz -config ci -policy steal -seed 3 -steps 9000 -fault 4321 >/tmp/soak-fault.out 2>&1; then \
		echo "soak-ci: injected fault was NOT detected"; cat /tmp/soak-fault.out; exit 1; \
	else \
		grep -m1 '^FAIL soak' /tmp/soak-fault.out; echo "soak-ci: injected fault detected ✓"; \
	fi
	@echo "soak-ci: verifying a spurious cancellation is detected (expect FAIL + replay line)"
	@if $(GO) run ./cmd/soakfuzz -config ci -policy steal -seed 3 -steps 9000 -fault 4321 -faultkind cancel >/tmp/soak-cancel.out 2>&1; then \
		echo "soak-ci: injected cancellation was NOT detected"; cat /tmp/soak-cancel.out; exit 1; \
	else \
		grep -m1 '^FAIL soak' /tmp/soak-cancel.out; echo "soak-ci: injected cancellation detected ✓"; \
	fi
	$(GO) test -race -count=1 ./internal/soak/
	$(GO) test -count=1 ./internal/core/ ./internal/workloads/...

# Documentation is executable: the swan Example functions are the code
# samples README/ARCHITECTURE point at, and running them catches doc rot.
docs:
	$(GO) test -run Example -v ./swan

ci: build vet fmt-check test race bench-smoke quickcheck soak-ci docs
