# Local entry points mirroring .github/workflows/ci.yml.

GO ?= go

# bench-json knobs: which benchmarks make up the recorded perf set, how
# long to run each, and where the JSON lands.
BENCH_SET  ?= SteadyStateAllocs|QueueChurn|PrepareCompleteContention|BatchedSpawn|AblationSchedulerSubstrate|AblationSegmentSize|AblationQueueVsChannel|AblationStealBatch|BoundVsUnbound|BoundedVsUnbounded|Reducer|HypermapVsLockedMap|Sharded
BENCH_TIME ?= 300ms
BENCH_OUT  ?= BENCH_pr8.json

.PHONY: all build vet fmt-check test race bench-smoke bench-json quickcheck docs ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The scheduler and queue packages must be race-clean.
race:
	$(GO) test -race -short ./internal/...

# Compile-and-run every benchmark once so benchmark code cannot bit-rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Run the recorded perf set with allocation reporting and emit the
# machine-readable result file (name, iterations, ns/op, allocs/op and
# custom metrics like steals/op) for the perf trajectory. The text
# output goes through an intermediate file so a benchmark failure fails
# the target instead of being swallowed by the pipe.
bench-json:
	$(GO) test -bench='$(BENCH_SET)' -benchmem -benchtime=$(BENCH_TIME) -run='^$$' . > $(BENCH_OUT).txt
	$(GO) run ./cmd/benchjson < $(BENCH_OUT).txt > $(BENCH_OUT)
	@rm -f $(BENCH_OUT).txt
	@echo "wrote $(BENCH_OUT)"

# Serializability verifier: random programs against the serial elision,
# under both scheduling substrates, plus the hyperqueue regression tests
# under the race detector.
quickcheck:
	$(GO) run ./cmd/quickcheck -n 200
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 200
	$(GO) run ./cmd/quickcheck -n 100 -queues 2
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 100 -queues 2
	$(GO) run ./cmd/quickcheck -n 100 -sharded
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 100 -sharded
	REPRO_STEAL_BATCH=1 $(GO) run ./cmd/quickcheck -n 100
	$(GO) test -race -count=3 -run 'Regression' ./internal/core

# Documentation is executable: the swan Example functions are the code
# samples README/ARCHITECTURE point at, and running them catches doc rot.
docs:
	$(GO) test -run Example -v ./swan

ci: build vet fmt-check test race bench-smoke quickcheck docs
