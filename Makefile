# Local entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build vet fmt-check test race bench-smoke quickcheck ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The scheduler and queue packages must be race-clean.
race:
	$(GO) test -race -short ./internal/...

# Compile-and-run every benchmark once so benchmark code cannot bit-rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Serializability verifier: random programs against the serial elision,
# under both scheduling substrates, plus the hyperqueue regression tests
# under the race detector.
quickcheck:
	$(GO) run ./cmd/quickcheck -n 200
	REPRO_SCHED=goroutine $(GO) run ./cmd/quickcheck -n 200
	$(GO) test -race -count=3 -run 'Regression' ./internal/core

ci: build vet fmt-check test race bench-smoke quickcheck
