package swan

import (
	"repro/internal/core"
	"repro/internal/core/hyper"
)

// Hyperobjects: the view algebra the hyperqueue is built on
// (internal/core/hyper), exposed as two more deterministic objects.
// A Reducer folds per-task private views with a monoid in serial
// program order (the Cilk++ reducer idea on the Swan substrate); a
// Hypermap is a first-writer-wins keyed index with the same merge
// discipline. Both are scale-free — nothing in a program using them
// mentions the worker count — and after a Sync covering every writer
// the owner observes exactly the serial elision's result.

// Monoid is the fold a Reducer performs: an identity value and an
// associative combine. Combine must be exactly associative for the fold
// to be deterministic; see the core.Monoid documentation for the
// floating-point caveat and the disjoint-slot escape hatch.
type Monoid[T any] = core.Monoid[T]

// Reducer is a deterministic parallel fold: tasks spawned with
// Reduce(r) get private views, Add/Update mutate only those views (no
// locks), and the runtime merges views in serial program order.
type Reducer[T any] = core.Reducer[T]

// ReduceHandle is a writer handle bound to one task body by
// Reducer.BindReduce; like queue handles it must not outlive the body.
type ReduceHandle[T any] = core.RedHandle[T]

// Hypermap is a deterministic first-writer-wins keyed index: tasks
// spawned with MapWrite(m) insert into private views, and for every key
// the serially-first Put wins regardless of schedule. Put additionally
// reports provable duplicates through a shared advisory index — sound
// but conservative, for skipping duplicate-only work (never for
// deciding program output).
type Hypermap[K comparable, V any] = core.Hypermap[K, V]

// MapHandle is a writer handle bound to one task body by
// Hypermap.BindMap; like queue handles it must not outlive the body.
type MapHandle[K comparable, V any] = core.MapHandle[K, V]

// HyperobjectStats is one named hyperobject's counters as reported by
// RuntimeStats: the number of views created and serial-order merges
// performed. Objects sharing a name aggregate into one row.
type HyperobjectStats = hyper.Stat

// HyperOption configures a reducer or hypermap at construction.
type HyperOption = core.HyperOption

// HyperNamed registers the object in RuntimeStats (and hence the
// metrics endpoint) under name. Unnamed objects are unmetered and can
// be created and dropped freely.
func HyperNamed(name string) HyperOption { return core.HyperNamed(name) }

// NewReducer creates a reducer owned by the calling task's frame. The
// owner holds a view and delegates write access by spawning children
// with Reduce(r); after the owner syncs, Value returns the complete
// fold.
func NewReducer[T any](f *Frame, m Monoid[T], opts ...HyperOption) *Reducer[T] {
	return core.NewReducer(f, m, opts...)
}

// Reduce grants the spawned task write access to r: a private view it
// may Add to or Update through a bound handle.
func Reduce[T any](r *Reducer[T]) Dep { return core.Reduce(r) }

// NewHypermap creates a hypermap owned by the calling task's frame. The
// owner holds a view and delegates write access by spawning children
// with MapWrite(m); after the owner syncs, Get/Len observe the
// deterministic first-writer merge of every writer's view.
func NewHypermap[K comparable, V any](f *Frame, opts ...HyperOption) *Hypermap[K, V] {
	return core.NewHypermap[K, V](f, opts...)
}

// MapWrite grants the spawned task write access to m: a private view it
// may Put into through a bound handle.
func MapWrite[K comparable, V any](m *Hypermap[K, V]) Dep { return core.MapWrite(m) }
