package swan_test

import (
	"runtime"
	"testing"

	"repro/swan"
)

// TestQuickstartPattern runs the package-doc example end to end.
func TestQuickstartPattern(t *testing.T) {
	const total = 200
	var got []int
	rt := swan.New(runtime.NumCPU())
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		f.Spawn(func(c *swan.Frame) {
			var produce func(c *swan.Frame, lo, hi int)
			produce = func(c *swan.Frame, lo, hi int) {
				if hi-lo <= 10 {
					for n := lo; n < hi; n++ {
						q.Push(c, n)
					}
					return
				}
				mid := (lo + hi) / 2
				c.Spawn(func(g *swan.Frame) { produce(g, lo, mid) }, swan.Push(q))
				c.Spawn(func(g *swan.Frame) { produce(g, mid, hi) }, swan.Push(q))
			}
			produce(c, 0, total)
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			for !q.Empty(c) {
				got = append(got, q.Pop(c))
			}
		}, swan.Pop(q))
		f.Sync()
	})
	if len(got) != total {
		t.Fatalf("consumed %d, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; determinism broken", i, v)
		}
	}
}

// TestMixedQueueAndObjectDeps combines both dependence kinds in one task,
// as dedup's hyperqueue implementation does.
func TestMixedQueueAndObjectDeps(t *testing.T) {
	var total int
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		acc := swan.NewVersioned(0)
		f.Spawn(func(c *swan.Frame) {
			for i := 1; i <= 100; i++ {
				q.Push(c, i)
			}
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			sum := acc.Get(c)
			for !q.Empty(c) {
				sum += q.Pop(c)
			}
			acc.Set(c, sum)
		}, swan.Pop(q), swan.InOut(acc))
		f.Sync()
		total = acc.Get(f)
	})
	if total != 5050 {
		t.Fatalf("sum = %d, want 5050", total)
	}
}

// TestScaleFree runs the identical program at several worker counts and
// requires identical results — the paper's scale-free property.
func TestScaleFree(t *testing.T) {
	runAt := func(workers int) []int {
		var out []int
		swan.New(workers).Run(func(f *swan.Frame) {
			q := swan.NewQueueWithCapacity[int](f, 16)
			for stage := 0; stage < 5; stage++ {
				base := stage * 20
				f.Spawn(func(c *swan.Frame) {
					for i := 0; i < 20; i++ {
						q.Push(c, base+i)
					}
				}, swan.Push(q))
			}
			f.Spawn(func(c *swan.Frame) {
				for !q.Empty(c) {
					out = append(out, q.Pop(c))
				}
			}, swan.Pop(q))
			f.Sync()
		})
		return out
	}
	ref := runAt(1)
	for _, w := range []int{2, 4, 8, 16} {
		got := runAt(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d consumed %d values, serial consumed %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: got[%d]=%d, serial=%d", w, i, got[i], ref[i])
			}
		}
	}
}
