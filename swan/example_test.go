package swan_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/swan"
)

// ExampleQueue demonstrates the paper's core guarantee: a consumer sees
// values in serial program order even with parallel producers.
func ExampleQueue() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		// Two producers spawned in program order; their values appear to
		// the consumer in exactly that order.
		f.Spawn(func(c *swan.Frame) {
			q.Push(c, 1)
			q.Push(c, 2)
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			q.Push(c, 3)
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			for !q.Empty(c) {
				fmt.Println(q.Pop(c))
			}
		}, swan.Pop(q))
		f.Sync()
	})
	// Output:
	// 1
	// 2
	// 3
}

// ExampleVersioned demonstrates Figure 1's task-dataflow pattern:
// renamed producers run in parallel, inoutdep consumers serialize.
func ExampleVersioned() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		value := swan.NewVersioned(0)
		sum := swan.NewVersioned(0)
		for i := 1; i <= 3; i++ {
			i := i
			f.Spawn(func(c *swan.Frame) {
				value.Set(c, i*10) // produce: renaming, never waits
			}, swan.Out(value))
			f.Spawn(func(c *swan.Frame) {
				sum.Set(c, sum.Get(c)+value.Get(c)) // consume: in order
			}, swan.In(value), swan.InOut(sum))
		}
		f.Sync()
		fmt.Println(sum.Get(f))
	})
	// Output:
	// 60
}

// ExampleTransformEach shows the ordered parallel-transform idiom used by
// the paper's ferret and bzip2 implementations.
func ExampleTransformEach() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		out := swan.NewQueue[int](f)
		f.Spawn(func(mid *swan.Frame) {
			in := swan.NewQueue[int](mid)
			swan.Produce(mid, in, func(c *swan.Frame, push func(int)) {
				for i := 1; i <= 5; i++ {
					push(i)
				}
			})
			// Squares are computed in parallel but delivered in order.
			swan.TransformEach(mid, in, out, func(v int) int { return v * v })
		}, swan.Push(out))
		swan.Drain(f, out, func(v int) { fmt.Println(v) })
		f.Sync()
	})
	// Output:
	// 1
	// 4
	// 9
	// 16
	// 25
}

// ExampleNewWithPolicy pins the substrate-independence guarantee: the
// same program produces the same result on the work-stealing runtime and
// on the goroutine-per-task ablation baseline.
func ExampleNewWithPolicy() {
	for _, policy := range []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine} {
		rt := swan.NewWithPolicy(2, policy)
		total := 0
		rt.Run(func(f *swan.Frame) {
			q := swan.NewQueue[int](f)
			f.SpawnN(4, func(c *swan.Frame, i int) {
				q.Push(c, i+1)
			}, swan.Push(q))
			f.Spawn(func(c *swan.Frame) {
				for !q.Empty(c) {
					total += q.Pop(c)
				}
			}, swan.Pop(q))
			f.Sync()
		})
		fmt.Printf("%v: %d\n", policy, total)
	}
	// Output:
	// steal: 10
	// goroutine: 10
}

// ExampleFrame_SpawnBatch publishes a wave of producer tasks with one
// scheduler operation (one deque store, one wake sweep). Dep Prepare
// still runs per child in program order, so the consumer's view of the
// stream is identical to consecutive Spawn calls.
func ExampleFrame_SpawnBatch() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		children := make([]swan.BatchChild, 0, 3)
		for i := 0; i < 3; i++ {
			base := i * 10
			children = append(children, swan.BatchChild{
				Body: func(c *swan.Frame) {
					q.Push(c, base)
					q.Push(c, base+1)
				},
				Deps: []swan.Dep{swan.Push(q)},
			})
		}
		f.SpawnBatch(children)
		swan.Drain(f, q, func(v int) { fmt.Println(v) })
		f.Sync()
	})
	// Output:
	// 0
	// 1
	// 10
	// 11
	// 20
	// 21
}

// ExampleQueue_Recycle runs several pipeline instances through one
// queue: after a Sync covering every task that held privileges, the
// drained queue is reset in place — its segments return to the
// runtime-wide pool and the next round reuses them, so churn-heavy
// programs (dedup creates one short-lived queue per coarse chunk) stop
// paying the construction cost per instance.
func ExampleQueue_Recycle() {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		for round := 0; round < 3; round++ {
			base := round * 100
			f.Spawn(func(c *swan.Frame) {
				q.Push(c, base)
				q.Push(c, base+1)
			}, swan.Push(q))
			f.Spawn(func(c *swan.Frame) {
				sum := 0
				for !q.Empty(c) {
					sum += q.Pop(c)
				}
				fmt.Println(sum)
			}, swan.Pop(q))
			f.Sync()     // quiesce: both children completed
			q.Recycle(f) // drained + quiescent: reuse it next round
		}
	})
	// Output:
	// 1
	// 201
	// 401
}

// ExampleQueue_BindPush shows the bound-handle hot path: each task
// resolves its queue privileges once (BindPush / BindPop) and then moves
// values through straight-line Push/Pop calls — the per-element regime
// where the hyperqueue matches a buffered channel. Bulk transfers
// (PushSlice, PopInto) cross segment boundaries in one call and pay the
// consumer wake-up probe once per call instead of once per element.
func ExampleQueue_BindPush() {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		f.Spawn(func(c *swan.Frame) {
			pw := q.BindPush(c)       // privilege resolution: once per body
			pw.PushSlice([]int{1, 2}) // bulk: one wake-up probe
			pw.Push(3)                // scalar: straight-line ring append
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			pp := q.BindPop(c) // consumer role acquired once
			buf := make([]int, 2)
			for !pp.Empty() {
				if n := pp.PopInto(buf); n > 0 { // bulk: values in serial order
					fmt.Println(buf[:n])
				} else {
					fmt.Println(pp.Pop()) // a value is in flight: scalar pop
				}
			}
		}, swan.Pop(q))
		f.Sync()
	})
	// Output:
	// [1 2]
	// [3]
}

// ExampleQueue_selectiveSync is the paper's Figure 6: the owner waits for
// its consumer child before inspecting what a later producer left behind.
func ExampleQueue_selectiveSync() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f)
		f.Spawn(func(c *swan.Frame) { q.Push(c, 1) }, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			for !q.Empty(c) {
				q.Pop(c) // drains everything visible to it
			}
		}, swan.Pop(q))
		f.Spawn(func(c *swan.Frame) { q.Push(c, 2) }, swan.Push(q))
		q.SyncPop(f) // selective sync (§5.5): wait for the consumer only
		fmt.Println(q.Pop(f))
	})
	// Output:
	// 2
}

// ExampleBounded shows a flow-controlled queue: the producer may never
// hold more than 2 values in flight, so a fast producer is paced by its
// consumer instead of growing the queue without limit. The values and
// their order are exactly those of the unbounded queue — backpressure
// changes scheduling, never semantics.
func ExampleBounded() {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f, swan.Bounded(2))
		f.Spawn(func(c *swan.Frame) {
			for i := 1; i <= 5; i++ {
				q.Push(c, i) // blocks whenever 2 values are buffered
			}
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			for !q.Empty(c) {
				fmt.Println(q.Pop(c))
			}
		}, swan.Pop(q))
		f.Sync()
	})
	// Output:
	// 1
	// 2
	// 3
	// 4
	// 5
}

// ExampleBounded_blocking is a producer-blocking round trip observed
// through the queue meter: with bound 1 the producer can never be more
// than one value ahead, so after the run the high-water mark is exactly
// 1 and the push/pop totals balance to zero occupancy.
func ExampleBounded_blocking() {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f, swan.Bounded(1), swan.Named("roundtrip"))
		swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
			for i := 0; i < 100; i++ {
				push(i)
			}
		})
		swan.Drain(f, q, func(int) {})
		f.Sync()
	})
	for _, qs := range swan.Stats(rt).Queues {
		fmt.Printf("%s: pushed=%d popped=%d occupancy=%d high-water=%d\n",
			qs.Name, qs.Pushed, qs.Popped, qs.Occupancy, qs.HighWater)
	}
	// Output:
	// roundtrip: pushed=100 popped=100 occupancy=0 high-water=1
}

// ExampleServeMetrics starts the metrics endpoint over a runtime, runs
// a bounded pipeline, and scrapes the Prometheus text exposition with a
// plain HTTP GET — exactly what a Prometheus scrape job would do.
func ExampleServeMetrics() {
	rt := swan.New(2)
	ms, err := swan.ServeMetrics(rt, "") // empty addr: a free localhost port
	if err != nil {
		fmt.Println("serve:", err)
		return
	}
	defer ms.Close()

	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueue[int](f, swan.Bounded(8), swan.Named("stage"))
		swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
			for i := 0; i < 1000; i++ {
				push(i)
			}
		})
		swan.Drain(f, q, func(int) {})
		f.Sync()
	})

	resp, err := http.Get(ms.URL())
	if err != nil {
		fmt.Println("scrape:", err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{
		`swan_queue_bound{queue="stage"} 8`,
		`swan_queue_pushed_total{queue="stage"} 1000`,
		`swan_queue_popped_total{queue="stage"} 1000`,
		`swan_queue_occupancy{queue="stage"} 0`,
	} {
		fmt.Println(strings.Contains(string(body), metric))
	}
	// Output:
	// true
	// true
	// true
	// true
}

// ExampleReducer shows the deterministic parallel fold: writer tasks
// spawned with Reduce get private views, Add never locks, and the
// runtime merges views in serial program order — so an order-sensitive
// monoid (list append) still produces the serial elision's result at
// any worker count.
func ExampleReducer() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		r := swan.NewReducer(f, swan.Monoid[[]int]{
			Identity: func() []int { return nil },
			Combine:  func(into *[]int, from []int) { *into = append(*into, from...) },
		})
		for i := 0; i < 5; i++ {
			i := i
			f.Spawn(func(c *swan.Frame) {
				r.BindReduce(c).Add([]int{i})
			}, swan.Reduce(r))
		}
		f.Sync()
		fmt.Println(r.Value(f))
	})
	// Output:
	// [0 1 2 3 4]
}

// ExampleHypermap shows the first-writer-wins keyed index: every writer
// Puts into a private view and the serially-first writer of a key wins
// deterministically, whatever order the tasks physically ran in. Put's
// dup report may be used to skip duplicate-only work (it is sound but
// conservative); the merged view read after Sync decides the output.
func ExampleHypermap() {
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		m := swan.NewHypermap[string, int](f)
		for i := 0; i < 4; i++ {
			i := i
			f.Spawn(func(c *swan.Frame) {
				m.BindMap(c).Put("winner", i) // all race; task 0 is serially first
			}, swan.MapWrite(m))
		}
		f.Sync()
		v, _ := m.Get(f, "winner")
		fmt.Println(v)
	})
	// Output:
	// 0
}
