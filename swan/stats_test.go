package swan_test

import (
	"testing"

	"repro/swan"
)

// TestStats pins the RuntimeStats surface: after a run that recycles a
// queue, the runtime-wide counters report the recycle and the pooled
// segments, and the scheduler counters reflect the dispatch activity.
func TestStats(t *testing.T) {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		// Small segments so the 100-value stream spans several: the
		// consumer's drain and the final Recycle leave them in the pool.
		q := swan.NewQueueWithCapacity[int](f, 16)
		f.Spawn(func(c *swan.Frame) {
			pw := q.BindPush(c)
			for i := 0; i < 100; i++ {
				pw.Push(i)
			}
		}, swan.Push(q))
		f.Spawn(func(c *swan.Frame) {
			pp := q.BindPop(c)
			for !pp.Empty() {
				pp.Pop()
			}
		}, swan.Pop(q))
		f.Sync()
		q.Recycle(f)
	})
	s := swan.Stats(rt)
	if s.Workers != 2 {
		t.Errorf("Workers = %d, want 2", s.Workers)
	}
	if s.RecycledQueues != 1 {
		t.Errorf("RecycledQueues = %d, want 1", s.RecycledQueues)
	}
	if s.PooledSegments < 1 {
		t.Errorf("PooledSegments = %d, want >= 1 (the recycled queue returned its chain)", s.PooledSegments)
	}
	if s.Spawns < 2 {
		t.Errorf("Spawns = %d, want >= 2", s.Spawns)
	}
}
