package swan

// This file provides pipeline-construction helpers that package the
// paper's programming idioms (§5, §6): a producer task, a
// transform stage that preserves order while processing items in
// parallel (the ferret/bzip2 dispatcher pattern), a serial transform
// (dedup's merged DeduplicateAndCompress), and a draining consumer.
// They remove the wiring boilerplate without hiding the model: each
// helper spawns ordinary tasks with ordinary queue dependences, so
// programs built from them remain serializable, deterministic and
// scale-free. Every helper binds its queue handles once at task entry
// (Queue.BindPush / Queue.BindPop), so their per-element loops run on
// the amortized hot path.

// Produce spawns a producer task with push privileges on q. The body
// receives a push function bound to the task's frame; it may also spawn
// its own nested producers through the frame.
func Produce[T any](f *Frame, q *Queue[T], body func(c *Frame, push func(T))) {
	f.Spawn(func(c *Frame) {
		pw := q.BindPush(c)
		body(c, pw.Push)
	}, Push(q))
}

// TransformEach spawns a dispatcher that pops every value from in and
// processes it in a freshly spawned task that pushes fn's result to out.
// Items are processed in parallel; the hyperqueue's reduction semantics
// deliver results to out's consumer in input order (the paper's ferret
// and bzip2 structure, §6.1, §6.3).
//
// The caller's frame must hold pop privileges on in and push privileges
// on out (the queue owner does).
func TransformEach[I, O any](f *Frame, in *Queue[I], out *Queue[O], fn func(I) O) {
	f.Spawn(func(c *Frame) {
		pp := in.BindPop(c)
		for !pp.Empty() {
			v := pp.Pop()
			c.Spawn(func(g *Frame) {
				out.Push(g, fn(v))
			}, Push(out))
		}
	}, Pop(in), Push(out))
}

// TransformSerial spawns a single task that pops each value from in and
// pushes fn's results (zero or more per input) to out in order — the
// merged-stage idiom dedup uses to coarsen task granularity (§6.2).
func TransformSerial[I, O any](f *Frame, in *Queue[I], out *Queue[O], fn func(I, func(O))) {
	f.Spawn(func(c *Frame) {
		pp := in.BindPop(c)
		pw := out.BindPush(c)
		for !pp.Empty() {
			fn(pp.Pop(), pw.Push)
		}
	}, Pop(in), Push(out))
}

// Drain spawns a consumer task that pops every value visible to it from
// q, in deterministic serial order, and applies fn.
func Drain[T any](f *Frame, q *Queue[T], fn func(T)) {
	f.Spawn(func(c *Frame) {
		pp := q.BindPop(c)
		for !pp.Empty() {
			fn(pp.Pop())
		}
	}, Pop(q))
}

// DrainSlices is Drain using the §5.2 read-slice fast path: fn receives
// batches that alias queue storage and must not retain them.
func DrainSlices[T any](f *Frame, q *Queue[T], batch int, fn func([]T)) {
	if batch < 1 {
		batch = 64
	}
	f.Spawn(func(c *Frame) {
		pp := q.BindPop(c)
		for !pp.Empty() {
			s := pp.ReadSlice(batch)
			if len(s) == 0 {
				// Empty returned false, so a value is in flight; fall
				// back to a single pop to make progress.
				fn([]T{pp.Pop()})
				continue
			}
			fn(s)
			pp.ConsumeRead(len(s))
		}
	}, Pop(q))
}
