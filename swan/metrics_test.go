package swan_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/swan"
)

// scrape GETs a URL and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

// TestServeMetrics pins the metrics endpoint end to end: a run with a
// bounded named queue, then an HTTP scrape that must contain the
// occupancy, high-water and block counters in Prometheus text format
// (with # HELP / # TYPE metadata), plus the expvar mirror at
// /debug/vars carrying the same snapshot as JSON.
func TestServeMetrics(t *testing.T) {
	rt := swan.New(2)
	ms, err := swan.ServeMetrics(rt, "")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer ms.Close()

	const total = 5000
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, 16, swan.Bounded(4), swan.Named("metrics.stage"))
		swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
			for i := 0; i < total; i++ {
				push(i)
			}
		})
		swan.Drain(f, q, func(int) {})
		f.Sync()
	})

	body := scrape(t, ms.URL())
	for _, want := range []string{
		"# TYPE swan_queue_occupancy gauge",
		"# HELP swan_queue_high_water",
		`swan_queue_occupancy{queue="metrics.stage"} 0`,
		`swan_queue_bound{queue="metrics.stage"} 4`,
		`swan_queue_pushed_total{queue="metrics.stage"} 5000`,
		`swan_queue_popped_total{queue="metrics.stage"} 5000`,
		`swan_queue_producer_blocks_total{queue="metrics.stage"}`,
		`swan_queue_consumer_blocks_total{queue="metrics.stage"}`,
		"swan_runtime_workers 2",
		"# TYPE swan_sched_blocks_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// High-water must be within (0, bound].
	var hw float64 = -1
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `swan_queue_high_water{queue="metrics.stage"} `) {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("parse high-water from %q: %v", line, err)
			}
			hw = v
		}
	}
	if hw < 1 || hw > 4 {
		t.Errorf("high-water = %v, want in [1, 4]", hw)
	}

	// The expvar mirror must carry the swan snapshot with the same queue.
	vars := scrape(t, "http://"+ms.Addr()+"/debug/vars")
	var parsed struct {
		Swan []swan.RuntimeStats `json:"swan"`
	}
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	found := false
	for _, s := range parsed.Swan {
		for _, q := range s.Queues {
			if q.Name == "metrics.stage" && q.Pushed == total {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expvar swan snapshot missing queue metrics.stage with %d pushes:\n%s", total, vars)
	}
}

// TestHyperobjectMetrics pins the hyperobject metric family: a named
// reducer and hypermap must appear in the Prometheus rendering with
// object/kind labels and nonzero view counts.
func TestHyperobjectMetrics(t *testing.T) {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		r := swan.NewReducer(f, swan.Monoid[int]{
			Identity: func() int { return 0 },
			Combine:  func(into *int, from int) { *into += from },
		}, swan.HyperNamed("metrics.sum"))
		m := swan.NewHypermap[int, int](f, swan.HyperNamed("metrics.index"))
		for i := 0; i < 8; i++ {
			i := i
			f.Spawn(func(c *swan.Frame) {
				r.BindReduce(c).Add(i)
				m.BindMap(c).Put(i%2, i)
			}, swan.Reduce(r), swan.MapWrite(m))
		}
		f.Sync()
		if got := r.Value(f); got != 28 {
			t.Errorf("reducer value = %d, want 28", got)
		}
	})

	var b strings.Builder
	if err := swan.WriteMetrics(&b, rt); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE swan_hyperobject_views_total counter",
		"# TYPE swan_hyperobject_merges_total counter",
		`swan_hyperobject_views_total{object="metrics.sum",kind="reducer"} 9`,
		`swan_hyperobject_views_total{object="metrics.index",kind="hypermap"} 9`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	s := swan.Stats(rt)
	if len(s.Hyperobjects) != 2 {
		t.Fatalf("RuntimeStats.Hyperobjects has %d rows, want 2", len(s.Hyperobjects))
	}
}
