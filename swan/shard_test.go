package swan_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/swan"
)

// mix64 is a cheap invertible hash (splitmix64 finalizer); the shard
// tests use it both as the transform under test and as the partition
// key, so routing is content-based and uneven across shards.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runSharded pushes vals through a Sharded fan-out and returns the
// egress stream in order.
func runSharded(workers, shards, bound int, policy swan.SpawnPolicy, vals []uint64) []uint64 {
	got := make([]uint64, 0, len(vals))
	rt := swan.NewWithPolicy(workers, policy)
	rt.Run(func(f *swan.Frame) {
		s := swan.NewSharded(f, swan.ShardConfig{Shards: shards, Bound: bound},
			func(v uint64) uint64 { return v },
			func(c *swan.Frame, shard int) func(uint64) uint64 {
				return func(v uint64) uint64 { return mix64(v) }
			})
		f.Spawn(func(c *swan.Frame) {
			p := s.In().BindPush(c)
			p.PushSlice(vals)
		}, swan.Push(s.In()))
		s.Launch(f)
		f.Spawn(func(c *swan.Frame) {
			p := s.Out().BindPop(c)
			for !p.Empty() {
				got = append(got, p.Pop())
			}
		}, swan.Pop(s.Out()))
		f.Sync()
	})
	return got
}

// TestShardedBitDeterministic sweeps shards × workers × both scheduler
// policies: the egress stream must be identical, element for element, to
// the serial elision (a plain loop applying the transform in arrival
// order) in every configuration.
func TestShardedBitDeterministic(t *testing.T) {
	const n = 20000
	vals := make([]uint64, n)
	x := uint64(42)
	for i := range vals {
		x = mix64(x)
		vals[i] = x
	}
	want := make([]uint64, n)
	for i, v := range vals {
		want[i] = mix64(v)
	}
	for _, policy := range []swan.SpawnPolicy{swan.PolicySteal, swan.PolicyGoroutine} {
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 4, 8} {
				got := runSharded(workers, shards, 256, policy, vals)
				if len(got) != n {
					t.Fatalf("policy=%v shards=%d workers=%d: %d results, want %d",
						policy, shards, workers, len(got), n)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("policy=%v shards=%d workers=%d: result[%d] = %#x, want %#x",
							policy, shards, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedTinyBoundsAndCounts probes the deadlock-prone corners:
// bound 1, more shards than values, a single value, and an empty stream.
func TestShardedTinyBoundsAndCounts(t *testing.T) {
	for _, tc := range []struct {
		n, shards, bound, workers int
	}{
		{0, 2, 1, 1},
		{1, 4, 1, 1},
		{100, 3, 1, 1},
		{100, 5, 2, 4},
	} {
		vals := make([]uint64, tc.n)
		for i := range vals {
			vals[i] = uint64(i)
		}
		got := runSharded(tc.workers, tc.shards, tc.bound, swan.PolicySteal, vals)
		if len(got) != tc.n {
			t.Fatalf("%+v: %d results, want %d", tc, len(got), tc.n)
		}
		for i, v := range vals {
			if got[i] != mix64(v) {
				t.Fatalf("%+v: result[%d] = %#x, want %#x", tc, i, got[i], mix64(v))
			}
		}
	}
}

// TestShardedBackpressureIsolation proves the per-shard isolation claim:
// with shard 0's worker gated shut, shard 1 must keep processing up to
// its own bound — a blocked sibling stalls nothing but itself — and
// after the gate opens the egress stream is still in arrival order.
func TestShardedBackpressureIsolation(t *testing.T) {
	const bound = 8
	const perShard = 64
	gate := make(chan struct{})
	var shard1Done atomic.Int64
	var got []uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt := swan.NewWithPolicy(4, swan.PolicySteal)
		rt.Run(func(f *swan.Frame) {
			s := swan.NewSharded(f, swan.ShardConfig{Shards: 2, Bound: bound},
				func(v uint64) uint64 { return v }, // even → shard 0, odd → shard 1
				func(c *swan.Frame, shard int) func(uint64) uint64 {
					first := true
					return func(v uint64) uint64 {
						if shard == 0 && first {
							first = false
							c.Block(func() { <-gate })
						}
						if shard == 1 {
							shard1Done.Add(1)
						}
						return v
					}
				})
			f.Spawn(func(c *swan.Frame) {
				p := s.In().BindPush(c)
				// Interleaved even/odd: element 0 hits shard 0 and jams it.
				for i := 0; i < 2*perShard; i++ {
					p.Push(uint64(i))
				}
			}, swan.Push(s.In()))
			s.Launch(f)
			f.Spawn(func(c *swan.Frame) {
				p := s.Out().BindPop(c)
				for !p.Empty() {
					got = append(got, p.Pop())
				}
			}, swan.Pop(s.Out()))
			f.Sync()
		})
	}()

	// With shard 0 jammed (its first element never finishes), shard 1
	// must still process at least its result-queue bound: the merger is
	// stuck waiting on shard 0 (arrival order), so shard 1 fills its
	// result queue and stops at its own bound — not at zero.
	deadline := time.Now().Add(10 * time.Second)
	for shard1Done.Load() < bound {
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 processed only %d values while shard 0 was blocked; want >= %d (its bound)",
				shard1Done.Load(), bound)
		}
		time.Sleep(time.Millisecond)
	}
	// And isolation is bounded, too: shard 1 cannot run unboundedly far
	// ahead — at most bound results + bound queued inputs + one in hand.
	if n := shard1Done.Load(); n > 2*bound+1 {
		t.Fatalf("shard 1 processed %d values while the merger was stuck; bound %d should cap it at %d",
			n, bound, 2*bound+1)
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline did not drain after the gate opened")
	}
	if len(got) != 2*perShard {
		t.Fatalf("%d results, want %d", len(got), 2*perShard)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("result[%d] = %d, want %d (arrival order broken)", i, v, i)
		}
	}
}

// TestShardedMetrics checks that a named fan-out exposes its per-shard
// queues in the stats registry.
func TestShardedMetrics(t *testing.T) {
	rt := swan.New(2)
	rt.Run(func(f *swan.Frame) {
		s := swan.NewSharded(f, swan.ShardConfig{Shards: 2, Bound: 16, Name: "fan"},
			func(v uint64) uint64 { return v },
			func(c *swan.Frame, shard int) func(uint64) uint64 {
				return func(v uint64) uint64 { return v }
			})
		f.Spawn(func(c *swan.Frame) {
			p := s.In().BindPush(c)
			for i := 0; i < 100; i++ {
				p.Push(uint64(i))
			}
		}, swan.Push(s.In()))
		s.Launch(f)
		f.Spawn(func(c *swan.Frame) {
			p := s.Out().BindPop(c)
			for !p.Empty() {
				p.Pop()
			}
		}, swan.Pop(s.Out()))
		f.Sync()

		want := map[string]bool{
			"fan.in": false, "fan.route": false, "fan.out": false,
			"fan.shard0.in": false, "fan.shard0.out": false,
			"fan.shard1.in": false, "fan.shard1.out": false,
		}
		for _, qs := range swan.Stats(rt).Queues {
			if _, ok := want[qs.Name]; ok {
				want[qs.Name] = true
			}
		}
		for name, seen := range want {
			if !seen {
				t.Errorf("queue %q missing from stats registry", name)
			}
		}
	})
}
