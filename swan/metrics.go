package swan

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
)

// The metrics surface: RuntimeStats rendered in the Prometheus text
// exposition format over plain net/http, with the same snapshots also
// published through the standard library's expvar registry (so the
// endpoint doubles as /debug/vars for tooling that speaks that format).
// Everything here reads the diagnostic Stats snapshot on demand — no
// goroutine samples in the background and the hot paths are untouched.

// metricRow is one exported metric: its name, Prometheus type, help
// text, and a extractor over the snapshot. Per-queue metrics carry a
// {queue="name"} label per metered queue.
type metricRow struct {
	name, typ, help string
	value           func(s RuntimeStats) float64
	perQueue        func(q QueueStats) (float64, bool)
	perHyper        func(h HyperobjectStats) float64
}

var metricRows = []metricRow{
	{"swan_runtime_workers", "gauge", "Worker slots the runtime was built with.",
		func(s RuntimeStats) float64 { return float64(s.Workers) }, nil, nil},
	{"swan_pool_segments", "gauge", "Segments currently cached across all segment pools.",
		func(s RuntimeStats) float64 { return float64(s.PooledSegments) }, nil, nil},
	{"swan_pool_segment_allocs_total", "counter", "Segments ever allocated fresh (pool misses).",
		func(s RuntimeStats) float64 { return float64(s.SegmentAllocs) }, nil, nil},
	{"swan_queues_recycled_total", "counter", "Completed Queue.Recycle resets.",
		func(s RuntimeStats) float64 { return float64(s.RecycledQueues) }, nil, nil},
	{"swan_sched_spawns_total", "counter", "Tasks dispatched through the scheduler.",
		func(s RuntimeStats) float64 { return float64(s.Spawns) }, nil, nil},
	{"swan_sched_steals_total", "counter", "Successful work-stealing steal sweeps.",
		func(s RuntimeStats) float64 { return float64(s.Steals) }, nil, nil},
	{"swan_sched_stolen_tasks_total", "counter", "Tasks taken by steal sweeps (> steals with steal-half batching).",
		func(s RuntimeStats) float64 { return float64(s.StolenTasks) }, nil, nil},
	{"swan_sched_parks_total", "counter", "Worker sleeps for lack of ready work.",
		func(s RuntimeStats) float64 { return float64(s.Parks) }, nil, nil},
	{"swan_sched_blocks_total", "counter", "Block regions entered (run token released).",
		func(s RuntimeStats) float64 { return float64(s.Blocks) }, nil, nil},
	{"swan_sched_blocked", "gauge", "Tasks currently inside a Block region.",
		func(s RuntimeStats) float64 { return float64(s.Blocked) }, nil, nil},
	{"swan_canceled_total", "counter", "Run invocations that ended canceled (Runtime.Cancel, scope cancel, task panic).",
		func(s RuntimeStats) float64 { return float64(s.CanceledRuns) }, nil, nil},
	{"swan_sched_panics_total", "counter", "Task bodies that panicked (each panic cancels its run's scope).",
		func(s RuntimeStats) float64 { return float64(s.TaskPanics) }, nil, nil},
	{"swan_shed_total", "counter", "Values refused by TryPush or timed-out PushTimeout, across all metered queues.",
		func(s RuntimeStats) float64 { return float64(s.Sheds) }, nil, nil},
	{"swan_queue_bound", "gauge", "Element budget of the queue (0 = unbounded, metering only).",
		nil, func(q QueueStats) (float64, bool) { return float64(q.Bound), true }, nil},
	{"swan_queue_occupancy", "gauge", "Values currently buffered in the queue (pushed - popped).",
		nil, func(q QueueStats) (float64, bool) { return float64(q.Occupancy), true }, nil},
	{"swan_queue_high_water", "gauge", "Maximum occupancy ever observed on the queue.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.HighWater), true }, nil},
	{"swan_queue_pushed_total", "counter", "Values ever pushed into the queue.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.Pushed), true }, nil},
	{"swan_queue_popped_total", "counter", "Values ever popped from the queue.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.Popped), true }, nil},
	{"swan_queue_producer_blocks_total", "counter", "Producer parks on an exhausted element budget.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.ProducerBlocks), true }, nil},
	{"swan_queue_producer_wakes_total", "counter", "Credit releases that found a parked producer.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.ProducerWakes), true }, nil},
	{"swan_queue_consumer_blocks_total", "counter", "Consumer parks waiting for data.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.ConsumerBlocks), true }, nil},
	{"swan_queue_consumer_wakes_total", "counter", "Pushes that found a parked consumer.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.ConsumerWakes), true }, nil},
	{"swan_queue_sheds_total", "counter", "Values this queue refused via TryPush or timed-out PushTimeout.",
		nil, func(q QueueStats) (float64, bool) { return float64(q.Sheds), true }, nil},
	{"swan_hyperobject_views_total", "counter", "Views created on the hyperobject (owner + spawned writers).",
		nil, nil, func(h HyperobjectStats) float64 { return float64(h.Views) }},
	{"swan_hyperobject_merges_total", "counter", "Serial-order view merges performed by the hyperobject.",
		nil, nil, func(h HyperobjectStats) float64 { return float64(h.Merges) }},
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteMetrics renders a point-in-time snapshot of rt's stats in the
// Prometheus text exposition format. The extra label pairs, if any, are
// attached to every sample (ServeMetrics uses none; multi-runtime
// aggregators like cmd/paperbench label each runtime).
func WriteMetrics(w io.Writer, rt *Runtime, labels ...[2]string) error {
	return writeMetricsSnap(w, Stats(rt), labels...)
}

func writeMetricsSnap(w io.Writer, s RuntimeStats, labels ...[2]string) error {
	var base strings.Builder
	for _, kv := range labels {
		if base.Len() > 0 {
			base.WriteByte(',')
		}
		fmt.Fprintf(&base, `%s=%q`, kv[0], escapeLabel(kv[1]))
	}
	for _, row := range metricRows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", row.name, row.help, row.name, row.typ); err != nil {
			return err
		}
		if row.value != nil {
			lbl := ""
			if base.Len() > 0 {
				lbl = "{" + base.String() + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %g\n", row.name, lbl, row.value(s)); err != nil {
				return err
			}
			continue
		}
		if row.perHyper != nil {
			for _, h := range s.Hyperobjects {
				lbl := fmt.Sprintf(`object=%q,kind=%q`, escapeLabel(h.Name), escapeLabel(h.Kind))
				if base.Len() > 0 {
					lbl = base.String() + "," + lbl
				}
				if _, err := fmt.Fprintf(w, "%s{%s} %g\n", row.name, lbl, row.perHyper(h)); err != nil {
					return err
				}
			}
			continue
		}
		for _, q := range s.Queues {
			v, ok := row.perQueue(q)
			if !ok {
				continue
			}
			lbl := fmt.Sprintf(`queue=%q`, escapeLabel(q.Name))
			if base.Len() > 0 {
				lbl = base.String() + "," + lbl
			}
			if _, err := fmt.Fprintf(w, "%s{%s} %g\n", row.name, lbl, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteMetricsMulti renders the stats of several runtimes into one
// Prometheus text exposition: metadata (# HELP / # TYPE) appears once
// per metric and every sample carries an rt="<index>" label telling the
// runtimes apart. cmd/paperbench -metrics uses it to serve all of its
// per-configuration runtimes from one endpoint.
func WriteMetricsMulti(w io.Writer, rts []*Runtime) error {
	snaps := make([]RuntimeStats, len(rts))
	for i, rt := range rts {
		snaps[i] = Stats(rt)
	}
	for _, row := range metricRows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", row.name, row.help, row.name, row.typ); err != nil {
			return err
		}
		for i, s := range snaps {
			if row.value != nil {
				if _, err := fmt.Fprintf(w, "%s{rt=\"%d\"} %g\n", row.name, i, row.value(s)); err != nil {
					return err
				}
				continue
			}
			if row.perHyper != nil {
				for _, h := range s.Hyperobjects {
					if _, err := fmt.Fprintf(w, "%s{rt=\"%d\",object=%q,kind=%q} %g\n",
						row.name, i, escapeLabel(h.Name), escapeLabel(h.Kind), row.perHyper(h)); err != nil {
						return err
					}
				}
				continue
			}
			for _, q := range s.Queues {
				v, ok := row.perQueue(q)
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{rt=\"%d\",queue=%q} %g\n", row.name, i, escapeLabel(q.Name), v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// MetricsHandler returns an http.Handler that serves rt's stats in
// Prometheus text format on every GET.
func MetricsHandler(rt *Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, rt)
	})
}

// expvar publication: every runtime ever passed to ServeMetrics is
// snapshotted by one process-wide expvar.Func named "swan", so the
// stats are visible to any /debug/vars consumer as well. expvar names
// are process-global and cannot be unpublished, hence the Once and the
// indirection through the served list.
var (
	expvarOnce sync.Once
	servedMu   sync.Mutex
	served     []*Runtime
)

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("swan", expvar.Func(func() any {
			servedMu.Lock()
			defer servedMu.Unlock()
			out := make([]RuntimeStats, 0, len(served))
			for _, rt := range served {
				out = append(out, Stats(rt))
			}
			return out
		}))
	})
}

// MetricsServer is a live metrics endpoint started by ServeMetrics.
type MetricsServer struct {
	rt *Runtime
	ln net.Listener
	mu sync.Mutex
}

// Addr reports the address the server is listening on (host:port).
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// URL reports the scrape URL of the metrics endpoint.
func (s *MetricsServer) URL() string { return "http://" + s.Addr() + "/metrics" }

// Close stops the server and removes the runtime from the expvar
// snapshot list. Safe to call more than once.
func (s *MetricsServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rt != nil {
		servedMu.Lock()
		for i, rt := range served {
			if rt == s.rt {
				served = append(served[:i], served[i+1:]...)
				break
			}
		}
		servedMu.Unlock()
		s.rt = nil
	}
	return s.ln.Close()
}

// ServeMetrics starts an HTTP server exposing rt's stats: Prometheus
// text format at /metrics (and /), the expvar JSON registry at
// /debug/vars. addr is a listen address like "127.0.0.1:9090"; an empty
// addr picks a free localhost port (read it back with Addr or URL).
// The server runs until Close.
func ServeMetrics(rt *Runtime, addr string) (*MetricsServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar()
	servedMu.Lock()
	served = append(served, rt)
	servedMu.Unlock()
	mux := http.NewServeMux()
	mux.Handle("/", MetricsHandler(rt))
	mux.Handle("/metrics", MetricsHandler(rt))
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{rt: rt, ln: ln}, nil
}
