// Package swan is the public API of this reproduction of "Deterministic
// Scale-Free Pipeline Parallelism with Hyperqueues" (Vandierendonck,
// Chronaki, Nikolopoulos; SC 2013). It bundles the Swan-like task runtime
// (spawn/sync with dependence-aware scheduling), versioned objects
// (indep/outdep/inoutdep task dataflow), and hyperqueues
// (pushdep/popdep/pushpopdep deterministic queues).
//
// # Quickstart
//
// The paper's Figure 2 — a recursively parallel producer feeding one
// consumer through a hyperqueue — looks like this:
//
//	rt := swan.New(runtime.NumCPU())
//	rt.Run(func(f *swan.Frame) {
//		q := swan.NewQueue[int](f)
//		f.Spawn(func(c *swan.Frame) {
//			var produce func(c *swan.Frame, lo, hi int)
//			produce = func(c *swan.Frame, lo, hi int) {
//				if hi-lo <= 10 {
//					for n := lo; n < hi; n++ {
//						q.Push(c, compute(n))
//					}
//					return
//				}
//				mid := (lo + hi) / 2
//				c.Spawn(func(g *swan.Frame) { produce(g, lo, mid) }, swan.Push(q))
//				c.Spawn(func(g *swan.Frame) { produce(g, mid, hi) }, swan.Push(q))
//			}
//			produce(c, 0, total)
//		}, swan.Push(q))
//		f.Spawn(func(c *swan.Frame) {
//			for !q.Empty(c) {
//				consume(q.Pop(c))
//			}
//		}, swan.Pop(q))
//		f.Sync()
//	})
//
// The program is scale-free — nothing in it mentions the worker count —
// and deterministic: the consumer observes values in serial program
// order regardless of scheduling.
//
// # Determinism
//
// Every program written against this package has a serial elision: erase
// Spawn/Sync (run children inline) and the hyperqueue behaves as a plain
// FIFO queue, the versioned objects as plain variables. The runtime
// guarantees parallel executions are indistinguishable from the serial
// elision as observed through queue pops and versioned-object reads.
package swan

import (
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/sched"
)

// Cancellation and overload errors. Run returns ErrCanceled when its
// cancel scope was canceled (Frame.CancelScope().Cancel, Runtime.Cancel)
// and the scope's cause otherwise; the deadline-bearing queue operations
// (Pusher.PushTimeout, Popper.PopTimeout, Sharded.Drain) return
// ErrTimeout when the deadline fires first; PopTimeout returns ErrEmpty
// when the queue is permanently empty; operations on a queue poisoned by
// Queue.Fail observe the Fail error (ErrQueueFailed when Fail was given
// nil).
var (
	ErrCanceled    = sched.ErrCanceled
	ErrTimeout     = core.ErrTimeout
	ErrEmpty       = core.ErrEmpty
	ErrQueueFailed = core.ErrQueueFailed
)

// CancelScope is the cooperative cancellation scope of a Run (or of a
// Frame.ScopedCall subtree). Cancel wakes every parked task in the scope
// — credit-parked producers, consumers parked in Pop/Empty, tasks gated
// on pop tickets — which unwind instead of blocking forever; the Run
// then quiesces (views fold, the segment pool balances) and returns the
// scope's error. Scopes form a tree: canceling a parent cancels its
// ScopedCall children, never the reverse.
type CancelScope = sched.CancelScope

// PanicError is the error a Run's scope carries when a task body
// panicked: the panic cancels the scope (siblings stop), is re-raised
// out of Run, and siblings that observe the cancellation unwind with a
// cause of *PanicError.
type PanicError = sched.PanicError

// CancelUnwind and AbortUnwind are the sentinel panic values the runtime
// uses to unwind a task out of a park site after a cancellation or a
// queue Fail. Task bodies that recover for cleanup must re-panic values
// of these types; the substrate absorbs them and still runs the
// completion protocol.
type (
	CancelUnwind = sched.CancelUnwind
	AbortUnwind  = sched.AbortUnwind
)

// Runtime schedules tasks over a fixed number of worker slots; the slot
// count plays the role of the core count and is the only
// machine-dependent parameter of a program.
type Runtime = sched.Runtime

// Frame is the runtime context of one task: the handle for spawning
// children, syncing, and accessing queues and versioned objects.
type Frame = sched.Frame

// Dep is a dependence passed at spawn time: a queue access mode (Push,
// Pop, PushPop) or a versioned-object access mode (In, Out, InOut).
type Dep = sched.Dep

// BatchChild is one child of a Frame.SpawnBatch: a body plus its
// spawn-time dependences. SpawnBatch — and its uniform-deps form
// SpawnN — spawns a whole wave of children with one scheduler
// publication (a single deque tail store and one worker wake sweep)
// while keeping the serial elision identical to consecutive Spawn
// calls. Pipeline stages that fan out k worker tasks per popped batch
// (the §5.4 loop-split idiom) use it to take spawn overhead off their
// critical path.
type BatchChild = sched.BatchChild

// Queue is a hyperqueue of values of type T (paper §2–§4).
type Queue[T any] = core.Queue[T]

// Pusher is a push handle bound to one task body by Queue.BindPush: the
// privilege resolution Queue.Push repeats per element (view-set lookup,
// privilege check, pool-shard derivation) is done once at bind time, so
// steady-state Push is a straight-line segment-ring append and PushSlice
// moves whole slices across segment boundaries with one consumer wake-up
// probe per call. Bind in any task body that moves more than a couple of
// values; handles must not outlive the body they were bound in.
type Pusher[T any] = core.Pusher[T]

// Popper is the pop-side bound handle (Queue.BindPop): it acquires the
// consumer role once and exposes Pop, TryPop, Empty, bulk PopInto and
// the §5.2 ReadSlice/ConsumeRead pair without per-element privilege
// resolution. Pop children spawned after the bind still serialize before
// the binder's later pops — the handle revalidates the consumer ticket
// on each access.
type Popper[T any] = core.Popper[T]

// Versioned is a dataflow variable of type T with automatic versioning
// (renaming) to break artificial dependences.
type Versioned[T any] = dataflow.Versioned[T]

// SpawnPolicy selects the scheduling substrate of a Runtime: the
// work-stealing pool (PolicySteal, the default) or the goroutine-per-task
// baseline kept for ablations (PolicyGoroutine). Programs must behave
// identically under both; the regression tests and cmd/quickcheck verify
// that.
type SpawnPolicy = sched.SpawnPolicy

const (
	// PolicySteal dispatches tasks through per-worker work-stealing
	// deques (the default).
	PolicySteal = sched.PolicySteal
	// PolicyGoroutine runs one goroutine per task, gated by a slot
	// semaphore (the ablation baseline).
	PolicyGoroutine = sched.PolicyGoroutine
)

// New returns a runtime with the given number of worker slots.
func New(workers int) *Runtime { return sched.New(workers) }

// NewWithPolicy returns a runtime with the given number of worker slots
// on an explicitly chosen scheduling substrate.
func NewWithPolicy(workers int, policy SpawnPolicy) *Runtime {
	return sched.NewWithPolicy(workers, policy)
}

// DefaultPolicy reports the substrate New uses, which honors the
// REPRO_SCHED environment variable ("steal" or "goroutine").
func DefaultPolicy() SpawnPolicy { return sched.DefaultPolicy() }

// SetQueueDebugChecks enables or disables the hyperqueue's runtime
// self-checking assertions process-wide — most importantly, that a true
// Empty answer never hides values a completed producer pushed before the
// consumer's position. Verifier harnesses (cmd/quickcheck, the
// regression tests) turn this on; a violated assertion panics and is
// re-raised by Run.
func SetQueueDebugChecks(on bool) { core.SetDebugChecks(on) }

// QueueOption configures a queue at construction: Bounded adds flow
// control, Named adds metering. The zero-option default is the paper's
// unbounded, unmetered queue.
type QueueOption = core.QueueOption

// Bounded caps the queue at n buffered values. A push into a full queue
// blocks — releasing the worker slot, so the scheduler cannot deadlock —
// until the consumer drains; bulk pushes (PushSlice, CommitWrite) make
// progress in credit-sized chunks through any bound. Bounded queues are
// automatically metered (occupancy, high-water, block/wake counters;
// see Stats and ServeMetrics).
//
// Backpressure couples producer progress to consumer progress, which is
// safe whenever values are produced in serial program order — a single
// producer task per stage, as every pipeline helper in this package
// spawns. Concurrent sibling producers can outrun the serial order and
// fill the bound with values the consumer cannot reach yet; size the
// bound above their maximum lead, or keep such stages unbounded (see
// OPERATIONS.md, "Choosing a bound").
func Bounded(n int) QueueOption { return core.Bounded(n) }

// Named meters an unbounded queue under the given name so it appears in
// Stats and the metrics endpoint. Bounded queues are metered already;
// Named gives them a stable label instead of the automatic "queue-N".
func Named(name string) QueueOption { return core.Named(name) }

// NewQueue creates a hyperqueue owned by the calling task's frame. The
// owner holds both push and pop privileges, like the paper's top-level
// task.
func NewQueue[T any](f *Frame, opts ...QueueOption) *Queue[T] { return core.New[T](f, opts...) }

// NewQueueWithCapacity creates a hyperqueue with a tuned segment length
// (paper §5.1).
func NewQueueWithCapacity[T any](f *Frame, segCap int, opts ...QueueOption) *Queue[T] {
	return core.NewWithCapacity[T](f, segCap, opts...)
}

// Push grants the spawned task push-only access to q (pushdep).
func Push[T any](q *Queue[T]) Dep { return core.Push(q) }

// Pop grants the spawned task pop-only access to q (popdep).
func Pop[T any](q *Queue[T]) Dep { return core.Pop(q) }

// PushPop grants the spawned task both privileges (pushpopdep).
func PushPop[T any](q *Queue[T]) Dep { return core.PushPop(q) }

// NewVersioned returns a versioned variable holding initial.
func NewVersioned[T any](initial T) *Versioned[T] { return dataflow.NewVersioned(initial) }

// In grants the spawned task read access to v (indep).
func In[T any](v *Versioned[T]) Dep { return dataflow.In(v) }

// Out grants the spawned task write access to a fresh version of v
// (outdep); renaming means the task never waits.
func Out[T any](v *Versioned[T]) Dep { return dataflow.Out(v) }

// InOut grants the spawned task read-write access to v (inoutdep),
// serialized after the previous version's writer and readers.
func InOut[T any](v *Versioned[T]) Dep { return dataflow.InOut(v) }
