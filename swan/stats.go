package swan

import "repro/internal/core"

// RuntimeStats is a snapshot of a runtime's resource counters: the
// scheduler's dispatch activity and the hyperqueue layer's runtime-wide
// recycling gauges (the per-Runtime segment pool and Queue.Recycle).
// It is a diagnostic surface — cmd/paperbench -stats prints it after a
// run — not a hot-path primitive.
type RuntimeStats struct {
	Workers        int    // worker slots the runtime was built with
	PooledSegments int    // segments currently cached across all pools
	RecycledQueues uint64 // completed Queue.Recycle resets
	Spawns         uint64 // tasks dispatched (PolicySteal only)
	Steals         uint64 // successful deque steals (PolicySteal only)
	Parks          uint64 // worker sleeps for lack of work (PolicySteal only)
}

// Stats reports a snapshot of rt's runtime-wide counters.
func Stats(rt *Runtime) RuntimeStats {
	s := rt.Stats()
	prov := core.ProviderOf(rt)
	return RuntimeStats{
		Workers:        rt.Workers(),
		PooledSegments: prov.PooledSegments(),
		RecycledQueues: prov.RecycledQueues(),
		Spawns:         s.Spawns,
		Steals:         s.Steals,
		Parks:          s.Parks,
	}
}
