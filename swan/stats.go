package swan

import "repro/internal/core"

// QueueStats is a snapshot of one metered queue's gauges and counters:
// occupancy and high-water, the cumulative push/pop totals they derive
// from, and the block/wake counters of both sides' slow paths. Queues
// are metered when constructed with Bounded or Named; plain unbounded
// queues carry no meter and do not appear in RuntimeStats.Queues.
type QueueStats = core.QueueStat

// RuntimeStats is a snapshot of a runtime's resource counters: the
// scheduler's dispatch activity, the hyperqueue layer's runtime-wide
// recycling gauges (the per-Runtime segment pool and Queue.Recycle),
// and the per-queue meters of every Bounded or Named queue. It is a
// diagnostic surface — cmd/paperbench -stats prints it after a run and
// ServeMetrics exports it live — not a hot-path primitive.
type RuntimeStats struct {
	Workers        int          // worker slots the runtime was built with
	PooledSegments int          // segments currently cached across all pools
	SegmentAllocs  uint64       // segments ever allocated fresh (pool misses)
	RecycledQueues uint64       // completed Queue.Recycle resets
	Spawns         uint64       // tasks dispatched (PolicySteal only)
	Steals         uint64       // successful steal sweeps (PolicySteal only)
	StolenTasks    uint64       // tasks taken by steal sweeps (>= Steals with steal-half batching)
	Parks          uint64       // worker sleeps for lack of work (PolicySteal only)
	Blocks         uint64       // Block regions entered (PolicySteal only)
	Blocked        int          // tasks currently inside a Block region (PolicySteal only)
	CanceledRuns   uint64       // Run invocations that ended canceled (Runtime.Cancel, scope cancel, task panic)
	TaskPanics     uint64       // task bodies that panicked (each also cancels its run's scope)
	Sheds          uint64       // values refused by TryPush or timed-out PushTimeout, across all metered queues
	Queues         []QueueStats // metered queues, in creation order
	// Hyperobjects holds the named reducers and hypermaps, aggregated
	// by (name, kind) in order of first registration.
	Hyperobjects []HyperobjectStats
}

// Stats reports a snapshot of rt's runtime-wide counters.
func Stats(rt *Runtime) RuntimeStats {
	s := rt.Stats()
	prov := core.ProviderOf(rt)
	queues := prov.QueueStats()
	var sheds uint64
	for _, q := range queues {
		sheds += q.Sheds
	}
	return RuntimeStats{
		Workers:        rt.Workers(),
		PooledSegments: prov.PooledSegments(),
		SegmentAllocs:  prov.SegmentAllocs(),
		RecycledQueues: prov.RecycledQueues(),
		Spawns:         s.Spawns,
		Steals:         s.Steals,
		StolenTasks:    s.StolenTasks,
		Parks:          s.Parks,
		Blocks:         s.Blocks,
		Blocked:        s.Blocked,
		CanceledRuns:   s.CanceledRuns,
		TaskPanics:     s.TaskPanics,
		Sheds:          sheds,
		Queues:         queues,
		Hyperobjects:   prov.HyperStats(),
	}
}
