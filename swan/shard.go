package swan

import (
	"repro/internal/core"
)

// Sharded is the deterministic shard fan-out: a pipeline-of-pipelines
// that scales a stream past the hyperqueue's single consumer by
// partitioning it over N per-shard bounded hyperqueues and merging the
// per-shard results back into arrival order. The consumer role is never
// split — every queue in the construction keeps exactly one consumer
// task — so the egress stream is byte-identical for any worker count,
// shard count, and scheduler policy (see ARCHITECTURE.md, "Sharded
// pipelines").
//
// Usage shape (program order matters for visibility):
//
//	s := swan.NewSharded(f, swan.ShardConfig{Shards: 4},
//		func(v Item) uint64 { return v.Key() },         // partition
//		func(c *swan.Frame, shard int) func(Item) Out { // per-shard transform
//			state := newShardState()
//			return func(v Item) Out { return state.apply(v) }
//		})
//	f.Spawn(producer, swan.Push(s.In()))  // 1. producers first
//	s.Launch(f)                           // 2. router/workers/merger
//	f.Spawn(consumer, swan.Pop(s.Out()))  // 3. egress consumer last
//	f.Sync()
//
// Teardown: Drain(f, d) waits up to d for the merger to retire (the
// whole fan-out has quiesced), returning ErrTimeout or the scope's
// cancel cause if it fires first; Drained is the non-blocking probe;
// Fail(err) poisons every queue in the construction so a wedged
// fan-out's producers and consumers unwind instead of parking forever.
type Sharded[I, O any] = core.Sharded[I, O]

// ShardConfig configures NewSharded: shard count, per-shard queue bound
// (the backpressure isolation budget — one slow shard blocks only its
// own router pushes once its bound fills), segment capacity, and an
// optional metrics name that exposes per-shard occupancy through the
// Named queue registry.
type ShardConfig = core.ShardConfig

// DefaultShardBound is the per-shard queue bound used when ShardConfig
// leaves Bound zero.
const DefaultShardBound = core.DefaultShardBound

// NewSharded creates a shard fan-out owned by the calling task's frame.
// part maps each value to a partition key, reduced mod Shards: equal
// keys always land on the same shard and are processed in arrival
// order. work builds the per-shard transform inside the shard's
// consumer task (bind reducer handles or other per-task state there);
// workerDeps are granted to every shard worker in addition to its queue
// privileges. See Sharded for the spawn-order discipline.
func NewSharded[I, O any](
	f *Frame,
	cfg ShardConfig,
	part func(I) uint64,
	work func(f *Frame, shard int) func(I) O,
	workerDeps ...Dep,
) *Sharded[I, O] {
	return core.NewSharded[I, O](f, cfg, part, work, workerDeps...)
}
