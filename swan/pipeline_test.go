package swan_test

import (
	"strconv"
	"testing"

	"repro/swan"
)

func TestProduceTransformDrain(t *testing.T) {
	const n = 300
	var got []string
	rt := swan.New(8)
	rt.Run(func(f *swan.Frame) {
		nums := swan.NewQueue[int](f)
		strs := swan.NewQueue[string](f)
		f.Spawn(func(mid *swan.Frame) {
			inner := swan.NewQueueWithCapacity[int](mid, 32)
			swan.Produce(mid, inner, func(c *swan.Frame, push func(int)) {
				for i := 0; i < n; i++ {
					push(i)
				}
			})
			swan.TransformEach(mid, inner, nums, func(v int) int { return v * v })
		}, swan.Push(nums))
		_ = strs
		swan.Drain(f, nums, func(v int) { got = append(got, strconv.Itoa(v)) })
		f.Sync()
	})
	if len(got) != n {
		t.Fatalf("drained %d, want %d", len(got), n)
	}
	for i, s := range got {
		if s != strconv.Itoa(i*i) {
			t.Fatalf("got[%d] = %s, want %d", i, s, i*i)
		}
	}
}

func TestTransformSerialFanOut(t *testing.T) {
	var got []int
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		out := swan.NewQueue[int](f)
		f.Spawn(func(mid *swan.Frame) {
			in := swan.NewQueue[int](mid)
			swan.Produce(mid, in, func(c *swan.Frame, push func(int)) {
				for i := 1; i <= 5; i++ {
					push(i)
				}
			})
			// Each input k expands to k outputs — the variable fan-out
			// plain task dataflow cannot express.
			swan.TransformSerial(mid, in, out, func(k int, emit func(int)) {
				for j := 0; j < k; j++ {
					emit(k*10 + j)
				}
			})
		}, swan.Push(out))
		swan.Drain(f, out, func(v int) { got = append(got, v) })
		f.Sync()
	})
	want := []int{10, 20, 21, 30, 31, 32, 40, 41, 42, 43, 50, 51, 52, 53, 54}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDrainSlices(t *testing.T) {
	const n = 500
	var got []int
	rt := swan.New(4)
	rt.Run(func(f *swan.Frame) {
		q := swan.NewQueueWithCapacity[int](f, 64)
		swan.Produce(f, q, func(c *swan.Frame, push func(int)) {
			for i := 0; i < n; i++ {
				push(i)
			}
		})
		swan.DrainSlices(f, q, 32, func(s []int) {
			got = append(got, s...)
		})
		f.Sync()
	})
	if len(got) != n {
		t.Fatalf("drained %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; order broken", i, v)
		}
	}
}

func TestThreeStageTypedPipeline(t *testing.T) {
	// nums -> squares (parallel) -> strings (serial fan-out) -> sink,
	// exercising both transform kinds chained through typed queues.
	var lines []string
	rt := swan.New(8)
	rt.Run(func(f *swan.Frame) {
		strs := swan.NewQueue[string](f)
		f.Spawn(func(m2 *swan.Frame) {
			squares := swan.NewQueue[int](m2)
			m2.Spawn(func(m1 *swan.Frame) {
				nums := swan.NewQueue[int](m1)
				swan.Produce(m1, nums, func(c *swan.Frame, push func(int)) {
					for i := 0; i < 50; i++ {
						push(i)
					}
				})
				swan.TransformEach(m1, nums, squares, func(v int) int { return v * v })
			}, swan.Push(squares))
			swan.TransformSerial(m2, squares, strs, func(v int, emit func(string)) {
				emit("sq=" + strconv.Itoa(v))
			})
		}, swan.Push(strs))
		swan.Drain(f, strs, func(s string) { lines = append(lines, s) })
		f.Sync()
	})
	if len(lines) != 50 {
		t.Fatalf("got %d lines, want 50", len(lines))
	}
	for i, s := range lines {
		if s != "sq="+strconv.Itoa(i*i) {
			t.Fatalf("lines[%d] = %q", i, s)
		}
	}
}
